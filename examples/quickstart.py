"""Quickstart: a recycling database in twenty lines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, STRING

# ----------------------------------------------------------------------
# 1. create a database with the recycler in speculation mode
# ----------------------------------------------------------------------
db = Database(RecyclerConfig(mode="spec"))

rng = np.random.default_rng(42)
n = 100_000
orders = Table(
    Table.from_rows(["order_id", "region", "amount"],
                    [INT64, STRING, FLOAT64], []).schema,
    {
        "order_id": np.arange(n, dtype=np.int64),
        "region": rng.choice(
            np.array(["north", "south", "east", "west"], dtype=object),
            n),
        "amount": rng.gamma(2.0, 150.0, n).round(2),
    })
db.register_table("orders", orders)

# ----------------------------------------------------------------------
# 2. run an aggregation — the recycler watches and caches
# ----------------------------------------------------------------------
SQL = """
    SELECT region, count(*) AS orders, sum(amount) AS revenue
    FROM orders
    WHERE amount > 100.0
    GROUP BY region
    ORDER BY revenue DESC
"""

first = db.sql(SQL)
print("result:")
for row in first.table.to_rows():
    print("  ", row)
print(f"first run : {first.stats.total_cost:12.0f} cost units")

# ----------------------------------------------------------------------
# 3. run it again — answered from the recycler cache
# ----------------------------------------------------------------------
second = db.sql(SQL)
print(f"second run: {second.stats.total_cost:12.0f} cost units "
      f"({second.stats.num_reused} cached result(s) reused)")
assert second.table.to_rows() == first.table.to_rows()

# ----------------------------------------------------------------------
# 4. even a *different* query can reuse shared work
# ----------------------------------------------------------------------
variant = db.sql("""
    SELECT region, count(*) AS orders, sum(amount) AS revenue
    FROM orders
    WHERE amount > 100.0
    GROUP BY region
    ORDER BY revenue ASC
    LIMIT 2
""")
print(f"variant   : {variant.stats.total_cost:12.0f} cost units "
      f"({variant.stats.num_reused} cached result(s) reused)")

print("\nrecycler state:", db.summary())
