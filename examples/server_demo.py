"""Serving demo: one recycler, three frontends.

Builds a synthetic SkyServer database, queries it through the PEP 249
DB-API, then serves it over TCP and queries it again through the wire
client and the load generator — every frontend lands in the same
recycler, so whoever comes second is warm.

Run:  python examples/server_demo.py
"""

import repro.dbapi as dbapi
from repro import Database, RecyclerConfig
from repro.errors import QueryTimeout
from repro.harness.loadgen import LoadGenerator
from repro.server import ReproServer, ServerClient
from repro.workloads.skyserver import (build_catalog, generate_workload,
                                       primary_pattern)

# ----------------------------------------------------------------------
# 1. the database: synthetic SkyServer (photoobj + cone search)
# ----------------------------------------------------------------------
db = Database(RecyclerConfig(mode="spec"),
              catalog=build_catalog(num_rows=20000))
SKY = primary_pattern()  # the paper's most frequent query

# ----------------------------------------------------------------------
# 2. PEP 249: standard cursors over the shared execution core
# ----------------------------------------------------------------------
with dbapi.connect(database=db) as conn:
    cur = conn.cursor()
    cur.execute(SKY)
    print(f"DB-API (cold): {cur.rowcount} rows,"
          f" stored {cur.statistics['num_inserted']} graph nodes")

# ----------------------------------------------------------------------
# 3. TCP: the same database served with admission control
# ----------------------------------------------------------------------
with ReproServer(db, max_in_flight=8, max_queue=16,
                 tenant_budgets={"demo": 32 * 1024 * 1024}) as server:
    host, port = server.address
    with ServerClient(host, port) as client:
        result = client.query(SKY, tenant="demo")
        print(f"TCP    (warm): {result.num_rows} rows,"
              f" reused {result.stats['num_reused']},"
              f" inserted {result.stats['num_inserted']}")

        # deadlines are enforced server-side and re-raise typed here
        try:
            client.query(SKY, timeout=0.0)
        except QueryTimeout:
            print("TCP    (t/o) : deadline enforced on the server")

    # closed-loop load: 4 clients cycling the SkyServer query mix
    queries = [q.sql for q in generate_workload(20)]
    report = LoadGenerator(host, port, queries, clients=4,
                           duration=2.0, timeout=30.0).run()
    print(f"loadgen      : {report.format()}")
    print(f"server stats : {server.stats()}")

# every frontend's queries met in one service layer
print("service      :", db.summary()["service"]["frontends"].keys())
db.close()
