"""Cancellation and deadlines under a SkyServer burst.

A burst of interactive astronomy traffic hits a pool of sessions.
Operators need three controls, all demonstrated here:

1. **per-query timeouts** — a runaway query aborts with
   ``QueryTimeout`` at the next batch boundary;
2. **cross-thread cancel** — ``Session.cancel()`` aborts the query a
   session is currently executing (``QueryCancelled``);
3. **pool shutdown** — ``SessionPool.close(cancel_pending=True)``
   drops the queue and aborts every *running* query mid-execution.

Aborted queries leave nothing behind: no cache entry, no in-flight
registration, and any session blocked on their in-flight results is
woken to recompute.

Run:  python examples/cancellation.py
"""

import threading
import time

from repro import Database, QueryCancelled, QueryTimeout, RecyclerConfig
from repro.workloads.skyserver import (CONE_SEARCH_COST_PER_ROW,
                                       NEARBY_SCHEMA, generate_photoobj,
                                       make_cone_search)

# ----------------------------------------------------------------------
# the sky: a photoobj table + the expensive cone-search table function
# ----------------------------------------------------------------------
db = Database(RecyclerConfig(mode="spec"))
photoobj = generate_photoobj(num_rows=120000)
db.register_table("photoobj", photoobj)
db.register_function("fgetnearbyobjeq", make_cone_search(photoobj),
                     NEARBY_SCHEMA,
                     invocation_cost=photoobj.num_rows
                     * CONE_SEARCH_COST_PER_ROW)


def cone_query(ra, radius=2.0):
    return f"""
        SELECT p.type, count(*) AS n, min(p.modelmag_r) AS brightest
        FROM fGetNearbyObjEq({ra}, 5.0, {radius}) n, photoobj p
        WHERE n.objid = p.objid
        GROUP BY p.type
        ORDER BY p.type"""


# ----------------------------------------------------------------------
# 1. a query deadline: the burst's slowest query is bounded
# ----------------------------------------------------------------------
print("-- timeout --")
try:
    db.sql(cone_query(195), timeout=0.0)   # impossible budget
except QueryTimeout:
    print("cone search aborted by its deadline")
print(f"cache entries after the abort: "
      f"{db.summary()['cache_entries']} (nothing partial published)")

# ----------------------------------------------------------------------
# 2. cross-thread cancel: an operator kills one user's runaway query
# ----------------------------------------------------------------------
print("-- session cancel --")
session = db.connect()
outcome = []


def run_query():
    try:
        outcome.append(session.sql(cone_query(210)))
    except QueryCancelled:
        outcome.append("cancelled mid-execution")


worker = threading.Thread(target=run_query)
worker.start()
session.cancel()                 # races the query; both orders are safe
worker.join()
if isinstance(outcome[0], str):
    print(f"query outcome: {outcome[0]}")
else:
    print("query outcome: finished before the cancel landed")
session.close()

# ----------------------------------------------------------------------
# 3. pool shutdown under a burst: running queries stop, fast
# ----------------------------------------------------------------------
print("-- pool shutdown --")
pool = db.pool(workers=4)
burst = [cone_query(150 + patch, radius=1.0 + 0.1 * (patch % 7))
         for patch in range(40)]
futures = [pool.submit(sql) for sql in burst]
time.sleep(0.05)                 # let the burst get going
started = time.perf_counter()
pool.close(wait=True, cancel_pending=True)
elapsed = time.perf_counter() - started

completed = sum(1 for f in futures
                if not f.cancelled() and f.exception() is None)
aborted = sum(1 for f in futures
              if not f.cancelled()
              and isinstance(f.exception(), QueryCancelled))
dropped = sum(1 for f in futures if f.cancelled())
print(f"shutdown took {elapsed * 1000:.0f} ms: "
      f"{completed} completed, {aborted} aborted mid-query, "
      f"{dropped} dropped from the queue")
print(f"in-flight registrations left behind: "
      f"{len(db.recycler.inflight)}")

db.close()
