"""Proactive recycling: cube caching with selections and with binning.

The paper's Section IV-B: sometimes it pays to run a *more expensive*
query whose intermediate result has higher reuse potential.  This demo
shows both cube strategies on a lineitem-like table:

* dashboard queries that differ only in a low-cardinality filter
  (``shipmode``) share one predicate-free "cube" aggregate;
* date-range reports share a calendar-year-binned cube, recomputing only
  the residual days at the range edges.

Run:  python examples/proactive_cube_caching.py
"""

import numpy as np

from repro import BinningSpec, Database, RecyclerConfig, Table
from repro.columnar import DATE, FLOAT64, INT64, STRING, date_to_days

db = Database(RecyclerConfig(mode="pa", proactive_benefit_steered=False))

rng = np.random.default_rng(7)
n = 150_000
start = date_to_days("1994-01-01")
end = date_to_days("1998-12-31")
items = Table(
    Table.from_rows(
        ["shipdate", "shipmode", "returnflag", "quantity", "price"],
        [DATE, STRING, STRING, INT64, FLOAT64], []).schema,
    {
        "shipdate": rng.integers(start, end, n).astype(np.int32),
        "shipmode": rng.choice(
            np.array(["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"],
                     dtype=object), n),
        "returnflag": rng.choice(np.array(["A", "N", "R"], dtype=object),
                                 n),
        "quantity": rng.integers(1, 50, n),
        "price": rng.uniform(10.0, 1000.0, n).round(2),
    })
db.register_table("items", items)
db.register_binning("items", BinningSpec("shipdate", "year"))


def report(title, sql):
    result = db.sql(sql)
    print(f"  {title:<44} {result.stats.total_cost:>12.0f} cost units"
          f"  ({result.stats.num_reused} reused)")
    return result


print("cube caching with selections — the shipmode dashboard:")
for mode in ("AIR", "RAIL", "SHIP", "TRUCK"):
    report(f"sum(quantity) by returnflag, shipmode={mode}", f"""
        SELECT returnflag, sum(quantity) AS sum_qty
        FROM items
        WHERE shipmode = '{mode}'
        GROUP BY returnflag""")
print("  -> the first query builds the (returnflag x shipmode) cube;"
      " the rest filter its few rows.\n")

print("cube caching with binning — the rolling date-range report:")
for cutoff in ("1998-03-01", "1997-09-15", "1996-06-30", "1998-11-02"):
    report(f"sum(quantity) by returnflag, shipdate <= {cutoff}", f"""
        SELECT returnflag, sum(quantity) AS sum_qty
        FROM items
        WHERE shipdate <= date '{cutoff}'
        GROUP BY returnflag""")
print("  -> whole calendar years come from the year-binned cube; only"
      " the residual days are recomputed.\n")

summary = db.summary()
print(f"recycler: {summary['graph']['nodes']} graph nodes,"
      f" {summary['cache_entries']} cached results,"
      f" {summary['cache'].reuses} reuses")
