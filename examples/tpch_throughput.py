"""TPC-H throughput: concurrent streams sharing work through the recycler.

Reproduces the paper's core experiment at demo scale: N query streams
run concurrently (virtual time, 12 worker slots); with recycling on,
repeated patterns across streams reuse each other's intermediate and
final results, and concurrent duplicates stall for the in-flight
producer instead of recomputing.

Run:  python examples/tpch_throughput.py [num_streams]
"""

import sys

from repro.harness import format_bars
from repro.harness.figures import make_setup, run_throughput


def main(num_streams: int = 12) -> None:
    print(f"generating TPC-H (SF 0.005) and {num_streams} qgen streams"
          " of the 22 query patterns...")
    setup = make_setup(scale_factor=0.005)

    rows = []
    details = {}
    for mode in ("off", "hist", "spec", "pa"):
        run = run_throughput(setup, num_streams, mode)
        rows.append((mode.upper(), run.sim.average_stream_time()))
        details[mode] = run
        stalls = sum(t.stall for t in run.sim.traces)
        reuses = sum(t.num_reused for t in run.sim.traces)
        print(f"  {mode.upper():<5} avg stream time"
              f" {run.sim.average_stream_time():>10.0f} virtual ms |"
              f" {reuses:>4} reuses | {stalls:>8.0f} ms stalled")

    print()
    print(format_bars(rows, title="average evaluation time per stream"
                                  " (lower is better)", unit=" ms"))

    off = rows[0][1]
    print("\nimprovement over OFF:")
    for mode, value in rows[1:]:
        print(f"  {mode}: {100 * (1 - value / off):.0f}%")

    spec = details["spec"].recycler
    print(f"\nrecycler graph: {len(spec.graph.nodes)} nodes;"
          f" cache: {len(spec.cache)} entries,"
          f" {spec.cache.used / 1024 / 1024:.1f} MB"
          f" ({spec.cache.counters.reuses} reuses)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
