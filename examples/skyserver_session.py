"""SkyServer session: the paper's motivating real-world workload.

An interactive astronomy session keeps asking about the same patch of
sky: the expensive cone search (``fGetNearbyObjEq``) runs once, then
every follow-up — point lookups, photometric cuts, histograms, paging —
is answered from recycled results.

Run:  python examples/skyserver_session.py
"""

from repro import Database, RecyclerConfig
from repro.workloads.skyserver import (CONE_SEARCH_COST_PER_ROW,
                                       NEARBY_SCHEMA, generate_photoobj,
                                       make_cone_search)

# ----------------------------------------------------------------------
# build the sky: a photoobj table + the registered cone-search function
# ----------------------------------------------------------------------
db = Database(RecyclerConfig(mode="spec"))
photoobj = generate_photoobj(num_rows=60000)
db.register_table("photoobj", photoobj)
db.register_function("fgetnearbyobjeq", make_cone_search(photoobj),
                     NEARBY_SCHEMA,
                     invocation_cost=photoobj.num_rows
                     * CONE_SEARCH_COST_PER_ROW)

session = [
    ("the paper's most frequent query", """
        SELECT p.objid, p.run, p.rerun, p.camcol, p.field, p.obj, p.type
        FROM fGetNearbyObjEq(195, 2.5, 0.5) n, photoobj p
        WHERE n.objid = p.objid
        LIMIT 10"""),
    ("same question again (another user, same sky patch)", """
        SELECT p.objid, p.run, p.rerun, p.camcol, p.field, p.obj, p.type
        FROM fGetNearbyObjEq(195, 2.5, 0.5) n, photoobj p
        WHERE n.objid = p.objid
        LIMIT 10"""),
    ("photometric cut over the same cone", """
        SELECT p.objid, p.ra, p.dec, p.modelmag_r
        FROM fGetNearbyObjEq(195, 2.5, 0.5) n, photoobj p
        WHERE n.objid = p.objid AND p.modelmag_r < 20.0
        LIMIT 10"""),
    ("object-type histogram over the same cone", """
        SELECT p.type, count(*) AS n, min(p.modelmag_r) AS brightest
        FROM fGetNearbyObjEq(195, 2.5, 0.5) n, photoobj p
        WHERE n.objid = p.objid
        GROUP BY p.type
        ORDER BY p.type"""),
    ("nearest neighbours, paged", """
        SELECT n.objid, n.distance
        FROM fGetNearbyObjEq(195, 2.5, 0.5) n
        ORDER BY n.distance
        LIMIT 5"""),
    ("a different patch of sky (no sharing)", """
        SELECT p.objid, p.run, p.rerun, p.camcol, p.field, p.obj, p.type
        FROM fGetNearbyObjEq(210, 10.0, 0.5) n, photoobj p
        WHERE n.objid = p.objid
        LIMIT 10"""),
]

print(f"{'query':<48} {'cost units':>12} {'reused':>7} {'rows':>5}")
print("-" * 76)
for description, sql in session:
    result = db.sql(sql, label=description)
    print(f"{description:<48} {result.stats.total_cost:>12.0f}"
          f" {result.stats.num_reused:>7} {result.table.num_rows:>5}")

summary = db.summary()
print("-" * 76)
print(f"cache: {summary['cache_entries']} entries,"
      f" {summary['cache_used_bytes'] / 1024:.0f} KB"
      f" (the paper: a few hundred KB suffice for this workload)")
