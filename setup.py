"""Setup shim: enables `python setup.py develop` on offline environments
where the `wheel` package (needed for PEP 660 editable installs) is absent.
"""
from setuptools import setup

setup()
