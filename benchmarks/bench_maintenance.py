"""Maintenance-cycle cost: the scheduler must be cheap when idle and
bounded when working.

Three measurements back the cost-aware scheduling claims:

* **no-op cycle** — GC scan + budgeted-truncation eligibility scan on a
  populated graph with nothing to collect: this is what the background
  thread pays on every wake, so it must stay in the sub-millisecond
  range;
* **budgeted truncation** — a full benefit-per-byte ordered sweep of an
  idle graph (fresh graph per round);
* **incremental append stats** — ``Catalog.append_rows`` with the
  incremental merge vs. the full-recompute path on a wide table, the
  `O(delta + distinct)` vs `O(table)` claim measured.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import Catalog, FLOAT64, INT64
from repro.workloads.skyserver import build_catalog, generate_workload


def populated_db(num_rows: int = 8000, queries: int = 60) -> Database:
    db = Database(
        RecyclerConfig(mode="spec", maintenance_idle_seconds=None,
                       maintenance_graph_node_limit=None),
        catalog=build_catalog(num_rows=num_rows))
    for query in generate_workload(queries):
        db.sql(query.sql, label=query.label)
    return db


@pytest.fixture(scope="module")
def idle_db():
    return populated_db()


def test_bench_maintenance_noop_cycle(benchmark, idle_db):
    """Per-wake overhead when there is nothing to do: version-dead scan
    plus the budgeted-truncation eligibility pass (nothing idle enough)."""
    recycler = idle_db.recycler

    def noop_cycle():
        collected = recycler.collect_version_dead()
        removed, _ = recycler.truncate_budgeted(
            min_idle_events=1_000_000_000)
        return collected, removed

    collected, removed = benchmark(noop_cycle)
    assert collected == 0 and removed == 0
    benchmark.extra_info["graph_nodes"] = \
        len(idle_db.recycler.graph.nodes)
    # the background thread pays this on every wake; keep it tiny
    assert benchmark.stats.stats.mean < 0.05


def test_bench_budgeted_truncation(benchmark):
    """Full benefit-ordered sweep of an idle graph, fresh per round."""

    def setup():
        db = populated_db()
        for _ in range(600):
            db.recycler.graph.tick()  # age everything into eligibility
        return (db,), {}

    def sweep(db):
        removed, _ = db.recycler.truncate_budgeted(min_idle_events=256)
        db.close()
        return removed

    removed = benchmark.pedantic(sweep, setup=setup, rounds=3,
                                 iterations=1)
    assert removed > 0


def test_bench_incremental_append_stats(benchmark):
    """Incremental merge vs full recompute on a 200k-row table."""
    rng = np.random.default_rng(0)
    n = 200_000
    schema = Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema

    def big_table():
        # values rounded to 3 decimals: ~1000 distinct per column, well
        # under the uniques cap, so the incremental merge path engages
        # (a continuous column would exceed the cap by design and fall
        # back to the full recompute)
        return Table(schema, {"g": rng.integers(0, 1000, n),
                              "v": np.round(rng.uniform(0, 1, n), 3)})

    delta = Table(schema, {"g": np.arange(100, dtype=np.int64),
                           "v": np.round(rng.uniform(0, 1, 100), 3)})

    incremental = Catalog(stats_refresh_appends=1_000_000)
    incremental.register_table("t", big_table())
    benchmark(lambda: incremental.append_rows("t", delta))
    assert incremental.stats_counters["incremental_merges"] > 0

    # one-shot reference: the legacy full-recompute append
    full = Catalog(stats_refresh_appends=1)
    full.register_table("t", big_table())
    started = time.perf_counter()
    full.append_rows("t", delta)
    full_seconds = time.perf_counter() - started
    assert full.stats_counters["full_recomputes"] == 1
    benchmark.extra_info["full_recompute_s"] = round(full_seconds, 5)
    benchmark.extra_info["speedup_vs_full"] = round(
        full_seconds / max(benchmark.stats.stats.mean, 1e-9), 1)
