"""Figure 7 bench: TPC-H throughput — avg evaluation time per stream.

Regenerates the paper's series: average per-stream evaluation time for
OFF / HIST / SPEC / PA across growing stream counts.

Paper shape to reproduce: recycling always helps; the improvement grows
with the number of streams (10% at 4 streams to 79% at 256 in the
paper); SPEC beats HIST; SPEC/PA lead at high stream counts.
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro.harness.figures import make_setup, run_fig7


def _params():
    if FULL:
        return dict(stream_counts=(4, 16, 64, 256), scale_factor=0.01)
    return dict(stream_counts=(4, 16, 64), scale_factor=0.005)


def test_fig7_throughput(benchmark):
    params = _params()
    setup = make_setup(scale_factor=params["scale_factor"])
    result = benchmark.pedantic(
        lambda: run_fig7(stream_counts=params["stream_counts"],
                         setup=setup),
        rounds=1, iterations=1)
    save_result("fig7.txt", result.render())

    counts = params["stream_counts"]
    for count in counts:
        for mode in ("hist", "spec", "pa"):
            gain = result.improvement(count, mode)
            benchmark.extra_info[f"{mode}@{count}"] = round(gain, 1)
            # recycling never hurts
            assert gain > 0.0, (count, mode)
    # the benefit grows with the number of streams (for SPEC)
    gains = [result.improvement(c, "spec") for c in counts]
    assert gains[-1] > gains[0]
    # SPEC beats HIST at every stream count (paper: speculation gave
    # better results than history)
    for count in counts:
        assert result.improvement(count, "spec") >= \
            result.improvement(count, "hist") - 2.0
    # PA is best at the highest stream count
    top = counts[-1]
    assert result.improvement(top, "pa") >= \
        result.improvement(top, "spec") - 2.0
