"""Figure 10 bench: matching cost over a long throughput run.

Regenerates the paper's series: per-query recycler-graph matching cost
(wall clock) over all invocations of a many-stream run, in total and per
pattern.

Paper shape to reproduce: matching cost grows only moderately as the
graph grows and stays orders of magnitude below query execution cost
(paper: max 2 ms vs 0.3-11.3 s runtimes).
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro.harness.figures import make_setup, run_fig10


def _params():
    if FULL:
        return dict(num_streams=256, scale_factor=0.01)
    return dict(num_streams=64, scale_factor=0.005)


def test_fig10_matching_cost(benchmark):
    params = _params()
    setup = make_setup(scale_factor=params["scale_factor"])
    result = benchmark.pedantic(
        lambda: run_fig10(num_streams=params["num_streams"], setup=setup),
        rounds=1, iterations=1)
    save_result("fig10.txt", result.render())

    benchmark.extra_info["p99_matching_ms"] = round(
        result.p99_matching_ms(), 4)
    benchmark.extra_info["max_matching_ms"] = round(
        result.max_matching_ms(), 4)
    benchmark.extra_info["samples"] = len(result.samples)

    assert len(result.samples) == params["num_streams"] * 22
    # headline claim: matching stays far below execution cost
    assert result.matching_stays_cheap(factor=10.0)
    # growth is moderate: the last-decile average is within an order of
    # magnitude of the first-decile average
    buckets = result.bucket_averages(10)
    assert buckets[-1][1] < max(buckets[0][1], 0.1) * 10
