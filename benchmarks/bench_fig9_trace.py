"""Figure 9 bench: detailed 8-stream trace of a 6-query subset.

Regenerates the paper's trace: 8 streams × {Q1, Q8, Q13, Q18, Q19,
Q21}, speculation on, proactive plan versions for Q1 and Q19, showing
who materializes, who reuses, and who stalls for in-flight results.

Paper shape to reproduce: the first instance of each shared result
materializes it, every other stream reuses it; some streams stall until
the producer finishes; with speculation on, every query either
materializes or reuses its final result.
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro.harness.figures import make_setup, run_fig9


def _params():
    return dict(scale_factor=0.01 if FULL else 0.005)


def test_fig9_trace(benchmark):
    params = _params()
    setup = make_setup(scale_factor=params["scale_factor"], workers=8)
    result = benchmark.pedantic(
        lambda: run_fig9(num_streams=8, setup=setup),
        rounds=1, iterations=1)
    save_result("fig9.txt", result.render())

    sharing = result.sharing_summary()
    benchmark.extra_info["patterns"] = sorted(sharing)
    # every pattern materializes at least one shared result
    for label, (materialized, _) in sharing.items():
        assert materialized >= 1, label
    # substantial sharing across the 8 streams overall
    assert sum(reused for _, reused in sharing.values()) >= 10
    # speculation on: (almost) every query materializes or reuses its
    # final result — a handful may be rejected by the cache policy
    active = sum(1 for t in result.traces
                 if t.num_materialized + t.num_reused > 0)
    assert active >= 0.9 * len(result.traces)
    # concurrent sharing caused real stalls somewhere in the run
    assert sum(result.stall_summary().values()) > 0.0
