"""Real-threads throughput: concurrent sessions on a shared recycler.

The wall-clock counterpart of bench_fig7: the same SkyServer stream
setup, but executed by actual OS threads (one session per stream) with
1/2/4/8/16 simultaneous query slots, a 16/32/64-worker scale-out sweep,
a coarse-vs-striped lock comparison (``lock_stripes=1`` reproduces the
PR 1 single-``RLock`` layout), and a process-sharded sweep
(``db.shard_runtime``: cold plans execute in worker processes over
shared-memory tables).  Reports queries/second per worker count plus a
``scaling_efficiency`` ratio (qps@8 / 8·qps@1) for the thread and
process modes, and verifies every configuration returns byte-identical
results to the serial run — recycling plus real concurrency must never
change answers.

A note on the striping numbers: CPython's GIL serializes the recycler's
pure-Python critical sections whichever lock guards them, so the stripe
win on this interpreter shows up as reduced lock *wait* (stall) rather
than a multiple of throughput; the structural gains (store admissions
never queue behind another plan's rewrite) are what scale on free-
threaded builds.
"""

from __future__ import annotations

import importlib.util
import os
import pathlib

from conftest import FULL, save_result

from repro import Database, RecyclerConfig
from repro.columnar import INT64
from repro.expr import nodes as e
from repro.expr.analysis import split_conjuncts
from repro.harness.concurrent import (ConcurrentStreamRunner,
                                      format_throughput_table)
from repro.plan.logical import Join, Limit, Project, Select, Sort, TopN
from repro.workloads.skyserver import build_catalog, generate_workload
from repro.workloads import tpch


def _params():
    if FULL:
        return dict(num_rows=60000, n_streams=8, per_stream=12)
    return dict(num_rows=8000, n_streams=8, per_stream=6)


def _scaleout_params():
    if FULL:
        return dict(num_rows=60000, n_streams=64, per_stream=4)
    return dict(num_rows=8000, n_streams=64, per_stream=2)


def _streams(n_streams, per_stream):
    workload = generate_workload(n_streams * per_stream)
    return [workload[i * per_stream:(i + 1) * per_stream]
            for i in range(n_streams)]


def _fresh_db(num_rows, **config_kwargs):
    return Database(RecyclerConfig(mode="spec", **config_kwargs),
                    catalog=build_catalog(num_rows=num_rows))


def _serial_reference(num_rows, streams):
    serial_db = _fresh_db(num_rows)
    with serial_db.connect() as session:
        return {
            (stream_id, index):
                session.sql(query.sql, label=query.label).table.to_rows()
            for stream_id, stream in enumerate(streams)
            for index, query in enumerate(stream)
        }


def test_bench_concurrent(benchmark):
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])

    # Serial reference: every query's exact rows, single session.
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (1, 2, 4, 8, 16):
            db = _fresh_db(params["num_rows"])
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True)
            results.append(runner.run(streams))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent.txt", format_throughput_table(
        results, title="real-threads throughput (SkyServer)"))

    qps = {}
    for res in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        assert res.throughput_qps > 0
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        qps[res.workers] = res.throughput_qps
        benchmark.extra_info[f"qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
        benchmark.extra_info[f"stall_s@{res.workers}"] = \
            round(res.total_stall_seconds(), 3)
    # parallel efficiency at 8 slots: qps@8 / (8 * qps@1); 1.0 is
    # perfect scaling, ~1/8 is fully serialized (the GIL ceiling)
    benchmark.extra_info["scaling_efficiency"] = \
        round(qps[8] / (8 * qps[1]), 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    # the shared-result machinery must actually engage
    assert any(res.num_reused() > 0 for res in results)


def test_bench_process_mode(benchmark):
    """Process-sharded throughput: the same stream setup dispatched to
    1/4/8 worker *processes* (cold plans execute in workers over
    shared-memory tables; the recycler stays authoritative in the
    parent).  Byte-identical to the serial reference at every width."""
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (1, 4, 8):
            db = _fresh_db(params["num_rows"])
            runtime = db.shard_runtime(workers)
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True,
                                            executor=runtime)
            results.append((runner.run(streams),
                            dict(runtime.stats)))
            db.close()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent_process.txt", format_throughput_table(
        [res for res, _ in results],
        title="process-sharded throughput (SkyServer)"))

    qps = {}
    for res, stats in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        assert stats["remote_queries"] > 0, stats
        qps[res.workers] = res.throughput_qps
        benchmark.extra_info[f"process_qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
        benchmark.extra_info[f"remote_queries@{res.workers}"] = \
            stats["remote_queries"]
    benchmark.extra_info["process_scaling_efficiency"] = \
        round(qps[8] / (8 * qps[1]), 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_striping_vs_coarse(benchmark):
    """8-worker throughput: PR 1 coarse-lock layout (``lock_stripes=1``)
    vs. the striped default, byte-identical results required of both."""
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def compare():
        out = {}
        for label, stripes in (("coarse", 1), ("striped", 16)):
            db = _fresh_db(params["num_rows"], lock_stripes=stripes)
            runner = ConcurrentStreamRunner(db, workers=8,
                                            keep_results=True)
            out[label] = runner.run(streams)
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    for label, res in out.items():
        for trace in res.traces:
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (label, trace.stream, trace.index)
    coarse = out["coarse"].throughput_qps
    striped = out["striped"].throughput_qps
    speedup = striped / coarse if coarse else 0.0
    benchmark.extra_info["qps_coarse"] = round(coarse, 1)
    benchmark.extra_info["qps_striped"] = round(striped, 1)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    save_result("concurrent_striping.txt", "\n".join([
        "striped vs coarse recycler lock (8 workers, SkyServer)",
        "=" * 54,
        f"coarse  (stripes=1):  {coarse:9.1f} qps"
        f"  stall_s={out['coarse'].total_stall_seconds():.3f}",
        f"striped (stripes=16): {striped:9.1f} qps"
        f"  stall_s={out['striped'].total_stall_seconds():.3f}",
        f"speedup: {speedup:.2f}x",
    ]))
    # correctness is asserted above; the single-round wall-clock ratio
    # is reported, not asserted (too noisy for a hard gate — see the
    # module docstring on GIL-bound expectations)
    assert coarse > 0 and striped > 0


# ----------------------------------------------------------------------
# canonicalization match rate
# ----------------------------------------------------------------------
_SAFE_INT = 2 ** 31  # floats this small round-trip exactly


def _floatify(expr):
    """Respell integer comparison literals as floats (``1`` -> ``1.0``)
    — the client-side spelling drift the normalize pass absorbs."""
    if isinstance(expr, (e.And, e.Or)):
        return type(expr)([_floatify(a) for a in expr.args])
    if isinstance(expr, e.Not):
        return e.Not(_floatify(expr.arg))
    if isinstance(expr, e.Cmp):
        def lit(x):
            if isinstance(x, e.Lit) and x._dtype is INT64 \
                    and abs(x.value) < _SAFE_INT:
                return e.Lit(float(x.value))
            return x
        return e.Cmp(expr.op, lit(expr.left), lit(expr.right))
    return expr


def _deshape(plan, variant, snapshot):
    """Rewrite ``plan`` into an equivalent but differently-*shaped*
    plan, cycling four inverse-canonical transform sets: stacked
    filters + filters hoisted above joins, float literal spelling,
    ``TopN`` written as ``Sort``+``Limit`` + a redundant outer
    ``Limit``, and an identity projection wrapper.  Simulates the same
    query arriving from clients that phrase it differently."""
    def rec(node):
        children = [rec(c) for c in node.children]
        if any(n is not o for n, o in zip(children, node.children)):
            node = node.with_children(children)
        if variant % 4 == 0:
            if isinstance(node, Select):
                conjuncts = split_conjuncts(node.predicate)
                if len(conjuncts) > 1:
                    out = node.child
                    for conjunct in reversed(conjuncts):
                        out = Select(out, conjunct)
                    return out
            if isinstance(node, Join) and node.kind == "inner":
                predicates = []
                left, right = node.left, node.right
                if isinstance(left, Select):
                    predicates.append(left.predicate)
                    left = left.child
                if isinstance(right, Select):
                    predicates.append(right.predicate)
                    right = right.child
                if predicates:
                    out = Join(left, right, node.kind, node.left_keys,
                               node.right_keys, node.extra)
                    for predicate in predicates:
                        out = Select(out, predicate)
                    return out
        if variant % 4 in (1, 3) and isinstance(node, Select):
            return Select(node.child, _floatify(node.predicate))
        if variant % 4 == 2:
            if isinstance(node, TopN):
                return Limit(Sort(node.child, node.sort_keys),
                             node.limit, node.offset)
            if isinstance(node, Limit):
                return Limit(Limit(node.child,
                                   node.limit + node.offset),
                             node.limit, node.offset)
        return node

    out = rec(plan)
    if variant % 4 == 3:
        names = out.output_schema(snapshot).names
        out = Project(out, [(n, e.Col(n)) for n in names])
    return out


def _match_rate_replay(make_db, queries, reference):
    """Serial deshaped replay (single session — matched/inserted node
    counts are only deterministic without concurrent interleaving).
    Returns the optimizer summary; asserts byte-identical results."""
    db = make_db()
    snapshot = db.catalog.snapshot()
    for index, query in enumerate(queries):
        plan = _deshape(db.plan(query.sql), index, snapshot)
        result = db.execute(plan, label=query.label)
        assert result.table.to_rows() == reference[index], \
            (index, query.label)
    summary = db.summary()["optimizer"]
    db.close()
    return summary


def test_bench_match_rate(benchmark):
    """Recycler match rate on deshaped SkyServer + TPC-H replays,
    canonicalizing optimizer on vs. off (the issue's headline metric:
    equivalent-but-differently-shaped plans must stop missing)."""
    if FULL:
        sky_rows, sky_queries, tpch_sf = 60000, 48, 0.02
    else:
        sky_rows, sky_queries, tpch_sf = 8000, 32, 0.01
    workloads = {
        "skyserver": (
            lambda **kw: Database(
                RecyclerConfig(mode="spec", **kw),
                catalog=build_catalog(num_rows=sky_rows)),
            generate_workload(sky_queries)),
        "tpch": (
            lambda **kw: Database(
                RecyclerConfig(mode="spec", **kw),
                catalog=tpch.build_catalog(scale_factor=tpch_sf)),
            tpch.generate_stream(0, scale_factor=tpch_sf)
            + tpch.generate_stream(1, scale_factor=tpch_sf)),
    }

    references = {}
    for name, (make_db, queries) in workloads.items():
        ref_db = make_db()
        references[name] = [ref_db.sql(query.sql).table.to_rows()
                            for query in queries]
        ref_db.close()

    def replay():
        rates = {}
        for name, (make_db, queries) in workloads.items():
            for label, enabled in (("optimized", True),
                                   ("legacy", False)):
                rates[f"{name}_{label}"] = _match_rate_replay(
                    lambda: make_db(optimize_plans=enabled),
                    queries, references[name])
        return rates

    rates = benchmark.pedantic(replay, rounds=1, iterations=1)
    lines = ["canonicalization match rate (deshaped replays)",
             "=" * 47]
    for name in workloads:
        optimized = rates[f"{name}_optimized"]
        legacy = rates[f"{name}_legacy"]
        # node-level match rate must improve on every workload, and
        # full-plan hits must never get worse
        assert optimized["match_rate"] > legacy["match_rate"], \
            (name, rates)
        assert optimized["plan_hit_rate"] >= legacy["plan_hit_rate"], \
            (name, rates)
        benchmark.extra_info[f"match_rate_{name}"] = \
            round(optimized["match_rate"], 4)
        benchmark.extra_info[f"match_rate_{name}_legacy"] = \
            round(legacy["match_rate"], 4)
        benchmark.extra_info[f"plan_hit_rate_{name}"] = \
            round(optimized["plan_hit_rate"], 4)
        lines.append(
            f"{name:10s}  match_rate={optimized['match_rate']:.4f}"
            f" (legacy {legacy['match_rate']:.4f})"
            f"  plan_hit_rate={optimized['plan_hit_rate']:.4f}"
            f" (legacy {legacy['plan_hit_rate']:.4f})")
    # the deshaped SkyServer stream repeats its primary pattern across
    # all four shape variants: with canonicalization the repeats are
    # full-plan hits, without it each variant inserts its own subtree
    assert rates["skyserver_optimized"]["plan_hit_rate"] > \
        rates["skyserver_legacy"]["plan_hit_rate"], rates
    save_result("match_rate.txt", "\n".join(lines))


# ----------------------------------------------------------------------
# SQL shape battery replay
# ----------------------------------------------------------------------
_BATTERY_PATH = pathlib.Path(__file__).resolve().parent.parent \
    / "tests" / "sql" / "test_sql_battery_shapes.py"


def _load_battery():
    """The battery lives in the test tree (250 one-line SQL cases with
    pinned shapes); import it by path so the case list stays single-
    sourced between the test suite and this bench."""
    spec = importlib.util.spec_from_file_location(
        "sql_battery_shapes", _BATTERY_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_battery(benchmark):
    """Cold + warm replay of the SQL shape battery; the pinned metric is
    the warm-pass recycler match rate — every one of the 250 statements
    must fully unify with the graph on its second execution (the battery
    spans the whole SQL surface, so a new construct that fingerprints
    unstably shows up here before it shows up in production traces)."""
    battery = _load_battery()
    cases = battery.CASES

    def replay():
        db = Database(catalog=battery.build_catalog())
        references = []
        for sql, rows, cols in cases:
            cold = db.sql(sql)
            assert (cold.table.num_rows,
                    len(cold.table.schema.names)) == (rows, cols), sql
            references.append(battery.canon_rows(cold.table))
        matched = inserted = unified = 0
        for (sql, _, _), reference in zip(cases, references):
            warm = db.sql(sql)
            assert battery.canon_rows(warm.table) == reference, sql
            matched += warm.record.num_matched
            inserted += warm.record.num_inserted
            unified += warm.record.num_inserted == 0
        db.close()
        return matched, inserted, unified

    matched, inserted, unified = benchmark.pedantic(
        replay, rounds=1, iterations=1)
    match_rate = matched / (matched + inserted)
    unified_rate = unified / len(cases)
    # warm executions of identical text must never insert new nodes
    assert unified_rate == 1.0, (unified, len(cases))
    benchmark.extra_info["battery_cases"] = len(cases)
    benchmark.extra_info["battery_match_rate"] = round(match_rate, 4)
    benchmark.extra_info["battery_warm_unified_rate"] = \
        round(unified_rate, 4)
    save_result("battery.txt", "\n".join([
        "SQL shape battery warm replay",
        "=" * 29,
        f"cases:              {len(cases)}",
        f"warm match rate:    {match_rate:.4f}",
        f"fully unified:      {unified}/{len(cases)}",
    ]))


def test_bench_concurrent_scaleout(benchmark):
    """16/32/64 workers over 64 streams; byte-identical at 64."""
    params = _scaleout_params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (16, 32, 64):
            db = _fresh_db(params["num_rows"])
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True)
            results.append(runner.run(streams))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent_scaleout.txt", format_throughput_table(
        results, title="real-threads scale-out (SkyServer, 64 streams)"))
    for res in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        assert res.throughput_qps > 0
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        benchmark.extra_info[f"qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
    assert any(res.num_reused() > 0 for res in results)


def test_bench_server_mode(benchmark):
    """End-to-end serving throughput: the SkyServer stream mix driven
    through the TCP server by the closed-loop load harness — qps and
    client-observed p50/p99 through the wire, admission control, and
    the shared recycler (the serving deployment's numbers, as opposed
    to the in-process qps of test_bench_concurrent)."""
    from repro.harness.loadgen import LoadGenerator
    from repro.server import ReproServer

    params = _params()
    queries = [q.sql for stream in
               _streams(params["n_streams"], params["per_stream"])
               for q in stream]

    def serve_and_drive():
        db = _fresh_db(params["num_rows"])
        server = ReproServer(db, max_in_flight=8, max_queue=64)
        try:
            host, port = server.start()
            generator = LoadGenerator(
                host, port, queries, clients=params["n_streams"],
                queries_per_client=params["per_stream"] * 2,
                timeout=60.0)
            report = generator.run()
            # streaming phase: full-table scans consumed through the
            # v2 chunked protocol — qps plus time-to-first-byte, the
            # latency a streaming consumer feels regardless of size
            scans = LoadGenerator(
                host, port, ["SELECT * FROM photoobj"],
                clients=4, queries_per_client=6, timeout=60.0,
                stream=True)
            return report, scans.run(), server.stats()
        finally:
            server.stop()
            db.close()

    report, scan_report, stats = benchmark.pedantic(
        serve_and_drive, rounds=1, iterations=1)
    expected = params["n_streams"] * params["per_stream"] * 2
    assert report.errors == 0
    assert report.served == expected
    assert stats["rejected"] == 0  # queue is sized for the offered load
    assert scan_report.errors == 0
    assert scan_report.served == 4 * 6
    assert stats["streams"] >= scan_report.served
    metrics = report.as_dict()
    benchmark.extra_info["server_qps"] = metrics["qps"]
    benchmark.extra_info["server_p50_ms"] = metrics["p50_ms"]
    benchmark.extra_info["server_p99_ms"] = metrics["p99_ms"]
    scan_metrics = scan_report.as_dict()
    benchmark.extra_info["server_stream_qps"] = scan_metrics["qps"]
    benchmark.extra_info["server_ttfb_ms"] = \
        scan_metrics["ttfb_p50_ms"]
    save_result("server_mode.txt", "\n".join([
        "TCP serving throughput (SkyServer, closed loop)",
        "=" * 47,
        report.format(),
        "",
        "streaming scans (v2 chunked, 4 clients)",
        "=" * 39,
        scan_report.format(),
    ]))
