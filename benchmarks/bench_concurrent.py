"""Real-threads throughput: concurrent sessions on a shared recycler.

The wall-clock counterpart of bench_fig7: the same SkyServer stream
setup, but executed by actual OS threads (one session per stream) with
1/2/4/8 simultaneous query slots.  Reports queries/second per worker
count and verifies every configuration returns byte-identical results
to the serial run — recycling plus real concurrency must never change
answers.
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro import Database, RecyclerConfig
from repro.harness.concurrent import (ConcurrentStreamRunner,
                                      format_throughput_table)
from repro.workloads.skyserver import build_catalog, generate_workload


def _params():
    if FULL:
        return dict(num_rows=60000, n_streams=8, per_stream=12)
    return dict(num_rows=8000, n_streams=8, per_stream=6)


def _streams(n_streams, per_stream):
    workload = generate_workload(n_streams * per_stream)
    return [workload[i * per_stream:(i + 1) * per_stream]
            for i in range(n_streams)]


def _fresh_db(num_rows):
    return Database(RecyclerConfig(mode="spec"),
                    catalog=build_catalog(num_rows=num_rows))


def test_bench_concurrent(benchmark):
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])

    # Serial reference: every query's exact rows, single session.
    serial_db = _fresh_db(params["num_rows"])
    with serial_db.connect() as session:
        reference = {
            (stream_id, index):
                session.sql(query.sql, label=query.label).table.to_rows()
            for stream_id, stream in enumerate(streams)
            for index, query in enumerate(stream)
        }

    def sweep():
        results = []
        for workers in (1, 2, 4, 8):
            db = _fresh_db(params["num_rows"])
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True)
            results.append(runner.run(streams))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent.txt", format_throughput_table(
        results, title="real-threads throughput (SkyServer)"))

    for res in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        assert res.throughput_qps > 0
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        benchmark.extra_info[f"qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
        benchmark.extra_info[f"stall_s@{res.workers}"] = \
            round(res.total_stall_seconds(), 3)
    # the shared-result machinery must actually engage
    assert any(res.num_reused() > 0 for res in results)
