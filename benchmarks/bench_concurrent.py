"""Real-threads throughput: concurrent sessions on a shared recycler.

The wall-clock counterpart of bench_fig7: the same SkyServer stream
setup, but executed by actual OS threads (one session per stream) with
1/2/4/8/16 simultaneous query slots, a 16/32/64-worker scale-out sweep,
a coarse-vs-striped lock comparison (``lock_stripes=1`` reproduces the
PR 1 single-``RLock`` layout), and a process-sharded sweep
(``db.shard_runtime``: cold plans execute in worker processes over
shared-memory tables).  Reports queries/second per worker count plus a
``scaling_efficiency`` ratio (qps@8 / 8·qps@1) for the thread and
process modes, and verifies every configuration returns byte-identical
results to the serial run — recycling plus real concurrency must never
change answers.

A note on the striping numbers: CPython's GIL serializes the recycler's
pure-Python critical sections whichever lock guards them, so the stripe
win on this interpreter shows up as reduced lock *wait* (stall) rather
than a multiple of throughput; the structural gains (store admissions
never queue behind another plan's rewrite) are what scale on free-
threaded builds.
"""

from __future__ import annotations

import os

from conftest import FULL, save_result

from repro import Database, RecyclerConfig
from repro.harness.concurrent import (ConcurrentStreamRunner,
                                      format_throughput_table)
from repro.workloads.skyserver import build_catalog, generate_workload


def _params():
    if FULL:
        return dict(num_rows=60000, n_streams=8, per_stream=12)
    return dict(num_rows=8000, n_streams=8, per_stream=6)


def _scaleout_params():
    if FULL:
        return dict(num_rows=60000, n_streams=64, per_stream=4)
    return dict(num_rows=8000, n_streams=64, per_stream=2)


def _streams(n_streams, per_stream):
    workload = generate_workload(n_streams * per_stream)
    return [workload[i * per_stream:(i + 1) * per_stream]
            for i in range(n_streams)]


def _fresh_db(num_rows, **config_kwargs):
    return Database(RecyclerConfig(mode="spec", **config_kwargs),
                    catalog=build_catalog(num_rows=num_rows))


def _serial_reference(num_rows, streams):
    serial_db = _fresh_db(num_rows)
    with serial_db.connect() as session:
        return {
            (stream_id, index):
                session.sql(query.sql, label=query.label).table.to_rows()
            for stream_id, stream in enumerate(streams)
            for index, query in enumerate(stream)
        }


def test_bench_concurrent(benchmark):
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])

    # Serial reference: every query's exact rows, single session.
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (1, 2, 4, 8, 16):
            db = _fresh_db(params["num_rows"])
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True)
            results.append(runner.run(streams))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent.txt", format_throughput_table(
        results, title="real-threads throughput (SkyServer)"))

    qps = {}
    for res in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        assert res.throughput_qps > 0
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        qps[res.workers] = res.throughput_qps
        benchmark.extra_info[f"qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
        benchmark.extra_info[f"stall_s@{res.workers}"] = \
            round(res.total_stall_seconds(), 3)
    # parallel efficiency at 8 slots: qps@8 / (8 * qps@1); 1.0 is
    # perfect scaling, ~1/8 is fully serialized (the GIL ceiling)
    benchmark.extra_info["scaling_efficiency"] = \
        round(qps[8] / (8 * qps[1]), 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    # the shared-result machinery must actually engage
    assert any(res.num_reused() > 0 for res in results)


def test_bench_process_mode(benchmark):
    """Process-sharded throughput: the same stream setup dispatched to
    1/4/8 worker *processes* (cold plans execute in workers over
    shared-memory tables; the recycler stays authoritative in the
    parent).  Byte-identical to the serial reference at every width."""
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (1, 4, 8):
            db = _fresh_db(params["num_rows"])
            runtime = db.shard_runtime(workers)
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True,
                                            executor=runtime)
            results.append((runner.run(streams),
                            dict(runtime.stats)))
            db.close()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent_process.txt", format_throughput_table(
        [res for res, _ in results],
        title="process-sharded throughput (SkyServer)"))

    qps = {}
    for res, stats in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        assert stats["remote_queries"] > 0, stats
        qps[res.workers] = res.throughput_qps
        benchmark.extra_info[f"process_qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
        benchmark.extra_info[f"remote_queries@{res.workers}"] = \
            stats["remote_queries"]
    benchmark.extra_info["process_scaling_efficiency"] = \
        round(qps[8] / (8 * qps[1]), 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()


def test_bench_striping_vs_coarse(benchmark):
    """8-worker throughput: PR 1 coarse-lock layout (``lock_stripes=1``)
    vs. the striped default, byte-identical results required of both."""
    params = _params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def compare():
        out = {}
        for label, stripes in (("coarse", 1), ("striped", 16)):
            db = _fresh_db(params["num_rows"], lock_stripes=stripes)
            runner = ConcurrentStreamRunner(db, workers=8,
                                            keep_results=True)
            out[label] = runner.run(streams)
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    for label, res in out.items():
        for trace in res.traces:
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (label, trace.stream, trace.index)
    coarse = out["coarse"].throughput_qps
    striped = out["striped"].throughput_qps
    speedup = striped / coarse if coarse else 0.0
    benchmark.extra_info["qps_coarse"] = round(coarse, 1)
    benchmark.extra_info["qps_striped"] = round(striped, 1)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    save_result("concurrent_striping.txt", "\n".join([
        "striped vs coarse recycler lock (8 workers, SkyServer)",
        "=" * 54,
        f"coarse  (stripes=1):  {coarse:9.1f} qps"
        f"  stall_s={out['coarse'].total_stall_seconds():.3f}",
        f"striped (stripes=16): {striped:9.1f} qps"
        f"  stall_s={out['striped'].total_stall_seconds():.3f}",
        f"speedup: {speedup:.2f}x",
    ]))
    # correctness is asserted above; the single-round wall-clock ratio
    # is reported, not asserted (too noisy for a hard gate — see the
    # module docstring on GIL-bound expectations)
    assert coarse > 0 and striped > 0


def test_bench_concurrent_scaleout(benchmark):
    """16/32/64 workers over 64 streams; byte-identical at 64."""
    params = _scaleout_params()
    streams = _streams(params["n_streams"], params["per_stream"])
    reference = _serial_reference(params["num_rows"], streams)

    def sweep():
        results = []
        for workers in (16, 32, 64):
            db = _fresh_db(params["num_rows"])
            runner = ConcurrentStreamRunner(db, workers=workers,
                                            keep_results=True)
            results.append(runner.run(streams))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("concurrent_scaleout.txt", format_throughput_table(
        results, title="real-threads scale-out (SkyServer, 64 streams)"))
    for res in results:
        assert res.queries == params["n_streams"] * params["per_stream"]
        assert res.throughput_qps > 0
        for trace in res.traces:
            assert trace.result is not None
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (res.workers, trace.stream, trace.index)
        benchmark.extra_info[f"qps@{res.workers}"] = \
            round(res.throughput_qps, 1)
    assert any(res.num_reused() > 0 for res in results)
