"""Inject rendered benchmark outputs into EXPERIMENTS.md.

Usage:  python benchmarks/fill_experiments.py
Replaces the ``<!-- FIGn_RESULTS -->`` placeholders (or previously
injected blocks) with the current contents of ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
TARGET = ROOT / "EXPERIMENTS.md"

SECTIONS = {
    "FIG6_RESULTS": ["fig6.txt"],
    "FIG7_RESULTS": ["fig7.txt"],
    "FIG8_RESULTS": ["fig8.txt"],
    "FIG9_RESULTS": ["fig9.txt"],
    "FIG10_RESULTS": ["fig10.txt"],
    "ABLATION_RESULTS": ["ablation_subsumption.txt",
                         "ablation_aging.txt",
                         "ablation_cache_budget.txt",
                         "ablation_speculation.txt"],
}


def main() -> None:
    text = TARGET.read_text()
    for marker, files in SECTIONS.items():
        chunks = []
        for name in files:
            path = RESULTS / name
            if path.exists():
                chunks.append(path.read_text().strip())
        if not chunks:
            continue
        block = (f"<!-- {marker} -->\n```\n"
                 + "\n\n".join(chunks) + "\n```\n"
                 + f"<!-- /{marker} -->")
        pattern = re.compile(
            rf"<!-- {marker} -->(?:.*?<!-- /{marker} -->)?",
            re.DOTALL)
        text = pattern.sub(lambda _m: block, text, count=1)
    TARGET.write_text(text)
    print(f"updated {TARGET}")


if __name__ == "__main__":
    main()
