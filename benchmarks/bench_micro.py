"""Micro benchmarks: Algorithm-1 matching throughput and engine ops.

These measure real wall time (pytest-benchmark statistics are the
result): the matching bench substantiates Fig. 10's premise that
matching is cheap; the engine benches sanity-check the substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import RecyclerGraph, match_tree
from repro.workloads.tpch import build_catalog, generate_stream
from repro.sql import sql_to_plan


@pytest.fixture(scope="module")
def tpch_catalog():
    return build_catalog(scale_factor=0.002)


def test_micro_matching_against_populated_graph(benchmark, tpch_catalog):
    """Match one full TPC-H stream against a graph already holding 16
    streams' worth of plans (the Fig. 10 regime)."""
    graph = RecyclerGraph(tpch_catalog)
    query_id = 0
    for stream_id in range(16):
        for instance in generate_stream(stream_id, 0.002):
            query_id += 1
            plan = sql_to_plan(instance.sql, tpch_catalog)
            match_tree(plan, graph, tpch_catalog, query_id)
    probe_plans = [sql_to_plan(i.sql, tpch_catalog)
                   for i in generate_stream(99, 0.002)]
    state = {"next": query_id}

    def match_stream():
        for plan in probe_plans:
            state["next"] += 1
            match_tree(plan, graph, tpch_catalog, state["next"])

    benchmark(match_stream)
    benchmark.extra_info["graph_nodes"] = len(graph.nodes)
    # the whole 22-query stream must match in a few milliseconds
    assert benchmark.stats.stats.mean < 0.25


def test_micro_matching_insert_throughput(benchmark, tpch_catalog):
    """Insertion path: every query inserts a fresh selection node."""
    graph = RecyclerGraph(tpch_catalog)
    counter = {"n": 0}

    def insert_one():
        counter["n"] += 1
        plan = (q.scan("lineitem", ["l_quantity", "l_extendedprice"])
                 .filter(Cmp(">", Col("l_quantity"), Lit(counter["n"])))
                 .build())
        match_tree(plan, graph, tpch_catalog, counter["n"])

    benchmark(insert_one)


def test_micro_engine_scan_filter_aggregate(benchmark):
    rng = np.random.default_rng(0)
    n = 200_000
    catalog = Catalog()
    schema = Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema
    catalog.register_table("t", Table(schema, {
        "g": rng.integers(0, 100, n),
        "v": rng.uniform(0, 1, n),
    }), compute_stats=False)
    plan = (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(0.5)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "s")])
             .build())
    result = benchmark(lambda: execute_plan(plan, catalog))
    assert result.table.num_rows == 100


def test_micro_engine_hash_join(benchmark, tpch_catalog):
    plan = (q.scan("lineitem", ["l_orderkey", "l_extendedprice"])
             .join(q.scan("orders", ["o_orderkey", "o_orderdate"]),
                   on=[("l_orderkey", "o_orderkey")])
             .build())
    result = benchmark(lambda: execute_plan(plan, tpch_catalog))
    assert result.table.num_rows == \
        tpch_catalog.table("lineitem").num_rows


def test_micro_engine_topn(benchmark, tpch_catalog):
    plan = (q.scan("lineitem", ["l_orderkey", "l_extendedprice"])
             .top_n([("l_extendedprice", False)], limit=100)
             .build())
    result = benchmark(lambda: execute_plan(plan, tpch_catalog))
    assert result.table.num_rows == 100
