"""Shared benchmark configuration.

Benchmarks run at a scaled-down default so the whole suite finishes in a
few minutes; set ``REPRO_FULL=1`` for the paper-scale parameters
(4..256 streams, SF 0.01, 100 SkyServer queries).  Every figure bench
writes its rendered output to ``benchmarks/results/figN.txt`` — the
series EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import os
import pathlib

import pytest

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)
