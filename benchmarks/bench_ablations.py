"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one recycler mechanism on a controlled workload:

* **subsumption on/off** — Section IV-A's partial matching;
* **aging alpha** — Eq. 5's adaptation to workload shift;
* **cache budget sweep** — admission/replacement pressure;
* **speculation thresholds** — Section III-D's run-time decisions.
"""

from __future__ import annotations

from conftest import save_result

import numpy as np

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.expr import And, Cmp, Col, Lit
from repro.harness import format_table
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig


def _catalog(n: int = 40000) -> Catalog:
    rng = np.random.default_rng(21)
    catalog = Catalog()
    schema = Table.from_rows(["k", "g", "v"], [INT64, INT64, FLOAT64],
                             []).schema
    catalog.register_table("t", Table(schema, {
        "k": np.arange(n, dtype=np.int64),
        "g": rng.integers(0, 16, n),
        "v": rng.uniform(0.0, 100.0, n),
    }))
    return catalog


def _range_query(lo: float, hi: float):
    return (q.scan("t", ["g", "v"])
             .filter(And([Cmp(">=", Col("v"), Lit(lo)),
                          Cmp("<", Col("v"), Lit(hi))]))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv"),
                                          ("count_star", None, "n")])
             .build())


def _selected_agg(lo: float, hi: float, func: str, name: str):
    return (q.scan("t", ["g", "v"])
             .filter(And([Cmp(">=", Col("v"), Lit(lo)),
                          Cmp("<", Col("v"), Lit(hi))]))
             .aggregate(keys=["g"], aggs=[(func, Col("v"), name)])
             .build())


def test_ablation_subsumption(benchmark):
    """Narrower range queries derived from a cached wider selection.

    The wide selection becomes hot (referenced under several distinct
    aggregates, so the cached final results do not shadow it) and gets
    materialized by the history policy; with subsumption every narrower
    request is then answered by re-filtering the cached rows, without it
    each recomputes from the base table."""
    catalog = _catalog()

    def run(subsumption: bool) -> float:
        recycler = Recycler(catalog, RecyclerConfig(
            mode="spec", subsumption=subsumption, cache_capacity=None))
        # heat up the shared selection [0, 10) under varying aggregates
        for func, name in (("sum", "a"), ("max", "b"), ("min", "c"),
                           ("avg", "d")):
            recycler.execute(_selected_agg(0.0, 10.0, func, name))
        total = 0.0
        for hi in (8.0, 6.0, 5.0, 4.0, 3.0, 2.0):
            total += recycler.execute(
                _selected_agg(0.0, hi, "sum", "s")).stats.total_cost
        return total

    with_subsumption = benchmark.pedantic(
        lambda: run(True), rounds=1, iterations=1)
    without = run(False)
    save_result("ablation_subsumption.txt", format_table(
        ["subsumption", "cost of 6 narrower queries"],
        [("on", round(with_subsumption)), ("off", round(without))],
        title="Ablation — subsumption"))
    benchmark.extra_info["speedup"] = round(without / with_subsumption, 2)
    assert with_subsumption < 0.8 * without


def test_ablation_aging(benchmark):
    """Workload shift: with aging the cache migrates to the new hot
    query; with alpha=1 stale heavy-weight entries keep their benefit."""
    catalog = _catalog()
    old = _range_query(0.0, 50.0)

    def run(alpha: float) -> float:
        recycler = Recycler(catalog, RecyclerConfig(
            mode="spec", alpha=alpha,
            cache_capacity=6 * 1024))  # room for roughly one result
        for _ in range(6):   # build heavy history for the old query
            recycler.execute(_range_query(0.0, 50.0))
        cost = 0.0
        for _ in range(10):  # workload shifts to the new query
            cost += recycler.execute(
                _range_query(25.0, 80.0)).stats.total_cost
        return cost

    aged = benchmark.pedantic(lambda: run(0.7), rounds=1, iterations=1)
    frozen = run(1.0)
    save_result("ablation_aging.txt", format_table(
        ["alpha", "cost after workload shift"],
        [("0.7 (aging)", round(aged)), ("1.0 (no aging)",
                                        round(frozen))],
        title="Ablation — aging (Eq. 5)"))
    benchmark.extra_info["aged"] = round(aged)
    benchmark.extra_info["frozen"] = round(frozen)
    # with aging the new query gets cached no later than without
    assert aged <= frozen * 1.05


def test_ablation_cache_budget(benchmark):
    """Sweep the cache budget on a mixed recurring workload: more budget
    -> monotonically (roughly) lower total cost."""
    catalog = _catalog()
    rng = np.random.default_rng(3)
    workload = []
    for _ in range(60):
        lo = float(rng.choice([0.0, 10.0, 20.0, 30.0]))
        workload.append(_range_query(lo, lo + 40.0))

    def run(capacity: int | None) -> float:
        recycler = Recycler(catalog, RecyclerConfig(
            mode="spec", cache_capacity=capacity))
        return sum(recycler.execute(plan).stats.total_cost
                   for plan in workload)

    budgets = [1 * 1024, 4 * 1024, 64 * 1024, None]
    costs = {}
    for budget in budgets[:-1]:
        costs[budget] = run(budget)
    costs[None] = benchmark.pedantic(lambda: run(None), rounds=1,
                                     iterations=1)
    rows = [(("unlimited" if b is None else f"{b // 1024} KB"),
             round(costs[b])) for b in budgets]
    save_result("ablation_cache_budget.txt", format_table(
        ["cache budget", "total workload cost"], rows,
        title="Ablation — cache budget"))
    assert costs[None] <= costs[1024] * 1.02
    assert costs[64 * 1024] <= costs[1024] * 1.02


def test_ablation_speculation_thresholds(benchmark):
    """Speculation gates: a prohibitive min-cost threshold disables
    speculative materialization and forfeits second-occurrence reuse."""
    catalog = _catalog()

    def run(min_cost: float) -> float:
        recycler = Recycler(catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=min_cost,
            cache_capacity=None))
        total = 0.0
        for _ in range(4):
            total += recycler.execute(
                _range_query(0.0, 55.0)).stats.total_cost
        return total

    permissive = benchmark.pedantic(lambda: run(100.0), rounds=1,
                                    iterations=1)
    prohibitive = run(1e12)
    save_result("ablation_speculation.txt", format_table(
        ["speculation_min_cost", "cost of 4 identical queries"],
        [("100 (default)", round(permissive)),
         ("1e12 (disabled)", round(prohibitive))],
        title="Ablation — speculation"))
    benchmark.extra_info["speedup"] = round(prohibitive / permissive, 2)
    # with speculation the 2nd..4th runs reuse: large win
    assert permissive < 0.7 * prohibitive
