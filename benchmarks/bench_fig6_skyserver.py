"""Figure 6 bench: SkyServer — recycler vs MonetDB-style vs naive.

Regenerates the paper's bars: total workload time as % of naive, for
batch splits 1x100 / 2x50 / 4x25 (cache flushed between batches) under a
limited and an unlimited recycler cache.

Paper shape to reproduce: both systems land far below naive (< 50%);
the MonetDB-style recycler wins with an unlimited cache; the pipelined
recycler wins under the limited cache; benefit shrinks as flushes become
more frequent.
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro.harness.figures import run_fig6


def _params():
    if FULL:
        return dict(num_rows=60000, num_queries=100)
    return dict(num_rows=24000, num_queries=60)


def test_fig6_skyserver(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig6(**_params()), rounds=1, iterations=1)
    save_result("fig6.txt", result.render())

    by_key = {(r.system, r.split, r.cache): r.pct_of_naive
              for r in result.rows}
    # every configuration beats naive decisively
    for key, pct in by_key.items():
        assert pct < 60.0, key
        benchmark.extra_info["/".join(key)] = round(pct, 1)
    # MonetDB-style wins with an unlimited cache ...
    assert by_key[("MonetDB-style", "1x100", "unlimited")] < \
        by_key[("Recycler", "1x100", "unlimited")]
    # ... the pipelined recycler wins under the limited cache
    assert by_key[("Recycler", "1x100", "limited")] < \
        by_key[("MonetDB-style", "1x100", "limited")]
    # more frequent flushes reduce the benefit
    assert by_key[("Recycler", "4x25", "limited")] > \
        by_key[("Recycler", "1x100", "limited")]
