"""Figure 8 bench: per-pattern breakdown at the maximum stream count.

Regenerates the paper's per-query bars: each TPC-H pattern's average
time (stall + execution, queue wait excluded) under HIST / SPEC / PA
relative to OFF.

Paper shape to reproduce: HIST improves (almost) everything — Q9 is the
outlier because its ~92-value parameter rarely repeats; SPEC improves
every pattern; the proactive patterns (Q1, Q16, Q19) gain the most extra
ground under PA.
"""

from __future__ import annotations

from conftest import FULL, save_result

from repro.harness.figures import make_setup, run_fig8


def _params():
    if FULL:
        return dict(num_streams=256, scale_factor=0.01)
    return dict(num_streams=48, scale_factor=0.005)


def test_fig8_breakdown(benchmark):
    params = _params()
    setup = make_setup(scale_factor=params["scale_factor"])
    result = benchmark.pedantic(
        lambda: run_fig8(num_streams=params["num_streams"], setup=setup),
        rounds=1, iterations=1)
    save_result("fig8.txt", result.render())

    labels = [label for label in result.responses["off"]]
    spec_rel = {label: result.relative("spec", label)
                for label in labels}
    hist_rel = {label: result.relative("hist", label)
                for label in labels}
    for label in labels:
        benchmark.extra_info[f"spec/{label}"] = round(spec_rel[label], 3)

    # SPEC improves the large majority of patterns
    improved = sum(1 for v in spec_rel.values() if v < 0.95)
    assert improved >= len(labels) * 0.7
    # Q9 benefits less from HIST than the median pattern (its parameter
    # domain is the largest: ~92 colors)
    if "Q9" in hist_rel and len(hist_rel) > 3:
        median = sorted(hist_rel.values())[len(hist_rel) // 2]
        assert hist_rel["Q9"] >= median - 0.05
    # the proactive patterns gain under PA versus SPEC
    for label in ("Q1", "Q16"):
        if label in labels:
            assert result.relative("pa", label) <= \
                spec_rel[label] + 0.10, label
