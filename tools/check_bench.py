#!/usr/bin/env python3
"""Performance-regression gate (run by the CI ``bench`` job).

Runs a **pinned subset** of the benchmark suites —
``benchmarks/bench_micro.py`` (matching + engine micro ops),
``benchmarks/bench_concurrent.py::test_bench_concurrent`` (real-threads
worker scaling), ``benchmarks/bench_concurrent.py::
test_bench_process_mode`` (process-sharded worker scaling),
``benchmarks/bench_concurrent.py::test_bench_battery`` (SQL shape
battery warm-replay match rate), and
``benchmarks/bench_maintenance.py`` (maintenance cycle cost) —
collects medians, worker-scaling throughput, and scaling-efficiency
ratios into ``BENCH_ci.json``, and compares them against the committed
``benchmarks/baseline.json`` with a tolerance band:

* ``lower_better`` metrics (wall-clock medians) fail when
  ``measured > baseline * tolerance``;
* ``higher_better`` metrics (queries/second) fail when
  ``measured < baseline / tolerance``.

The band is deliberately wide (default 4x): shared CI runners are
noisy, and the gate exists to catch *structural* regressions — a hot
path going quadratic, a lock serializing the scale-out sweep — not
single-digit-percent drift.  Tighten locally with ``--tolerance``.

Usage::

    python tools/check_bench.py                  # gate against baseline
    python tools/check_bench.py --update-baseline  # rewrite baseline
    python tools/check_bench.py --tolerance 1.5 --output BENCH_ci.json
    python tools/check_bench.py --suite nogil --output BENCH_nogil.json

Exit codes: 0 pass, 1 regression (or missing metric), 2 harness error.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = ROOT / "benchmarks"

#: the pinned subset: fast enough for every push, broad enough to catch
#: matching, engine, concurrency, and maintenance regressions.
PINNED = [
    "bench_micro.py",
    "bench_concurrent.py::test_bench_concurrent",
    "bench_concurrent.py::test_bench_process_mode",
    "bench_concurrent.py::test_bench_match_rate",
    "bench_concurrent.py::test_bench_battery",
    "bench_concurrent.py::test_bench_server_mode",
    "bench_maintenance.py",
]

#: extra_info keys promoted to gated metrics (benchmark fullname ->
#: extra_info key -> (metric name, unit[, kind])).  ``kind`` defaults to
#: ``higher_better`` (throughputs, rates); latency metrics declare
#: ``lower_better`` explicitly.
QPS_METRICS = {
    "bench_concurrent.py::test_bench_concurrent": {
        "qps@1": ("concurrent_qps@1", "queries/s"),
        "qps@2": ("concurrent_qps@2", "queries/s"),
        "qps@4": ("concurrent_qps@4", "queries/s"),
        "qps@8": ("concurrent_qps@8", "queries/s"),
        "qps@16": ("concurrent_qps@16", "queries/s"),
        "scaling_efficiency": ("concurrent_scaling_efficiency", "ratio"),
    },
    "bench_concurrent.py::test_bench_process_mode": {
        "process_qps@1": ("process_qps@1", "queries/s"),
        "process_qps@4": ("process_qps@4", "queries/s"),
        "process_qps@8": ("process_qps@8", "queries/s"),
        "process_scaling_efficiency":
            ("process_scaling_efficiency", "ratio"),
    },
    # canonicalization effectiveness: deshaped-replay recycler match
    # rates (the optimized legs; the in-bench asserts already require
    # optimized > legacy, this pins the absolute level)
    "bench_concurrent.py::test_bench_match_rate": {
        "match_rate_skyserver": ("match_rate_skyserver", "ratio"),
        "match_rate_tpch": ("match_rate_tpch", "ratio"),
        "plan_hit_rate_skyserver":
            ("plan_hit_rate_skyserver", "ratio"),
    },
    # SQL shape battery: warm-replay recycler match rate over the full
    # SQL surface (the in-bench assert requires every warm statement to
    # unify completely; this pins the node-level rate)
    "bench_concurrent.py::test_bench_battery": {
        "battery_match_rate": ("battery_match_rate", "ratio"),
        "battery_warm_unified_rate":
            ("battery_warm_unified_rate", "ratio"),
    },
    # TCP serving: closed-loop throughput plus the client-observed
    # latency distribution through the wire + admission control
    "bench_concurrent.py::test_bench_server_mode": {
        "server_qps": ("server_qps", "queries/s"),
        "server_p50_ms": ("server_p50_ms", "ms", "lower_better"),
        "server_p99_ms": ("server_p99_ms", "ms", "lower_better"),
        "server_stream_qps": ("server_stream_qps", "queries/s"),
        "server_ttfb_ms": ("server_ttfb_ms", "ms", "lower_better"),
    },
}

DEFAULT_TOLERANCE = 4.0


def _gil_enabled() -> bool | None:
    """Whether this interpreter runs with the GIL (None: no API —
    CPython < 3.13, always GIL-bound)."""
    checker = getattr(sys, "_is_gil_enabled", None)
    return checker() if checker is not None else None


def run_benchmarks(json_path: Path) -> None:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.setdefault("PYTHONHASHSEED", "0")
    cmd = [sys.executable, "-m", "pytest", "-q", *PINNED,
           f"--benchmark-json={json_path}"]
    print("running:", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, cwd=BENCH_DIR, env=env)
    if proc.returncode != 0:
        print(f"benchmark run failed (exit {proc.returncode})")
        raise SystemExit(2)


def collect_metrics(raw: dict) -> dict[str, dict]:
    metrics: dict[str, dict] = {}
    for bench in raw.get("benchmarks", []):
        name = bench["fullname"]
        metrics[name] = {
            "kind": "lower_better",
            "value": bench["stats"]["median"],
            "unit": "seconds",
        }
        for info_key, spec in QPS_METRICS.get(name, {}).items():
            metric_name, unit = spec[0], spec[1]
            kind = spec[2] if len(spec) > 2 else "higher_better"
            value = bench.get("extra_info", {}).get(info_key)
            if value is not None:
                metrics[metric_name] = {
                    "kind": kind,
                    "value": float(value),
                    "unit": unit,
                }
    return metrics


def compare(measured: dict[str, dict], baseline: dict,
            tolerance: float) -> list[str]:
    problems: list[str] = []
    for name, base in baseline.get("metrics", {}).items():
        got = measured.get(name)
        if got is None:
            problems.append(f"missing metric (bench removed or renamed"
                            f" without updating baseline): {name}")
            continue
        base_value = base["value"]
        value = got["value"]
        if base["kind"] == "lower_better":
            limit = base_value * tolerance
            if value > limit:
                problems.append(
                    f"regression: {name}: {value:.6g}s >"
                    f" {base_value:.6g}s x{tolerance:g}")
        else:
            limit = base_value / tolerance
            if value < limit:
                problems.append(
                    f"regression: {name}: {value:.6g} qps <"
                    f" {base_value:.6g} qps / {tolerance:g}")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=str(BENCH_DIR / "baseline.json"))
    parser.add_argument("--output", default=str(ROOT / "BENCH_ci.json"))
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance factor")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--suite", choices=("default", "nogil"),
                        default="default",
                        help="'nogil' runs the same pinned subset"
                             " report-only (no gate) and records"
                             " whether the GIL was enabled — the"
                             " free-threaded CI job publishes this"
                             " artifact for the GIL-vs-nogil"
                             " throughput trajectory")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        run_benchmarks(raw_path)
        raw = json.loads(raw_path.read_text())

    measured = collect_metrics(raw)
    if not measured:
        print("no benchmarks collected — pinned subset broken?")
        return 2

    report = {
        "created": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "suite": args.suite,
        "gil_enabled": _gil_enabled(),
        "pinned": PINNED,
        "metrics": measured,
    }

    if args.suite == "nogil":
        # report-only: free-threaded builds have their own performance
        # envelope; the committed baseline would gate them on noise
        report["verdict"] = "report-only"
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"nogil bench report written: {args.output}"
              f" (gil_enabled={report['gil_enabled']})")
        return 0

    baseline_path = Path(args.baseline)
    if args.update_baseline or not baseline_path.exists():
        baseline = {
            "comment": "regenerate with:"
                       " python tools/check_bench.py --update-baseline",
            "tolerance": DEFAULT_TOLERANCE,
            "python": platform.python_version(),
            "metrics": measured,
        }
        baseline_path.write_text(json.dumps(baseline, indent=2,
                                            sort_keys=True) + "\n")
        print(f"baseline written: {baseline_path}")
        report["verdict"] = "baseline-updated"
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        return 0

    baseline = json.loads(baseline_path.read_text())
    tolerance = args.tolerance if args.tolerance is not None \
        else float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    problems = compare(measured, baseline, tolerance)
    report["tolerance"] = tolerance
    report["verdict"] = "fail" if problems else "pass"
    report["problems"] = problems
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"bench report written: {args.output}")

    for problem in problems:
        print(problem)
    gated = len(baseline.get("metrics", {}))
    if problems:
        print(f"\n{len(problems)} regression(s) across {gated} gated"
              f" metric(s)")
        return 1
    print(f"bench OK: {gated} gated metric(s) within x{tolerance:g}"
          f" of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
