#!/usr/bin/env python3
"""Documentation pointer checker (run by the CI docs job).

Scans ``docs/*.md`` and ``README.md`` for

* relative markdown links — ``[text](target)`` where the target is not
  a URL or in-page anchor — resolved against the containing file, and
* backticked file pointers — `` `src/repro/engine/scan.py` ``-style
  references whose first path segment is a known repo directory or
  which name a known root file — resolved against the repo root (a
  pointer like ``recycler/striping.py`` is also tried under
  ``src/repro/``, matching the README's shorthand),

and fails (exit 1, one line per problem) when a referenced path does
not exist.  Stale pointers are the classic way architecture docs rot;
this keeps every rename honest.

It also requires the core documentation set (:data:`REQUIRED_DOCS`) to
exist — deleting or renaming API.md, ARCHITECTURE.md, PROTOCOL.md, or
OPERATIONS.md without updating this checker fails the docs job instead
of silently shrinking the checked surface.

Usage: ``python tools/check_docs.py [repo_root]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: first path segments that make a backticked token a file pointer
KNOWN_DIRS = ("src", "tests", "docs", "benchmarks", "examples", "tools",
              ".github")
#: root-level files that may be referenced bare
KNOWN_FILES = ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md",
               "PAPERS.md", "SNIPPETS.md", "pytest.ini", "setup.py")

#: the documentation set that must exist under docs/ — the docs CI job
#: fails when one goes missing rather than quietly checking less
REQUIRED_DOCS = ("API.md", "ARCHITECTURE.md", "PROTOCOL.md",
                 "OPERATIONS.md")

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\s]+)`")
#: things that look like paths: contain a slash or a file suffix
PATHISH = re.compile(r"^[\w./-]+$")


def doc_files(root: Path) -> list[Path]:
    files = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    return files


def check_md_link(doc: Path, target: str, root: Path) -> str | None:
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return None
    path = target.split("#", 1)[0]  # strip in-page anchors
    if not path:
        return None
    if not (doc.parent / path).exists() and not (root / path).exists():
        return f"{doc.relative_to(root)}: broken link -> {target}"
    return None


def check_backtick(doc: Path, token: str, root: Path) -> str | None:
    # strip decorations like a trailing slash or `path:123` line refs
    token = token.rstrip("/").split(":", 1)[0]
    if not PATHISH.match(token):
        return None
    first = token.split("/", 1)[0]
    rooted = first in KNOWN_DIRS or token in KNOWN_FILES
    # the README's src/repro shorthand (`recycler/striping.py`): a
    # slashed token with a file suffix is a pointer even when its first
    # segment is no known dir — otherwise a rename would turn it into
    # "prose" and slip past the check
    shorthand = "/" in token and token.endswith(
        (".py", ".md", ".yml", ".ini", ".txt", ".json"))
    if not rooted and not shorthand:
        return None  # prose, not a pointer
    if (root / token).exists() or (root / "src" / "repro" / token).exists():
        return None
    return f"{doc.relative_to(root)}: missing file pointer -> {token}"


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 \
        else Path(__file__).resolve().parent.parent
    problems: list[str] = []
    files = doc_files(root)
    if not files:
        print(f"no documentation files found under {root}")
        return 1
    for required in REQUIRED_DOCS:
        if not (root / "docs" / required).exists():
            problems.append(f"required document missing: docs/{required}")
    for doc in files:
        text = doc.read_text(encoding="utf-8")
        for match in MD_LINK.finditer(text):
            problem = check_md_link(doc, match.group(1), root)
            if problem:
                problems.append(problem)
        for match in BACKTICK.finditer(text):
            problem = check_backtick(doc, match.group(1), root)
            if problem:
                problems.append(problem)
    for problem in problems:
        print(problem)
    checked = ", ".join(str(f.relative_to(root)) for f in files)
    if problems:
        print(f"\n{len(problems)} broken pointer(s) in: {checked}")
        return 1
    print(f"docs OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
