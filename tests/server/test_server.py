"""Serving-layer tests: admission control, deadlines, drain, tenancy,
and cross-frontend recycling (DBAPI client and TCP client meeting in one
shared recycler)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.dbapi as dbapi
from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema
from repro.errors import (QueryTimeout, ServerOverloaded, ServerUnavailable)
from repro.server import ReproServer, ServerClient
from repro.workloads.skyserver import build_catalog, primary_pattern

SLOW_SCHEMA = Schema(["x"], [INT64])


def make_slow_fn(seconds: float):
    """A table function that takes real wall time — each distinct ``tag``
    is a distinct plan, so concurrent calls cannot dedupe or reuse."""

    def slow_rows(seconds_arg, tag) -> Table:
        time.sleep(float(seconds_arg) if seconds_arg else seconds)
        return Table.from_rows(["x"], [INT64], [(int(tag),)])

    return slow_rows


@pytest.fixture
def db():
    rng = np.random.default_rng(11)
    n = 4000
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    db.register_function("slow_rows", make_slow_fn(0.2), SLOW_SCHEMA)
    yield db
    db.close()


QUERY = "SELECT g, sum(v) AS s FROM t GROUP BY g ORDER BY g"


class TestProtocolBasics:
    def test_ping_stats_and_unknown_op(self, db):
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                assert client.ping()
                stats = client.stats()
                assert stats["server"]["active_connections"] == 1
                assert "frontends" in stats["service"]

    def test_connect_to_dead_server_raises(self, db):
        server = ReproServer(db)
        host, port = server.start()
        server.stop()
        with pytest.raises(ServerUnavailable):
            ServerClient(host, port, connect_timeout=0.5)

    def test_bad_sql_maps_to_typed_error(self, db):
        from repro.errors import SqlError
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(SqlError):
                    client.query("SELEC oops")
                # the connection survives a failed query
                assert client.ping()


class TestResultsMatchInProcess:
    def test_rows_and_schema_identical(self, db):
        expected = db.sql(QUERY).table
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                result = client.query(QUERY)
        assert result.columns == list(expected.schema.names)
        assert result.types == [t.name for t in expected.schema.types]
        wire_rows = [tuple(v.item() for v in row)
                     for row in expected.to_rows()]
        assert result.rows == wire_rows
        # the server run was warm: it reused the in-process store
        assert result.stats["num_inserted"] == 0
        assert result.stats["num_reused"] >= 1


class TestAdmissionControl:
    def test_rejects_at_twice_the_limit(self, db):
        """At 2x (in-flight + queue) capacity the server rejects the
        overflow immediately with a typed error instead of hanging."""
        outcomes = []
        lock = threading.Lock()

        def worker(i):
            start = time.monotonic()
            try:
                with ServerClient(host, port) as client:
                    client.query(
                        f"SELECT x FROM slow_rows(0.8, {i})")
                    status = "served"
            except ServerOverloaded:
                status = "rejected"
            with lock:
                outcomes.append((status, time.monotonic() - start))

        with ReproServer(db, max_in_flight=2, max_queue=2,
                         drain_seconds=10.0) as server:
            host, port = server.address
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = server.stats()

        served = [o for o in outcomes if o[0] == "served"]
        rejected = [o for o in outcomes if o[0] == "rejected"]
        assert len(served) + len(rejected) == 8
        assert stats["rejected"] == len(rejected)
        assert stats["served"] == len(served)
        # capacity is 2 in flight + 2 queued; with 8 one-shot clients
        # racing, at least the clear overflow must have been rejected
        assert len(rejected) >= 1
        assert len(served) >= 4
        # rejects are backpressure, not queueing: they return fast,
        # far below the 0.8 s a served slow query takes
        assert all(elapsed < 0.7 for _, elapsed in rejected)

    def test_sequential_queries_never_rejected(self, db):
        with ReproServer(db, max_in_flight=1, max_queue=0) as server:
            with ServerClient(*server.address) as client:
                for i in range(5):
                    client.query(f"SELECT x FROM slow_rows(0.01, {i})")
                assert server.stats()["rejected"] == 0


class TestDeadlines:
    def test_wire_timeout_raises_query_timeout(self, db):
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(QueryTimeout):
                    client.query("SELECT x FROM slow_rows(0.5, 1)",
                                 timeout=0.05)
                assert server.stats()["timeouts"] == 1
                # connection stays usable after a timed-out query
                assert client.query(QUERY).num_rows == 8

    def test_connection_deadline_applies_to_queries(self, db):
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                client.configure(deadline=0.05)
                with pytest.raises(QueryTimeout):
                    client.query("SELECT x FROM slow_rows(0.5, 2)")

    def test_default_timeout(self, db):
        with ReproServer(db, default_timeout=0.05) as server:
            with ServerClient(*server.address) as client:
                with pytest.raises(QueryTimeout):
                    client.query("SELECT x FROM slow_rows(0.5, 3)")


class TestGracefulDrain:
    def test_in_flight_finishes_new_work_rejected(self, db):
        server = ReproServer(db, drain_seconds=10.0)
        host, port = server.start()
        in_flight_result = {}
        started = threading.Event()

        def long_query():
            with ServerClient(host, port) as client:
                started.set()
                in_flight_result["rows"] = client.query(
                    "SELECT x FROM slow_rows(1.0, 42)").rows

        runner = threading.Thread(target=long_query)
        runner.start()
        started.wait()
        while server.stats()["in_flight"] == 0:  # query admitted?
            time.sleep(0.01)
        bystander = ServerClient(host, port)

        stopper = threading.Thread(target=server.stop)
        stopper.start()
        while not server._draining:
            time.sleep(0.005)
        # during the drain window: existing in-flight work continues,
        # but new queries are turned away with a typed error
        with pytest.raises(ServerUnavailable):
            bystander.query(QUERY)
        stopper.join()
        runner.join()
        bystander.close()
        assert in_flight_result["rows"] == [(42,)]

    def test_stop_is_idempotent(self, db):
        server = ReproServer(db)
        server.start()
        server.stop()
        server.stop()


class TestTenantBudgets:
    def test_tenant_budget_isolation(self, db):
        """An over-budget tenant cannot publish cache entries (its warm
        queries rematerialize); a funded tenant recycles normally; the
        shared graph and other tenants are unaffected."""
        budgets = {"small": 64, "big": 64 * 1024 * 1024}
        small_q = "SELECT g, sum(v) AS a FROM t GROUP BY g"
        big_q = "SELECT g, min(v) AS b FROM t GROUP BY g"
        with ReproServer(db, tenant_budgets=budgets) as server:
            with ServerClient(*server.address) as client:
                client.query(small_q, tenant="small")
                warm_small = client.query(small_q, tenant="small")
                client.query(big_q, tenant="big")
                warm_big = client.query(big_q, tenant="big")
        # "big" recycles: the warm run reused the cached aggregate
        assert warm_big.stats["num_reused"] >= 1
        assert warm_big.stats["num_inserted"] == 0
        # "small" matched the shared graph (no re-insert) but found no
        # cached table — its stores were rejected by the byte budget
        assert warm_small.stats["num_inserted"] == 0
        assert warm_small.stats["num_reused"] == 0
        assert warm_small.stats["num_materialized"] >= 1
        counters = db.recycler.cache.counters
        assert counters.tenant_rejected >= 1
        usage = db.recycler.cache.tenant_usage()
        assert usage.get("big", 0) > 0
        assert usage.get("small", 0) == 0

    def test_configure_sets_default_tenant(self, db):
        with ReproServer(db, tenant_budgets={"small": 64}) as server:
            with ServerClient(*server.address) as client:
                client.configure(tenant="small")
                client.query(QUERY)
        assert db.recycler.cache.tenant_usage().get("small", 0) == 0
        assert db.recycler.cache.counters.tenant_rejected >= 1


class TestCrossFrontendRecycling:
    def test_skyserver_shared_across_dbapi_and_tcp(self):
        """The acceptance scenario: a PEP 249 client and a TCP client
        run the SkyServer pattern against one shared recycler — whoever
        comes second is warm (``num_inserted == 0``), and both see the
        same rows."""
        db = Database(RecyclerConfig(mode="spec"),
                      catalog=build_catalog(num_rows=20000))
        try:
            sky = primary_pattern()
            with dbapi.connect(database=db) as conn:
                cold = conn.cursor()
                cold.execute(sky)
                dbapi_rows = [tuple(v.item() for v in row)
                              for row in cold.fetchall()]
                assert cold.statistics["num_inserted"] > 0
            with ReproServer(db) as server:
                with ServerClient(*server.address) as client:
                    warm = client.query(sky)
            assert warm.stats["num_inserted"] == 0
            assert warm.stats["num_reused"] >= 1
            assert warm.rows == dbapi_rows
            frontends = db.summary()["service"]["frontends"]
            assert frontends["dbapi"]["queries"] == 1
            assert frontends["server"]["queries"] == 1
        finally:
            db.close()

    def test_many_clients_one_recycler(self, db):
        """Concurrent TCP clients issuing the same aggregate: exactly
        one materializes, everyone else reuses (in-flight dedup plus
        cache, across connections)."""
        results = {}
        lock = threading.Lock()

        def worker(name, host, port):
            with ServerClient(host, port) as client:
                r = client.query(QUERY)
                with lock:
                    results[name] = r

        with ReproServer(db, max_in_flight=4, max_queue=16) as server:
            host, port = server.address
            threads = [
                threading.Thread(target=worker, args=(f"c{i}", host, port))
                for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        rows = {tuple(map(tuple, r.rows)) for r in results.values()}
        assert len(results) == 6
        assert len(rows) == 1  # identical bytes for every client
        total_inserted = sum(r.stats["num_inserted"]
                             for r in results.values())
        cold = db.sql(QUERY)  # warm by now: nothing else to insert
        assert cold.record.num_inserted == 0
        assert total_inserted <= 3  # one plan's worth of stores, once
