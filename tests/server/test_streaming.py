"""Streaming-protocol and HTTP-frontend tests: v2 negotiation, chunk
determinism, over-the-frame-cap results, mid-stream disconnects (no
cache publish), and the HTTP endpoints sharing one recycler with TCP."""

from __future__ import annotations

import http.client
import json
import time

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema
from repro.errors import ResultTooLarge, ServerError, SqlError
from repro.server import (HttpClient, HttpServer, MAX_FRAME_BYTES,
                          PROTOCOL_VERSION, ReproServer, ServerClient,
                          StreamingResult)
from repro.server.protocol import iter_result_chunks

from test_server import QUERY, db  # noqa: F401  (shared fixture)

# a result comfortably over the 64 MB v1 frame cap: 8 int64 columns of
# ~18-digit values encode to ~150 JSON bytes per row.
BIG_ROWS = 460_000
BIG_QUERY = "SELECT * FROM big"


@pytest.fixture(scope="module")
def big_db():
    db = Database(RecyclerConfig(mode="spec"))
    names = [f"c{i}" for i in range(8)]
    db.register_table("big", Table(
        Schema(names, [INT64] * 8),
        {name: np.arange(BIG_ROWS, dtype=np.int64) * 1_234_567_890_123
         + i for i, name in enumerate(names)}))
    yield db
    db.close()


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestNegotiation:
    def test_default_client_negotiates_v2(self, db):  # noqa: F811
        with ReproServer(db) as server:
            with ServerClient(*server.address) as client:
                assert client.protocol_version == PROTOCOL_VERSION
                assert client.server_limits["chunk_rows"] > 0
                assert client.server_limits["max_frame_bytes"] \
                    == MAX_FRAME_BYTES

    def test_v1_client_stays_v1(self, db):  # noqa: F811
        with ReproServer(db) as server:
            with ServerClient(*server.address, protocol=1) as client:
                assert client.protocol_version == 1
                result = client.query(QUERY)
                assert result.chunks == 0
                assert result.num_rows > 0
                with pytest.raises(ServerError):
                    client.execute_stream(QUERY)

    def test_server_caps_requested_version(self, db):  # noqa: F811
        from repro.server.protocol import read_frame, write_frame
        with ReproServer(db) as server:
            with ServerClient(*server.address, protocol=1) as client:
                write_frame(client._sock,
                            {"op": "hello", "version": 99})
                reply = read_frame(client._sock)
                assert reply["version"] == PROTOCOL_VERSION


class TestChunkDeterminism:
    def test_v2_rows_identical_to_v1_across_boundaries(self, db):  # noqa: F811
        """Chunking is an encoding detail: whatever the chunk size,
        reassembled rows match the v1 single frame exactly."""
        with ReproServer(db, chunk_rows=3) as server:
            with ServerClient(*server.address, protocol=1) as v1:
                baseline = v1.query(QUERY)
            with ServerClient(*server.address) as v2:
                chunked = v2.query(QUERY)
                with v2.execute_stream(QUERY) as stream:
                    streamed = list(stream)
        assert baseline.chunks == 0
        assert chunked.chunks == -(-baseline.num_rows // 3)
        assert chunked.rows == baseline.rows
        assert chunked.columns == baseline.columns
        assert chunked.types == baseline.types
        assert streamed == baseline.rows

    def test_stream_header_carries_schema_and_rowcount(self, db):  # noqa: F811
        expected = db.sql(QUERY).table
        with ReproServer(db, chunk_rows=2) as server:
            with ServerClient(*server.address) as client:
                with client.execute_stream(QUERY) as stream:
                    assert stream.columns == list(expected.schema.names)
                    assert stream.rowcount == expected.num_rows
                    assert list(stream) \
                        == [tuple(v.item() for v in row)
                            for row in expected.to_rows()]

    def test_iter_result_chunks_bounds(self):
        table = Table(Schema(["a"], [INT64]),
                      {"a": np.arange(100, dtype=np.int64)})
        chunks = list(iter_result_chunks(table, chunk_rows=7,
                                         chunk_bytes=1 << 20))
        assert all(len(c) <= 7 for c in chunks)
        assert sum(len(c) for c in chunks) == 100
        # byte bound: single rows always travel, so every chunk is
        # non-empty even with an absurdly small byte budget
        tiny = list(iter_result_chunks(table, chunk_rows=100,
                                       chunk_bytes=1))
        assert all(len(c) == 1 for c in tiny)

    def test_truncated_stream_is_detected(self):
        frames = iter([
            {"kind": "result_chunk", "stream": 1, "seq": 0,
             "rows": [[1], [2]]},
            {"ok": True, "kind": "result_end", "stream": 1,
             "chunks": 2, "rows": 4},
        ])
        stream = StreamingResult(
            {"ok": True, "kind": "result_header", "stream": 1,
             "columns": ["a"], "types": ["INT64"], "rowcount": 4},
            lambda: next(frames), lambda: None)
        with pytest.raises(ServerError, match="truncated"):
            list(stream)


class TestLargeResults:
    """The point of v2: results beyond the 64 MB frame cap stream with
    bounded frames; v1 fails them with a typed error."""

    def test_big_result_streams_on_v2(self, big_db):
        with ReproServer(big_db) as server:
            with ServerClient(*server.address) as client:
                result = client.query(BIG_QUERY)
        assert result.num_rows == BIG_ROWS
        # bounded frames: far more than one chunk was needed
        assert result.chunks > 10
        assert result.rows[0] == tuple(
            i for i in range(8))
        assert result.rows[-1][0] \
            == (BIG_ROWS - 1) * 1_234_567_890_123

    def test_big_result_fails_typed_on_v1(self, big_db):
        with ReproServer(big_db) as server:
            with ServerClient(*server.address, protocol=1) as client:
                with pytest.raises(ResultTooLarge):
                    client.query(BIG_QUERY)
                # the connection survives the typed failure
                assert client.ping()

    def test_big_result_streams_over_http(self, big_db):
        with HttpServer(big_db) as server:
            with HttpClient(*server.address) as client:
                with client.execute_stream(BIG_QUERY) as stream:
                    assert stream.rowcount == BIG_ROWS
                    count = 0
                    last = None
                    for row in stream:
                        count += 1
                        last = row
        assert count == BIG_ROWS
        assert last[0] == (BIG_ROWS - 1) * 1_234_567_890_123


class TestDisconnects:
    def test_disconnect_during_execution_cancels_and_never_publishes(
            self, db):  # noqa: F811
        """A v2 client that vanishes mid-query aborts the producer at
        the next batch boundary, and nothing lands in the cache."""
        from repro.server.protocol import write_frame
        # an aggregate over a few million rows runs long enough (and in
        # enough batches) to be cancelled mid-way, and its shape is one
        # the recycler publishes when it completes
        rng = np.random.default_rng(3)
        n = 2_000_000
        for name in ("wide", "wide2"):  # disjoint tables, so the
            # control's published entries cannot serve the aborted shape
            db.register_table(name, Table(
                Schema(["g", "v"], [INT64, FLOAT64]),
                {"g": rng.integers(0, 64, n),
                 "v": rng.uniform(0, 1, n)}))
        control = ("SELECT g, sum(v) AS s FROM wide"
                   " WHERE v > 0.01 GROUP BY g")
        aborted = ("SELECT g, avg(v) AS a FROM wide2"
                   " WHERE v > 0.02 GROUP BY g")
        with ReproServer(db) as server:
            # control: the same shape completed normally does publish
            # (so the num_reused == 0 assertion below is meaningful)
            with ServerClient(*server.address) as client:
                client.query(control)
            assert db.sql(control).record.num_reused >= 1
            # now vanish mid-execution of a fresh shape
            with ServerClient(*server.address) as client:
                write_frame(client._sock, {"op": "query",
                                           "sql": aborted})
                time.sleep(0.1)  # query is now executing
            assert wait_for(
                lambda: server.stats()["cancelled"] >= 1)
            assert wait_for(lambda: server.stats()["in_flight"] == 0)
        # the abandoned query published nothing: a rerun is cold
        assert db.sql(aborted).record.num_reused == 0

    def test_disconnect_mid_chunk_phase_counts_aborted(self, big_db):
        """Closing after the header, with most chunks unsent, stops the
        producer (socket buffers absorb only the first few MB)."""
        with ReproServer(big_db) as server:
            client = ServerClient(*server.address)
            stream = client.execute_stream(BIG_QUERY)
            assert stream.rowcount == BIG_ROWS
            client.close()
            assert wait_for(
                lambda: server.stats()["stream_aborted"] >= 1,
                timeout=15.0)
            assert wait_for(lambda: server.stats()["in_flight"] == 0,
                            timeout=15.0)


class TestHttpEndpoints:
    def test_healthz_metrics_and_query(self, db):  # noqa: F811
        with HttpServer(db) as server:
            with HttpClient(*server.address) as client:
                health = client.healthz()
                assert health["ok"] and not health["draining"]
                result = client.query(QUERY)
                assert result.num_rows > 0
                assert result.chunks >= 1
                metrics = client.metrics()
                assert "http" in metrics["service"]["frontends"]
                assert metrics["service"]["frontends"]["http"][
                    "queries"] == 1

    def test_bad_sql_maps_to_400_and_typed_error(self, db):  # noqa: F811
        with HttpServer(db) as server:
            with HttpClient(*server.address) as client:
                with pytest.raises(SqlError):
                    client.query("SELEC oops")
                # the connection survives a failed query
                assert client.healthz()["ok"]

    def test_malformed_body_and_unknown_path(self, db):  # noqa: F811
        with HttpServer(db) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=5.0)
            conn.request("POST", "/v1/query", body=b"not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            assert payload["error"]["type"] == "ProtocolError"
            conn.request("GET", "/nowhere")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.request("PUT", "/healthz")
            response = conn.getresponse()
            assert response.status == 405
            response.read()
            conn.close()

    def test_healthz_reports_draining(self, db):  # noqa: F811
        with HttpServer(db) as server:
            with HttpClient(*server.address) as client:
                server._draining = True
                try:
                    health = client.healthz()
                finally:
                    server._draining = False
                assert health["draining"] and not health["ok"]

    def test_http_and_tcp_share_the_recycler(self, db):  # noqa: F811
        """A query warmed through one frontend is a cache hit through
        the other — one recycler behind both ports."""
        query = "SELECT g, sum(v) AS warm FROM t GROUP BY g"
        with ReproServer(db) as tcp_server, HttpServer(db) as http_server:
            with ServerClient(*tcp_server.address) as tcp:
                cold = tcp.query(query)
            with HttpClient(*http_server.address) as http_client:
                warm = http_client.query(query)
            assert warm.stats["num_inserted"] == 0
            assert warm.stats["num_reused"] >= 1
            assert warm.rows == cold.rows

    def test_http_timeout_maps_to_504(self, db):  # noqa: F811
        with HttpServer(db) as server:
            host, port = server.address
            conn = http.client.HTTPConnection(host, port, timeout=30.0)
            body = json.dumps({"sql": "SELECT x FROM slow_rows(2.0, 900)",
                               "timeout": 0.1}).encode()
            conn.request("POST", "/v1/query", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 504
            payload = json.loads(response.read())
            assert payload["error"]["type"] == "QueryTimeout"
            conn.close()


class TestServiceCounters:
    def test_stream_counters_accumulate(self, db):  # noqa: F811
        with ReproServer(db, chunk_rows=2) as server:
            with ServerClient(*server.address) as client:
                client.query(QUERY)
                client.query(QUERY)
            # the trailer reaches the client a beat before the server
            # coroutine resumes to bump its counters
            assert wait_for(lambda: server.stats()["streams"] == 2)
            stats = server.stats()
            assert stats["stream_chunks"] >= 2
        summary = db.summary()["service"]["frontends"]["server"]
        assert summary["streams"] == 2
        assert summary["stream_chunks"] == stats["stream_chunks"]
