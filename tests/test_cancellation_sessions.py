"""Session/database-level cooperative cancellation.

The expensive primitive is an event-gated table function: its first
invocation signals ``started`` and blocks on ``go`` (with a safety
timeout so a broken test cannot hang the suite), which lets the tests
park a producer mid-execution deterministically, stall consumers on it,
and then cancel at a known point.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (Database, QueryCancelled, QueryTimeout, RecyclerConfig,
                   Table)
from repro.columnar import FLOAT64, INT64, Schema

QUERY = "SELECT g, sum(v) AS s FROM t GROUP BY g"
FN_QUERY = "SELECT g, sum(v) AS s FROM slow_groups() GROUP BY g"
FN_SCHEMA = Schema(["g", "v"], [INT64, FLOAT64])


class GatedFunction:
    """Table function whose first ``gate_calls`` invocations block."""

    def __init__(self, table: Table, gate_calls: int = 1,
                 safety_timeout: float = 30.0) -> None:
        self.table = table
        self.gate_calls = gate_calls
        self.safety_timeout = safety_timeout
        self.started = threading.Event()
        self.go = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> Table:
        with self._lock:
            self.calls += 1
            gated = self.calls <= self.gate_calls
        if gated:
            self.started.set()
            self.go.wait(self.safety_timeout)
        return self.table


def make_db(**config) -> tuple[Database, GatedFunction]:
    rng = np.random.default_rng(23)
    n = 20000
    columns = {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}
    table = Table(FN_SCHEMA, columns)
    db = Database(RecyclerConfig(mode="spec", **config))
    db.register_table("t", table)
    gate = GatedFunction(table)
    db.register_function("slow_groups", gate, FN_SCHEMA,
                         invocation_cost=50_000.0)
    return db, gate


@pytest.fixture
def db():
    return make_db()[0]


class TestTimeouts:
    def test_db_sql_timeout(self, db):
        with pytest.raises(QueryTimeout):
            db.sql(QUERY, timeout=0.0)
        assert len(db.recycler.inflight) == 0
        assert len(db.recycler.cache) == 0
        # the database stays fully usable afterwards
        assert db.sql(QUERY).table.num_rows == 8

    def test_db_execute_timeout(self, db):
        plan = db.plan(QUERY)
        with pytest.raises(QueryTimeout):
            db.execute(plan, timeout=0.0)
        assert db.execute(db.plan(QUERY)).table.num_rows == 8

    def test_session_deadline_and_timeout(self, db):
        with db.connect() as session:
            with pytest.raises(QueryTimeout):
                session.sql(QUERY, timeout=0.0)
            with pytest.raises(QueryTimeout):
                session.execute(db.plan(QUERY),
                                deadline=time.monotonic() - 1.0)
            # aborted queries leave no record; the session still works
            assert len(session.records) == 0
            assert session.sql(QUERY).table.num_rows == 8
            assert len(session.records) == 1

    def test_deadline_fires_while_stalled_on_producer(self):
        db, gate = make_db()
        producer_done = threading.Event()

        def produce():
            try:
                db.connect().sql(FN_QUERY)
            finally:
                producer_done.set()

        producer = threading.Thread(target=produce)
        producer.start()
        assert gate.started.wait(10)
        # the consumer matches the producer's in-flight nodes and
        # stalls; its deadline must fire during the stall, well before
        # the 30 s inflight safety timeout
        with db.connect() as consumer:
            began = time.monotonic()
            with pytest.raises(QueryTimeout):
                consumer.sql(FN_QUERY, timeout=0.3)
            assert time.monotonic() - began < 10.0
        gate.go.set()
        assert producer_done.wait(10)

    def test_pool_timeout_per_query(self, db):
        with db.pool(workers=2) as pool:
            future = pool.submit(QUERY, timeout=0.0)
            assert isinstance(future.exception(timeout=10), QueryTimeout)
            # an unbounded query on the same pool still succeeds
            assert pool.submit(QUERY).result().table.num_rows == 8


class TestCancelMidExecution:
    def test_cancelled_producer_publishes_nothing(self):
        db, gate = make_db()
        session = db.connect()
        outcome: list[object] = []

        def produce():
            try:
                outcome.append(session.sql(FN_QUERY))
            except QueryCancelled as exc:
                outcome.append(exc)

        producer = threading.Thread(target=produce)
        producer.start()
        assert gate.started.wait(10)
        # parked inside the table function: cancel, then release the gate
        assert session.cancel() is True
        gate.go.set()
        producer.join(timeout=10)
        assert not producer.is_alive()
        assert isinstance(outcome[0], QueryCancelled)
        # no record, no cache entry, no stale in-flight registration
        assert session.records == []
        assert len(db.recycler.cache) == 0
        assert len(db.recycler.inflight) == 0
        session.close()

    def test_cancelled_producer_wakes_blocked_consumer(self):
        # consumer must be woken by the producer's cancellation, not by
        # the inflight safety timeout — which this config makes huge
        db, gate = make_db(inflight_wait_timeout=120.0)
        producer_session = db.connect()
        produced: list[object] = []
        consumed: list[object] = []

        def produce():
            try:
                produced.append(producer_session.sql(FN_QUERY))
            except QueryCancelled as exc:
                produced.append(exc)

        def consume():
            with db.connect() as consumer:
                consumed.append(consumer.sql(FN_QUERY).table.to_rows())

        producer = threading.Thread(target=produce)
        producer.start()
        assert gate.started.wait(10)
        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.3)  # let the consumer reach its in-flight stall
        producer_session.cancel()
        gate.go.set()
        producer.join(timeout=10)
        # woken consumer recomputes (second function call is ungated)
        consumer.join(timeout=15)
        assert not producer.is_alive() and not consumer.is_alive()
        assert isinstance(produced[0], QueryCancelled)
        assert consumed and consumed[0] == \
            db.sql(FN_QUERY).table.to_rows()
        assert len(db.recycler.inflight) == 0
        producer_session.close()

    def test_pool_shutdown_cancels_running_queries(self):
        db, gate = make_db()
        gate.gate_calls = 2
        pool = db.pool(workers=2)
        futures = [pool.submit(FN_QUERY), pool.submit(FN_QUERY)]
        assert gate.started.wait(10)
        # both workers are executing (a session exists once its worker
        # starts a query): inside the gated function, or stalled on the
        # first producer
        deadline = time.time() + 10
        while len(pool.sessions()) < 2 and time.time() < deadline:
            time.sleep(0.01)
        assert len(pool.sessions()) == 2
        closer = threading.Thread(
            target=lambda: pool.close(wait=True, cancel_pending=True))
        closer.start()
        # wait until close()'s sweep has marked every worker session,
        # then open the gate: from here no query can complete — parked
        # ones run into tripped tokens, late starters are born cancelled
        deadline = time.time() + 10
        while time.time() < deadline:
            sessions = pool.sessions()
            if len(sessions) == 2 and \
                    all(s._cancel_all for s in sessions):
                break
            time.sleep(0.01)
        gate.go.set()
        closer.join(timeout=15)
        assert not closer.is_alive()
        # both running queries were aborted mid-execution: nothing
        # reached the cache and nothing is left registered
        for future in futures:
            assert isinstance(future.exception(timeout=10),
                              QueryCancelled)
        assert len(db.recycler.inflight) == 0
        assert len(db.recycler.cache) == 0
