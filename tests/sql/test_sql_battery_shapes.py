"""SQL shape battery: one-line ``(SQL, rows, cols)`` cases, four paths.

Opteryx-style (``tests/sql_battery/test_battery_shape.py``): every case
is a single line of SQL with its expected result shape.  Beyond the
exemplar, each case here is executed on **four** paths that must agree:

* **cold** — first execution on a shared warm database (shape checked
  against the expectation);
* **warm** — the same text again on the same database: the plan must
  fully unify with the recycler graph (``num_inserted == 0``) and the
  result must be byte-identical to the cold run, including row order;
* **optimizer-off** — a database with ``optimize_plans=False``
  (the ``REPRO_OPTIMIZE_PLANS=0`` CI leg): same row multiset;
* **process-mode** — a session routing cold plans to shard worker
  processes: same row multiset.

The fixture data is fixed by hand so the expected shapes are derivable
by inspection, and spans the whole SQL surface: filters (BETWEEN / IN /
NOT IN / LIKE / NaN), all six join kinds, EXISTS / IN / scalar
subqueries, grouping and HAVING, UNION ALL, derived tables, ordering
and limits.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import Database, RecyclerConfig
from repro.columnar import (Catalog, DATE, FLOAT64, INT64, STRING, Table,
                            date_to_days)

NAN = float("nan")


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_table("sales", Table.from_rows(
        ["sale_id", "store_id", "product", "quantity", "price", "sold_on"],
        [INT64, INT64, STRING, INT64, FLOAT64, DATE],
        [
            (1, 1, "apple", 3, 1.5, date_to_days("2023-01-05")),
            (2, 1, "pear", 1, 2.0, date_to_days("2023-01-07")),
            (3, 2, "apple", 5, 1.4, date_to_days("2023-02-11")),
            (4, 2, "plum", 2, 3.0, date_to_days("2023-02-14")),
            (5, 3, "apple", 7, 1.6, date_to_days("2023-03-02")),
            (6, 3, "pear", 4, 2.1, date_to_days("2023-03-09")),
            (7, 1, "plum", 6, 2.9, date_to_days("2023-04-21")),
            (8, 2, "pear", 8, 2.2, date_to_days("2023-04-25")),
        ]))
    catalog.register_table("stores", Table.from_rows(
        ["store_id", "city", "region"], [INT64, STRING, STRING],
        [(1, "Edinburgh", "north"), (2, "London", "south"),
         (3, "Glasgow", "north")]))
    catalog.register_table("nums", Table.from_rows(
        ["k", "f", "s"], [INT64, FLOAT64, STRING],
        [(1, 0.5, "a"), (2, 1.5, "b"), (3, NAN, "a"), (4, 3.5, "c"),
         (5, 4.5, "b"), (6, NAN, "a"), (7, 6.5, "d"), (8, 7.5, "c"),
         (9, 8.5, "b"), (10, 9.5, "a")]))
    catalog.register_table("cust", Table.from_rows(
        ["cid", "name", "country"], [INT64, STRING, STRING],
        [(1, "alice", "de"), (2, "bob", "de"), (3, "carol", "us"),
         (4, "dave", "fr"), (5, "erin", "us")]))
    # cids 6 and 7 dangle (no customer); customer 4 has no orders.
    catalog.register_table("ords", Table.from_rows(
        ["oid", "cid", "total", "item"], [INT64, INT64, FLOAT64, STRING],
        [(1, 1, 10.0, "x"), (2, 1, 20.0, "y"), (3, 2, 30.0, "z"),
         (4, 3, 40.0, "x"), (5, 3, 50.0, "y"), (6, 3, 60.0, "z"),
         (7, 5, 70.0, "x"), (8, 5, 80.0, "y"), (9, 6, 90.0, "z"),
         (10, 6, 100.0, "x"), (11, 7, 110.0, "y"), (12, 1, 120.0, "z")]))
    catalog.register_table("void", Table.from_rows(
        ["a", "b"], [INT64, STRING], []))
    return catalog


# ---------------------------------------------------------------------
# the battery: (sql, expected_rows, expected_cols)
# ---------------------------------------------------------------------
CASES: list[tuple[str, int, int]] = [
    # --- projection & scan basics -----------------------------------
    ("SELECT * FROM sales", 8, 6),
    ("SELECT * FROM stores", 3, 3),
    ("SELECT * FROM nums", 10, 3),
    ("SELECT * FROM cust", 5, 3),
    ("SELECT * FROM ords", 12, 4),
    ("SELECT * FROM void", 0, 2),
    ("SELECT sale_id FROM sales", 8, 1),
    ("SELECT sale_id, product FROM sales", 8, 2),
    ("SELECT product, quantity, price FROM sales", 8, 3),
    ("SELECT quantity + 1 AS q1 FROM sales", 8, 1),
    ("SELECT quantity * price AS amount FROM sales", 8, 1),
    ("SELECT price - 1.0 AS p, quantity FROM sales", 8, 2),
    ("SELECT -quantity AS neg FROM sales", 8, 1),
    ("SELECT quantity % 2 AS parity FROM sales", 8, 1),
    ("SELECT sale_id AS id, sale_id AS id2 FROM sales", 8, 2),
    ("SELECT DISTINCT product FROM sales", 3, 1),
    ("SELECT DISTINCT store_id FROM sales", 3, 1),
    ("SELECT DISTINCT store_id, product FROM sales", 8, 2),
    ("SELECT DISTINCT region FROM stores", 2, 1),
    ("SELECT DISTINCT item FROM ords", 3, 1),
    ("SELECT DISTINCT cid FROM ords", 6, 1),
    ("SELECT DISTINCT s FROM nums", 4, 1),
    ("SELECT upper(product) AS p FROM sales", 8, 1),
    ("SELECT lower(city) AS c FROM stores", 3, 1),
    ("SELECT length(name) AS n FROM cust", 5, 1),
    ("SELECT abs(0 - quantity) AS aq FROM sales", 8, 1),
    ("SELECT round(price) AS rp FROM sales", 8, 1),
    ("SELECT year(sold_on) AS y FROM sales", 8, 1),
    ("SELECT month(sold_on) AS m FROM sales", 8, 1),
    ("SELECT substr(product, 1, 2) AS pre FROM sales", 8, 1),
    ("SELECT CASE WHEN quantity > 4 THEN 1 ELSE 0 END AS big FROM sales",
     8, 1),
    ("SELECT CASE WHEN price < 2.0 THEN 'cheap' ELSE 'dear' END AS tag"
     " FROM sales", 8, 1),
    # --- single-table filters ---------------------------------------
    ("SELECT * FROM sales WHERE quantity > 4", 4, 6),
    ("SELECT * FROM sales WHERE quantity >= 4", 5, 6),
    ("SELECT * FROM sales WHERE quantity < 4", 3, 6),
    ("SELECT * FROM sales WHERE quantity <= 4", 4, 6),
    ("SELECT * FROM sales WHERE quantity = 4", 1, 6),
    ("SELECT * FROM sales WHERE quantity <> 4", 7, 6),
    ("SELECT * FROM sales WHERE price < 2.0", 3, 6),
    ("SELECT * FROM sales WHERE product = 'apple'", 3, 6),
    ("SELECT * FROM sales WHERE product <> 'apple'", 5, 6),
    ("SELECT * FROM sales WHERE store_id = 1", 3, 6),
    ("SELECT * FROM sales WHERE store_id = 1 AND product = 'plum'", 1, 6),
    ("SELECT * FROM sales WHERE store_id = 1 OR product = 'plum'", 4, 6),
    ("SELECT * FROM sales WHERE NOT product = 'apple'", 5, 6),
    ("SELECT * FROM sales WHERE NOT (quantity > 4)", 4, 6),
    ("SELECT * FROM sales WHERE quantity > 2 AND quantity < 7", 4, 6),
    ("SELECT * FROM sales WHERE price BETWEEN 1.5 AND 2.2", 5, 6),
    ("SELECT * FROM sales WHERE quantity BETWEEN 2 AND 6", 5, 6),
    ("SELECT * FROM sales WHERE quantity NOT BETWEEN 2 AND 6", 3, 6),
    ("SELECT * FROM sales WHERE product IN ('apple', 'plum')", 5, 6),
    ("SELECT * FROM sales WHERE product IN ('apple')", 3, 6),
    ("SELECT * FROM sales WHERE product NOT IN ('apple')", 5, 6),
    ("SELECT * FROM sales WHERE product NOT IN ('apple', 'pear')", 2, 6),
    ("SELECT * FROM sales WHERE quantity IN (1, 3, 5)", 3, 6),
    ("SELECT * FROM sales WHERE quantity NOT IN (1, 3, 5)", 5, 6),
    ("SELECT * FROM sales WHERE product IN ()", 0, 6),
    ("SELECT * FROM sales WHERE product NOT IN ()", 8, 6),
    ("SELECT * FROM sales WHERE quantity IN ()", 0, 6),
    ("SELECT * FROM sales WHERE quantity NOT IN ()", 8, 6),
    ("SELECT * FROM sales WHERE product LIKE 'p%'", 5, 6),
    ("SELECT * FROM sales WHERE product LIKE '%ear'", 3, 6),
    ("SELECT * FROM sales WHERE product LIKE '_pple'", 3, 6),
    ("SELECT * FROM sales WHERE product LIKE '%l%'", 5, 6),
    ("SELECT * FROM sales WHERE product NOT LIKE 'a%'", 5, 6),
    ("SELECT * FROM sales WHERE product NOT LIKE '%ear'", 5, 6),
    ("SELECT * FROM sales WHERE sold_on >= DATE '2023-03-01'", 4, 6),
    ("SELECT * FROM sales WHERE sold_on < DATE '2023-02-01'", 2, 6),
    ("SELECT * FROM sales WHERE sold_on BETWEEN DATE '2023-02-01' AND"
     " DATE '2023-03-31'", 4, 6),
    ("SELECT * FROM stores WHERE region = 'north'", 2, 3),
    ("SELECT * FROM stores WHERE city LIKE '%o%'", 2, 3),
    ("SELECT * FROM cust WHERE country IN ('de', 'us')", 4, 3),
    ("SELECT * FROM cust WHERE country NOT IN ('de', 'us')", 1, 3),
    ("SELECT * FROM ords WHERE total > 65.0", 6, 4),
    ("SELECT * FROM ords WHERE item = 'x'", 4, 4),
    ("SELECT * FROM ords WHERE item IN ('x', 'y')", 8, 4),
    ("SELECT * FROM ords WHERE total BETWEEN 30.0 AND 80.0", 6, 4),
    ("SELECT * FROM void WHERE a > 0", 0, 2),
    # --- NaN three-valued-logic edges -------------------------------
    ("SELECT * FROM nums WHERE f > 4.0", 5, 3),
    ("SELECT * FROM nums WHERE f < 4.0", 3, 3),
    ("SELECT * FROM nums WHERE f = f", 8, 3),
    ("SELECT * FROM nums WHERE f IN (0.5, 1.5)", 2, 3),
    ("SELECT * FROM nums WHERE f NOT IN (0.5)", 7, 3),
    ("SELECT * FROM nums WHERE f NOT IN (0.5, 1.5)", 6, 3),
    ("SELECT * FROM nums WHERE f IN ()", 0, 3),
    ("SELECT * FROM nums WHERE f NOT IN ()", 10, 3),
    ("SELECT * FROM nums WHERE k IN ()", 0, 3),
    ("SELECT * FROM nums WHERE k NOT IN ()", 10, 3),
    ("SELECT * FROM nums WHERE k NOT IN (1, 2, 3)", 7, 3),
    ("SELECT * FROM nums WHERE s NOT IN ('a')", 6, 3),
    ("SELECT * FROM nums WHERE s IN ('a', 'b')", 7, 3),
    ("SELECT * FROM nums WHERE k % 2 = 0", 5, 3),
    ("SELECT * FROM nums WHERE f BETWEEN 1.0 AND 7.0", 4, 3),
    ("SELECT * FROM nums WHERE f NOT BETWEEN 1.0 AND 7.0", 6, 3),
    # --- joins: all six kinds ---------------------------------------
    ("SELECT sale_id, city FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id", 8, 2),
    ("SELECT sale_id, city FROM sales INNER JOIN stores"
     " ON sales.store_id = stores.store_id", 8, 2),
    ("SELECT sale_id, city FROM sales, stores"
     " WHERE sales.store_id = stores.store_id", 8, 2),
    ("SELECT sale_id, city FROM sales LEFT JOIN stores"
     " ON sales.store_id = stores.store_id", 8, 2),
    ("SELECT name, oid FROM cust JOIN ords ON cust.cid = ords.cid",
     9, 2),
    ("SELECT name, oid FROM cust LEFT JOIN ords ON cust.cid = ords.cid",
     10, 2),
    ("SELECT name, oid FROM cust LEFT OUTER JOIN ords"
     " ON cust.cid = ords.cid", 10, 2),
    ("SELECT name, oid FROM cust RIGHT JOIN ords ON cust.cid = ords.cid",
     12, 2),
    ("SELECT name, oid FROM cust RIGHT OUTER JOIN ords"
     " ON cust.cid = ords.cid", 12, 2),
    ("SELECT name, oid FROM cust FULL JOIN ords ON cust.cid = ords.cid",
     13, 2),
    ("SELECT name, oid FROM cust FULL OUTER JOIN ords"
     " ON cust.cid = ords.cid", 13, 2),
    ("SELECT name FROM cust SEMI JOIN ords ON cust.cid = ords.cid",
     4, 1),
    ("SELECT name FROM cust ANTI JOIN ords ON cust.cid = ords.cid",
     1, 1),
    ("SELECT city FROM stores SEMI JOIN sales"
     " ON stores.store_id = sales.store_id", 3, 1),
    ("SELECT city FROM stores ANTI JOIN sales"
     " ON stores.store_id = sales.store_id", 0, 1),
    ("SELECT name, oid FROM cust RIGHT JOIN ords ON cust.cid = ords.cid"
     " WHERE total > 65.0", 6, 2),
    ("SELECT name, oid FROM cust LEFT JOIN ords ON cust.cid = ords.cid"
     " WHERE country = 'fr'", 1, 2),
    ("SELECT name, oid FROM cust JOIN ords ON cust.cid = ords.cid"
     " WHERE country = 'de'", 4, 2),
    ("SELECT name, oid FROM cust FULL JOIN ords ON cust.cid = ords.cid"
     " WHERE oid >= 0", 13, 2),
    ("SELECT name, total FROM cust JOIN ords ON cust.cid = ords.cid"
     " AND ords.total > 50.0", 4, 2),
    ("SELECT name, total FROM cust LEFT JOIN ords ON cust.cid = ords.cid"
     " AND ords.total > 50.0", 6, 2),
    ("SELECT sale_id, city FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id WHERE region = 'north'", 5, 2),
    ("SELECT sale_id, city FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id WHERE quantity > 4", 4, 2),
    ("SELECT sale_id, city FROM sales, stores"
     " WHERE sales.store_id = stores.store_id AND city = 'London'", 3, 2),
    ("SELECT a, name FROM void LEFT JOIN cust ON void.a = cust.cid",
     0, 2),
    ("SELECT name, a FROM cust LEFT JOIN void ON cust.cid = void.a",
     5, 2),
    ("SELECT name, a FROM cust RIGHT JOIN void ON cust.cid = void.a",
     0, 2),
    ("SELECT name, a FROM cust FULL JOIN void ON cust.cid = void.a",
     5, 2),
    ("SELECT name FROM cust SEMI JOIN void ON cust.cid = void.a", 0, 1),
    ("SELECT name FROM cust ANTI JOIN void ON cust.cid = void.a", 5, 1),
    ("SELECT s1.sale_id AS lo, s2.sale_id AS hi FROM sales s1 JOIN"
     " sales s2 ON s1.store_id = s2.store_id"
     " WHERE s1.sale_id < s2.sale_id", 7, 2),
    ("SELECT c.name, o.oid, s.city FROM cust c JOIN ords o"
     " ON c.cid = o.cid JOIN stores s ON c.cid = s.store_id", 7, 3),
    # --- subqueries: EXISTS / IN / scalar ---------------------------
    ("SELECT name FROM cust WHERE EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid)", 4, 1),
    ("SELECT name FROM cust WHERE NOT EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid)", 1, 1),
    ("SELECT name FROM cust WHERE EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid"
     " AND total >= 40.0)", 3, 1),
    ("SELECT name FROM cust WHERE EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid"
     " AND total > 100.0)", 1, 1),
    ("SELECT name FROM cust WHERE NOT EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid"
     " AND total > 100.0)", 4, 1),
    ("SELECT name FROM cust WHERE EXISTS (SELECT 1 FROM void)", 0, 1),
    ("SELECT name FROM cust WHERE NOT EXISTS (SELECT 1 FROM void)",
     5, 1),
    ("SELECT name FROM cust WHERE EXISTS (SELECT 1 FROM stores)", 5, 1),
    ("SELECT name FROM cust WHERE country = 'de' AND EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid)", 2, 1),
    ("SELECT name FROM cust WHERE cid IN (SELECT cid FROM ords)", 4, 1),
    ("SELECT name FROM cust WHERE cid NOT IN (SELECT cid FROM ords)",
     1, 1),
    ("SELECT name FROM cust WHERE cid IN"
     " (SELECT cid FROM ords WHERE total > 55.0)", 3, 1),
    ("SELECT name FROM cust WHERE cid NOT IN"
     " (SELECT cid FROM ords WHERE total > 55.0)", 2, 1),
    ("SELECT name FROM cust WHERE cid IN (SELECT a FROM void)", 0, 1),
    ("SELECT name FROM cust WHERE cid NOT IN (SELECT a FROM void)",
     5, 1),
    ("SELECT k FROM nums WHERE k IN (SELECT cid FROM ords)", 6, 1),
    ("SELECT k FROM nums WHERE k NOT IN (SELECT cid FROM ords)", 4, 1),
    ("SELECT oid FROM ords WHERE item IN"
     " (SELECT product FROM sales WHERE product = 'apple')", 0, 1),
    ("SELECT oid FROM ords WHERE cid IN"
     " (SELECT cid FROM cust WHERE country = 'us')", 5, 1),
    ("SELECT oid FROM ords WHERE cid NOT IN (SELECT cid FROM cust)",
     3, 1),
    ("SELECT oid FROM ords WHERE total > (SELECT avg(total) FROM ords)",
     6, 1),
    ("SELECT oid FROM ords WHERE total >= (SELECT max(total) FROM ords)",
     1, 1),
    ("SELECT oid FROM ords WHERE total < (SELECT min(total) FROM ords)"
     " OR total > 0.0", 12, 1),
    ("SELECT name, (SELECT max(total) FROM ords) AS top FROM cust",
     5, 2),
    ("SELECT name, (SELECT count(*) FROM ords) AS n FROM cust", 5, 2),
    ("SELECT oid, total - (SELECT avg(total) FROM ords) AS delta"
     " FROM ords", 12, 2),
    ("SELECT sale_id FROM sales WHERE quantity >"
     " (SELECT avg(quantity) FROM sales)", 4, 1),
    ("SELECT sale_id FROM sales WHERE price <"
     " (SELECT avg(price) FROM sales WHERE product = 'apple')", 1, 1),
    ("SELECT k FROM nums WHERE f > (SELECT avg(f) FROM nums"
     " WHERE f < 2.0)", 7, 1),
    ("SELECT oid FROM ords WHERE total IN"
     " (SELECT total FROM ords o2 WHERE o2.cid = ords.cid)", 12, 1),
    ("SELECT name FROM cust WHERE cid IN"
     " (SELECT cid FROM ords WHERE item = 'z')", 3, 1),
    ("SELECT name FROM cust WHERE cid NOT IN"
     " (SELECT cid FROM ords WHERE item = 'z')", 2, 1),
    # --- aggregation ------------------------------------------------
    ("SELECT count(*) AS n FROM sales", 1, 1),
    ("SELECT count(*) AS n FROM void", 1, 1),
    ("SELECT sum(quantity) AS q FROM sales", 1, 1),
    ("SELECT min(price) AS lo, max(price) AS hi FROM sales", 1, 2),
    ("SELECT avg(quantity) AS aq FROM sales", 1, 1),
    ("SELECT count(distinct product) AS p FROM sales", 1, 1),
    ("SELECT count(distinct store_id) AS s FROM sales", 1, 1),
    ("SELECT count(distinct item) AS i FROM ords", 1, 1),
    ("SELECT product, count(*) AS n FROM sales GROUP BY product", 3, 2),
    ("SELECT product, sum(quantity) AS q FROM sales GROUP BY product",
     3, 2),
    ("SELECT store_id, count(*) AS n FROM sales GROUP BY store_id",
     3, 2),
    ("SELECT store_id, sum(quantity) AS q, avg(price) AS p FROM sales"
     " GROUP BY store_id", 3, 3),
    ("SELECT store_id, product, count(*) AS n FROM sales"
     " GROUP BY store_id, product", 8, 3),
    ("SELECT product, min(price) AS lo, max(price) AS hi FROM sales"
     " GROUP BY product", 3, 3),
    ("SELECT product, sum(quantity) AS q FROM sales GROUP BY product"
     " HAVING sum(quantity) > 10", 2, 2),
    ("SELECT product, count(*) AS n FROM sales GROUP BY product"
     " HAVING count(*) > 2", 2, 2),
    ("SELECT store_id, sum(quantity) AS q FROM sales GROUP BY store_id"
     " HAVING sum(quantity) > 10", 2, 2),
    ("SELECT product, sum(quantity) AS q FROM sales"
     " WHERE store_id <> 1 GROUP BY product", 3, 2),
    ("SELECT month(sold_on) AS m, count(*) AS n FROM sales"
     " GROUP BY month(sold_on)", 4, 2),
    ("SELECT year(sold_on) AS y, sum(quantity) AS q FROM sales"
     " GROUP BY year(sold_on)", 1, 2),
    ("SELECT item, count(*) AS n FROM ords GROUP BY item", 3, 2),
    ("SELECT cid, sum(total) AS t FROM ords GROUP BY cid", 6, 2),
    ("SELECT cid, sum(total) AS t FROM ords GROUP BY cid"
     " HAVING sum(total) > 100.0", 5, 2),
    ("SELECT cid, count(*) AS n FROM ords WHERE total > 40.0"
     " GROUP BY cid", 5, 2),
    ("SELECT s, count(*) AS n FROM nums GROUP BY s", 4, 2),
    ("SELECT s, count(*) AS n FROM nums WHERE f > 4.0 GROUP BY s",
     4, 2),
    ("SELECT country, count(*) AS n FROM cust GROUP BY country", 3, 2),
    ("SELECT city, sum(quantity) AS q FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id GROUP BY city", 3, 2),
    ("SELECT region, sum(quantity) AS q FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id GROUP BY region", 2, 2),
    ("SELECT region, count(*) AS n FROM sales JOIN stores"
     " ON sales.store_id = stores.store_id GROUP BY region"
     " HAVING count(*) > 3", 1, 2),
    ("SELECT name, count(*) AS n FROM cust JOIN ords"
     " ON cust.cid = ords.cid GROUP BY name", 4, 2),
    ("SELECT name, sum(total) AS t FROM cust JOIN ords"
     " ON cust.cid = ords.cid GROUP BY name"
     " HAVING sum(total) > 100.0", 3, 2),
    ("SELECT sum(quantity * price) AS revenue FROM sales", 1, 1),
    ("SELECT product, sum(quantity * price) AS revenue FROM sales"
     " GROUP BY product", 3, 2),
    ("SELECT sum(total) AS t FROM ords WHERE cid IN"
     " (SELECT cid FROM cust)", 1, 1),
    ("SELECT count(*) AS n FROM cust WHERE EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid)", 1, 1),
    # --- ordering & limits ------------------------------------------
    ("SELECT sale_id FROM sales ORDER BY sale_id", 8, 1),
    ("SELECT sale_id FROM sales ORDER BY sale_id DESC", 8, 1),
    ("SELECT sale_id, quantity FROM sales ORDER BY quantity DESC,"
     " sale_id", 8, 2),
    ("SELECT sale_id FROM sales ORDER BY sale_id LIMIT 3", 3, 1),
    ("SELECT sale_id FROM sales ORDER BY sale_id LIMIT 3 OFFSET 6",
     2, 1),
    ("SELECT sale_id FROM sales ORDER BY sale_id LIMIT 20", 8, 1),
    ("SELECT sale_id FROM sales LIMIT 5", 5, 1),
    ("SELECT sale_id FROM sales LIMIT 0", 0, 1),
    ("SELECT sale_id FROM sales LIMIT 5 OFFSET 5", 3, 1),
    ("SELECT * FROM ords ORDER BY total DESC LIMIT 4", 4, 4),
    ("SELECT * FROM ords ORDER BY item, total DESC", 12, 4),
    ("SELECT product, sum(quantity) AS q FROM sales GROUP BY product"
     " ORDER BY q DESC", 3, 2),
    ("SELECT product, sum(quantity) AS q FROM sales GROUP BY product"
     " ORDER BY q DESC LIMIT 2", 2, 2),
    ("SELECT cid, sum(total) AS t FROM ords GROUP BY cid"
     " ORDER BY t DESC LIMIT 3", 3, 2),
    ("SELECT name, oid FROM cust RIGHT JOIN ords ON cust.cid = ords.cid"
     " ORDER BY oid", 12, 2),
    ("SELECT name, oid FROM cust FULL JOIN ords ON cust.cid = ords.cid"
     " ORDER BY oid LIMIT 5", 5, 2),
    ("SELECT k, f FROM nums ORDER BY f DESC LIMIT 4", 4, 2),
    ("SELECT * FROM void ORDER BY a LIMIT 3", 0, 2),
    # --- UNION ALL --------------------------------------------------
    ("SELECT sale_id FROM sales UNION ALL SELECT sale_id FROM sales",
     16, 1),
    ("SELECT product FROM sales UNION ALL SELECT city FROM stores",
     11, 1),
    ("SELECT sale_id FROM sales WHERE store_id = 1 UNION ALL"
     " SELECT sale_id FROM sales WHERE store_id = 2", 6, 1),
    ("SELECT cid FROM cust UNION ALL SELECT cid FROM ords", 17, 1),
    ("SELECT a FROM void UNION ALL SELECT k FROM nums", 10, 1),
    ("SELECT count(*) AS n FROM sales UNION ALL"
     " SELECT count(*) AS n FROM stores", 2, 1),
    ("SELECT name FROM cust WHERE country = 'de' UNION ALL"
     " SELECT name FROM cust WHERE country = 'us' UNION ALL"
     " SELECT name FROM cust WHERE country = 'fr'", 5, 1),
    ("SELECT sale_id FROM sales WHERE quantity > 4 UNION ALL"
     " SELECT store_id FROM stores", 7, 1),
    # --- derived tables ---------------------------------------------
    ("SELECT * FROM (SELECT sale_id, quantity FROM sales) t", 8, 2),
    ("SELECT q FROM (SELECT sum(quantity) AS q FROM sales) t", 1, 1),
    ("SELECT * FROM (SELECT product, sum(quantity) AS q FROM sales"
     " GROUP BY product) t WHERE q > 10", 2, 2),
    ("SELECT t.product FROM (SELECT DISTINCT product FROM sales) t",
     3, 1),
    ("SELECT * FROM (SELECT * FROM sales WHERE quantity > 4) t"
     " WHERE price > 2.0", 2, 6),
    ("SELECT big.product, stores.city FROM (SELECT product, store_id"
     " FROM sales WHERE quantity > 4) big JOIN stores"
     " ON big.store_id = stores.store_id", 4, 2),
    ("SELECT t.c FROM (SELECT cid, count(*) AS c FROM ords"
     " GROUP BY cid) t WHERE t.c > 1", 4, 1),
    ("SELECT * FROM (SELECT oid FROM ords WHERE total > 65.0) t", 6, 1),
    ("SELECT * FROM (SELECT name FROM cust WHERE cid IN"
     " (SELECT cid FROM ords)) t", 4, 1),
    ("SELECT * FROM (SELECT a FROM void) t", 0, 1),
    # --- mixed / regression shapes ----------------------------------
    ("SELECT sale_id FROM sales WHERE quantity > 4 AND product"
     " IN ('apple', 'pear')", 3, 1),
    ("SELECT sale_id FROM sales WHERE quantity > 4 OR product"
     " NOT IN ('apple', 'pear', 'plum')", 4, 1),
    ("SELECT name FROM cust WHERE cid IN (SELECT cid FROM ords)"
     " AND country = 'us'", 2, 1),
    ("SELECT name FROM cust WHERE cid IN (SELECT cid FROM ords)"
     " AND cid NOT IN (SELECT cid FROM ords WHERE item = 'z')", 1, 1),
    ("SELECT name FROM cust WHERE EXISTS"
     " (SELECT 1 FROM ords WHERE ords.cid = cust.cid AND item = 'x')"
     " AND NOT EXISTS (SELECT 1 FROM ords WHERE ords.cid = cust.cid"
     " AND item = 'y')", 0, 1),
    ("SELECT city FROM stores WHERE store_id IN"
     " (SELECT store_id FROM sales WHERE quantity > 6)", 2, 1),
    ("SELECT city FROM stores WHERE store_id NOT IN"
     " (SELECT store_id FROM sales WHERE quantity > 6)", 1, 1),
    ("SELECT count(*) AS n FROM cust FULL JOIN ords"
     " ON cust.cid = ords.cid", 1, 1),
    ("SELECT count(*) AS n FROM cust RIGHT JOIN ords"
     " ON cust.cid = ords.cid", 1, 1),
    ("SELECT name, count(*) AS n FROM cust RIGHT JOIN ords"
     " ON cust.cid = ords.cid GROUP BY name", 5, 2),
    ("SELECT item, count(*) AS n FROM cust RIGHT JOIN ords"
     " ON cust.cid = ords.cid WHERE total > 50.0 GROUP BY item", 3, 2),
    ("SELECT product, count(*) AS n FROM sales WHERE product LIKE 'p%'"
     " GROUP BY product ORDER BY n DESC", 2, 2),
    ("SELECT k, f FROM nums WHERE f NOT IN (0.5, 1.5) ORDER BY k",
     6, 2),
    ("SELECT s, count(*) AS n FROM nums WHERE f NOT IN ()"
     " GROUP BY s", 4, 2),
    ("SELECT oid FROM ords WHERE total > (SELECT avg(total) FROM ords)"
     " AND item IN ('x', 'z')", 4, 1),
    ("SELECT name FROM cust WHERE cid IN (SELECT cid FROM ords WHERE"
     " total > (SELECT avg(total) FROM ords))", 2, 1),
    ("SELECT sale_id FROM sales WHERE store_id IN (1, 2) AND sold_on"
     " >= DATE '2023-02-01' ORDER BY sale_id", 4, 1),
    ("SELECT DISTINCT item FROM ords WHERE cid IN"
     " (SELECT cid FROM cust)", 3, 1),
    ("SELECT max(total) AS m FROM ords WHERE cid NOT IN"
     " (SELECT cid FROM cust)", 1, 1),
    ("SELECT quantity, count(*) AS n FROM sales GROUP BY quantity",
     8, 2),
]


def canon_rows(table) -> list:
    """Rows as a sorted, NaN-normalized list — comparable across plan
    shapes (NaN breaks total ordering, so it maps to a marker)."""
    def fix(value):
        if isinstance(value, float) and math.isnan(value):
            return "__nan__"
        return value

    rows = [tuple(fix(v) for v in row) for row in table.to_rows()]
    return sorted(rows, key=repr)


def assert_byte_identical(a, b) -> None:
    assert a.schema == b.schema
    for name in a.schema.names:
        left, right = a.column(name), b.column(name)
        assert left.dtype == right.dtype, name
        if left.dtype.kind == "f":
            assert np.array_equal(left, right, equal_nan=True), name
        else:
            assert np.array_equal(left, right), name


@pytest.fixture(scope="module")
def warm_db():
    db = Database(catalog=build_catalog())
    yield db
    db.close()


@pytest.fixture(scope="module")
def nopt_db():
    db = Database(RecyclerConfig(optimize_plans=False),
                  catalog=build_catalog())
    yield db
    db.close()


@pytest.fixture(scope="module")
def proc_session():
    db = Database(catalog=build_catalog())
    runtime = db.shard_runtime(2)
    session = db.connect(executor=runtime)
    yield session, runtime
    db.close()


def case_id(case) -> str:
    sql = case[0]
    return sql[:60].replace(" ", "_")


@pytest.mark.parametrize("case", CASES, ids=case_id)
def test_battery(case, warm_db, nopt_db, proc_session):
    sql, rows, cols = case
    cold = warm_db.sql(sql)
    assert (cold.table.num_rows, len(cold.table.schema.names)) \
        == (rows, cols), sql
    reference = canon_rows(cold.table)

    # warm: full graph unification, byte-identical result
    warm = warm_db.sql(sql)
    assert warm.record.num_inserted == 0, sql
    assert warm.record.num_matched > 0, sql
    assert_byte_identical(cold.table, warm.table)

    # optimizer-off: same multiset of rows
    off = nopt_db.sql(sql)
    assert canon_rows(off.table) == reference, sql

    # process-mode: same multiset of rows
    session, _ = proc_session
    remote = session.sql(sql)
    assert canon_rows(remote.table) == reference, sql


def test_battery_is_big_enough():
    assert len(CASES) >= 200
    assert len({sql for sql, _, _ in CASES}) == len(CASES)


def test_process_mode_engaged(proc_session):
    """Run after the battery: cold plans actually went remote."""
    _, runtime = proc_session
    assert runtime.stats["remote_queries"] > 0
