"""Binder canonical-shape assertions.

The binder must never emit a ``Select`` whose child is a ``Select``:
parsed ``WHERE a AND b``, a derived table with its own WHERE under an
outer WHERE, and HAVING over an already-filtered aggregate all bind to
one merged filter per spot.  Together with the plan optimizer this
closes the stacked-filter miss from both ends — SQL never produces the
stacked shape, and builder plans that do are canonicalized in
``Recycler.prepare``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RecyclerConfig
from repro.columnar import FLOAT64, INT64, STRING, Table
from repro.expr import And, Cmp, Col, Lit
from repro.plan import plan_fingerprint, q
from repro.plan.logical import Select


@pytest.fixture
def db():
    database = Database(RecyclerConfig(mode="spec"))
    rng = np.random.default_rng(3)
    n = 2000
    database.register_table("events", Table(
        Table.from_rows(["eid", "kind", "value"],
                        [INT64, STRING, FLOAT64], []).schema,
        {
            "eid": np.arange(n, dtype=np.int64),
            "kind": rng.choice(np.array(["a", "b", "c"], dtype=object),
                               n),
            "value": rng.uniform(0, 10, n),
        }))
    database.register_table("owners", Table.from_rows(
        ["kind", "owner"], [STRING, STRING],
        [("a", "ann"), ("b", "bob"), ("c", "cat")]))
    return database


def no_stacked_selects(plan) -> bool:
    return not any(isinstance(node, Select)
                   and isinstance(node.child, Select)
                   for node in plan.walk())


class TestBinderShapes:
    def test_where_and_binds_like_builder_and(self, db):
        parsed = db.plan("SELECT eid FROM events"
                         " WHERE value > 5.0 AND eid < 100")
        built = (q.scan("events", ["eid", "value"])
                  .filter(And([Cmp(">", Col("value"), Lit(5.0)),
                               Cmp("<", Col("eid"), Lit(100))]))
                  .project(["eid"]).build())
        assert plan_fingerprint(parsed) == plan_fingerprint(built)

    def test_derived_table_where_merges_with_outer_where(self, db):
        nested = db.plan(
            "SELECT eid FROM"
            " (SELECT eid, value FROM events WHERE value > 5.0) sub"
            " WHERE eid < 100")
        flat = db.plan("SELECT eid FROM events"
                       " WHERE value > 5.0 AND eid < 100")
        assert no_stacked_selects(nested)
        assert plan_fingerprint(nested) == plan_fingerprint(flat)

    def test_conjunct_order_does_not_change_fingerprint(self, db):
        ab = db.plan("SELECT eid FROM events"
                     " WHERE value > 5.0 AND eid < 100")
        ba = db.plan("SELECT eid FROM events"
                     " WHERE eid < 100 AND value > 5.0")
        assert plan_fingerprint(ab) == plan_fingerprint(ba)

    def test_having_over_filtered_aggregate(self, db):
        plan = db.plan(
            "SELECT kind, sum(value) AS s FROM events"
            " WHERE value > 1.0 GROUP BY kind HAVING sum(value) > 10.0")
        assert no_stacked_selects(plan)

    def test_join_with_residual_on_condition(self, db):
        plan = db.plan(
            "SELECT e.eid FROM events e JOIN owners o"
            " ON e.kind = o.kind AND e.value > 5.0"
            " WHERE e.eid < 500")
        assert no_stacked_selects(plan)

    def test_numeric_literal_spelling_shares_fingerprint(self, db):
        # the binder keeps literals as written; prepare()'s normalize
        # pass closes the numeric-spelling gap end to end
        as_int = db.plan("SELECT eid FROM events WHERE eid < 100")
        as_float = db.plan("SELECT eid FROM events WHERE eid < 100.0")
        optimizer = db.recycler.optimizer
        snapshot = db.catalog.snapshot()
        o_int, _ = optimizer.optimize(as_int, snapshot)
        o_float, _ = optimizer.optimize(as_float, snapshot)
        assert plan_fingerprint(o_int) == plan_fingerprint(o_float)

    def test_sql_and_builder_share_cache_entries(self, db):
        sql = ("SELECT kind, sum(value) AS s FROM events"
               " WHERE eid < 1000 GROUP BY kind")
        cold = db.sql(sql)
        built = (q.scan("events", ["eid", "kind", "value"])
                  .filter(Cmp("<", Col("eid"), Lit(1000)))
                  .aggregate(keys=["kind"],
                             aggs=[("sum", Col("value"), "s")])
                  .build())
        warm = db.execute(built)
        assert warm.stats.num_reused >= 1
        assert warm.record.num_inserted == 0
        assert warm.table.to_rows() == cold.table.to_rows()
