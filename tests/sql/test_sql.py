"""Tests for the SQL front end: lexer, parser, binder, execution."""

from __future__ import annotations

import pytest

from repro.engine import execute_plan
from repro.errors import SqlError
from repro.sql import parse, sql_to_plan, tokenize


def run(sql, catalog):
    plan = sql_to_plan(sql, catalog)
    return execute_plan(plan, catalog).table


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, b FROM t WHERE x >= 1.5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["keyword", "ident", "symbol", "ident", "keyword",
                         "ident", "keyword", "ident", "symbol", "number",
                         "eof"]

    def test_string_escapes(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n, 2")
        values = [t.value for t in tokens if t.kind == "number"]
        assert values == ["1", "2"]

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("SELECT 'oops")

    def test_qualified_name_not_number(self):
        tokens = tokenize("t1.c2")
        assert [t.kind for t in tokens][:3] == ["ident", "symbol", "ident"]


class TestParser:
    def test_parse_simple(self):
        stmt = parse("SELECT a, b AS bb FROM t WHERE a > 1")
        assert len(stmt.items) == 2
        assert stmt.items[1].alias == "bb"
        assert stmt.from_tables[0].name == "t"

    def test_parse_group_order_limit(self):
        stmt = parse("""
            SELECT g, sum(v) AS s FROM t
            GROUP BY g HAVING sum(v) > 10
            ORDER BY s DESC LIMIT 5 OFFSET 2""")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert not stmt.order_by[0].ascending
        assert (stmt.limit, stmt.offset) == (5, 2)

    def test_parse_joins(self):
        stmt = parse("""
            SELECT * FROM a
            JOIN b ON a.x = b.y
            SEMI JOIN c ON a.x = c.z AND c.w > 2""")
        assert [j.kind for j in stmt.joins] == ["inner", "semi"]

    def test_parse_derived_table(self):
        stmt = parse("SELECT s FROM (SELECT sum(v) AS s FROM t) sub")
        assert stmt.from_tables[0].subquery is not None
        assert stmt.from_tables[0].alias == "sub"

    def test_parse_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert len(stmt.union_all) == 1

    def test_parse_case(self):
        stmt = parse("SELECT CASE WHEN a > 1 THEN 1 ELSE 0 END FROM t")
        assert stmt.items[0].expr is not None

    def test_parse_table_function(self):
        stmt = parse("SELECT * FROM fGetNearbyObjEq(195, 2.5, 0.5) n")
        ref = stmt.from_tables[0]
        assert ref.function == "fGetNearbyObjEq"
        assert ref.alias == "n"
        assert len(ref.function_args) == 3

    def test_parse_error_reports_position(self):
        with pytest.raises(SqlError) as excinfo:
            parse("SELECT FROM t")
        assert "line" in str(excinfo.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t garbage extra ,")


class TestBinderExecution:
    def test_projection_and_filter(self, sales_catalog):
        table = run("SELECT sale_id, quantity * price AS revenue "
                    "FROM sales WHERE quantity > 4", sales_catalog)
        assert table.schema.names == ["sale_id", "revenue"]
        assert sorted(table.column("sale_id")) == [3, 5, 7, 8]

    def test_select_star(self, sales_catalog):
        table = run("SELECT * FROM stores", sales_catalog)
        assert table.num_rows == 3

    def test_group_by_having(self, sales_catalog):
        table = run("""
            SELECT product, sum(quantity) AS total, count(*) AS n
            FROM sales GROUP BY product
            HAVING sum(quantity) > 10
            ORDER BY total DESC""", sales_catalog)
        assert list(table.column("product")) == ["apple", "pear"]
        assert list(table.column("total")) == [15, 13]

    def test_post_aggregate_arithmetic(self, sales_catalog):
        table = run("""
            SELECT product, sum(quantity * price) / sum(quantity) AS unit
            FROM sales GROUP BY product""", sales_catalog)
        values = dict(zip(table.column("product"), table.column("unit")))
        assert values["apple"] == pytest.approx(
            (3 * 1.5 + 5 * 1.4 + 7 * 1.6) / 15)

    def test_scalar_aggregate(self, sales_catalog):
        table = run("SELECT min(price) AS lo, max(price) AS hi FROM sales",
                    sales_catalog)
        assert table.num_rows == 1
        assert table.column("lo")[0] == pytest.approx(1.4)

    def test_comma_join_with_where(self, sales_catalog):
        table = run("""
            SELECT s.sale_id, st.city
            FROM sales s, stores st
            WHERE s.store_id = st.store_id AND st.region = 'north'
            ORDER BY s.sale_id""", sales_catalog)
        assert list(table.column("sale_id")) == [1, 2, 5, 6, 7]

    def test_explicit_join_on(self, sales_catalog):
        table = run("""
            SELECT s.sale_id FROM sales s
            JOIN stores st ON s.store_id = st.store_id
            WHERE st.city = 'London'""", sales_catalog)
        assert sorted(table.column("sale_id")) == [3, 4, 8]

    def test_semi_and_anti_join(self, sales_catalog):
        semi = run("""
            SELECT st.city FROM stores st
            SEMI JOIN sales s ON st.store_id = s.store_id
                AND s.product = 'plum'""", sales_catalog)
        assert sorted(semi.column("city")) == ["Edinburgh", "London"]
        anti = run("""
            SELECT st.city FROM stores st
            ANTI JOIN sales s ON st.store_id = s.store_id
                AND s.product = 'plum'""", sales_catalog)
        assert list(anti.column("city")) == ["Glasgow"]

    def test_name_collision_qualified(self, sales_catalog):
        # store_id exists on both sides; the binder must de-collide.
        table = run("""
            SELECT s.store_id AS sid, st.store_id AS tid
            FROM sales s, stores st
            WHERE s.store_id = st.store_id LIMIT 1""", sales_catalog)
        assert table.schema.names == ["sid", "tid"]

    def test_derived_table(self, sales_catalog):
        table = run("""
            SELECT t.product FROM
            (SELECT product, sum(quantity) AS total FROM sales
             GROUP BY product) t
            WHERE t.total > 10 ORDER BY t.product""", sales_catalog)
        assert list(table.column("product")) == ["apple", "pear"]

    def test_single_row_derived_cross_join(self, sales_catalog):
        # the decorrelated scalar-subquery pattern (TPC-H Q11 style)
        table = run("""
            SELECT product, total FROM
            (SELECT product, sum(quantity) AS total FROM sales
             GROUP BY product) agg,
            (SELECT sum(quantity) AS grand FROM sales) g
            WHERE total > 0.3 * grand""", sales_catalog)
        assert sorted(table.column("product")) == ["apple", "pear"]

    def test_case_expression(self, sales_catalog):
        table = run("""
            SELECT sum(CASE WHEN product = 'apple' THEN quantity
                       ELSE 0 END) AS apples
            FROM sales""", sales_catalog)
        assert table.column("apples")[0] == 15

    def test_count_distinct(self, sales_catalog):
        table = run("""
            SELECT store_id, count(DISTINCT product) AS n FROM sales
            GROUP BY store_id ORDER BY store_id""", sales_catalog)
        assert list(table.column("n")) == [3, 3, 2]

    def test_between_in_like(self, sales_catalog):
        table = run("""
            SELECT sale_id FROM sales
            WHERE quantity BETWEEN 2 AND 6
              AND product IN ('apple', 'plum')
              AND product LIKE '%l%'
            ORDER BY sale_id""", sales_catalog)
        assert list(table.column("sale_id")) == [1, 3, 4, 7]

    def test_date_literals(self, sales_catalog):
        table = run("""
            SELECT sale_id FROM sales
            WHERE sold_on >= date '2023-03-01'
              AND sold_on < date '2023-04-01'""", sales_catalog)
        assert sorted(table.column("sale_id")) == [5, 6]

    def test_year_function(self, sales_catalog):
        table = run("SELECT DISTINCT year(sold_on) AS y FROM sales",
                    sales_catalog)
        assert list(table.column("y")) == [2023]

    def test_union_all(self, sales_catalog):
        table = run("""
            SELECT product FROM sales WHERE store_id = 1
            UNION ALL
            SELECT product FROM sales WHERE store_id = 2""",
                    sales_catalog)
        assert table.num_rows == 6

    def test_order_by_desc_limit_offset(self, sales_catalog):
        table = run("""
            SELECT sale_id, quantity FROM sales
            ORDER BY quantity DESC LIMIT 2 OFFSET 1""", sales_catalog)
        assert list(table.column("quantity")) == [7, 6]

    def test_group_by_expression(self, sales_catalog):
        table = run("""
            SELECT month(sold_on) AS m, sum(quantity) AS q FROM sales
            GROUP BY month(sold_on) ORDER BY m""", sales_catalog)
        assert list(table.column("m")) == [1, 2, 3, 4]
        assert list(table.column("q")) == [4, 7, 11, 14]


class TestBinderErrors:
    def test_unknown_table(self, sales_catalog):
        with pytest.raises(Exception):
            sql_to_plan("SELECT x FROM nope", sales_catalog)

    def test_unknown_column(self, sales_catalog):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT missing FROM sales", sales_catalog)

    def test_ambiguous_column(self, sales_catalog):
        with pytest.raises(SqlError):
            sql_to_plan(
                "SELECT store_id FROM sales s, stores st "
                "WHERE s.store_id = st.store_id", sales_catalog)

    def test_non_grouped_column_rejected(self, sales_catalog):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT product, quantity, sum(price) FROM sales "
                        "GROUP BY product", sales_catalog)

    def test_missing_join_condition(self, sales_catalog):
        with pytest.raises(SqlError):
            sql_to_plan("SELECT s.sale_id FROM sales s, stores st",
                        sales_catalog)


class TestPlanCanonicalization:
    def test_same_text_same_plan(self, sales_catalog):
        from repro.plan import plan_fingerprint
        sql = ("SELECT product, sum(quantity) AS t FROM sales "
               "WHERE quantity > 2 GROUP BY product")
        a = sql_to_plan(sql, sales_catalog)
        b = sql_to_plan(sql, sales_catalog)
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_filters_pushed_below_joins(self, sales_catalog):
        from repro.plan.logical import Join, Select
        plan = sql_to_plan("""
            SELECT s.sale_id FROM sales s, stores st
            WHERE s.store_id = st.store_id AND st.region = 'north'
              AND s.quantity > 2""", sales_catalog)
        joins = [n for n in plan.walk() if isinstance(n, Join)]
        assert len(joins) == 1
        # both join inputs are filtered before the join
        sides = joins[0].children
        assert any(isinstance(s, Select) or
                   any(isinstance(d, Select) for d in s.walk())
                   for s in sides)
