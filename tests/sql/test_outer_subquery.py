"""Tentpole coverage: outer joins and decorrelated subqueries.

Three layers, one file:

* **parser** — RIGHT/FULL (optionally OUTER) join kinds, EXISTS /
  NOT EXISTS, ``IN (SELECT …)``, and parenthesized scalar subqueries
  produce the expected AST;
* **binder** — subqueries decorrelate into semi/anti joins (visible in
  the logical plan), and the unsupported positions fail with clear
  ``SqlError``\\ s instead of planning something wrong;
* **engine** — right/full join padding uses the engine's NULL-free
  type defaults (0 / 0.0 / "") and the optimizer's outer-join-aware
  pushdown never changes results.
"""

from __future__ import annotations

import pytest

from repro.columnar import Catalog, FLOAT64, INT64, STRING, Table
from repro.errors import SqlError
from repro.plan import PlanOptimizer
from repro.engine import execute_plan
from repro.plan.logical import Join
from repro.sql import parse, sql_to_plan


@pytest.fixture(scope="module")
def view():
    catalog = Catalog()
    catalog.register_table("c", Table.from_rows(
        ["cid", "name", "score"], [INT64, STRING, FLOAT64],
        [(1, "ann", 1.5), (2, "bob", 2.5), (3, "cyd", 3.5)]))
    catalog.register_table("o", Table.from_rows(
        ["oid", "ocid", "amt"], [INT64, INT64, FLOAT64],
        [(10, 1, 5.0), (11, 1, 7.0), (12, 3, 9.0), (13, 7, 2.0)]))
    return catalog.snapshot()


def run(sql: str, view):
    return execute_plan(sql_to_plan(sql, view), view).table


def join_kinds(plan) -> list[str]:
    kinds = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Join):
            kinds.append(node.kind)
        stack.extend(node.children)
    return sorted(kinds)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class TestParser:
    @pytest.mark.parametrize("syntax,kind", [
        ("RIGHT JOIN", "right"), ("RIGHT OUTER JOIN", "right"),
        ("FULL JOIN", "full"), ("FULL OUTER JOIN", "full"),
        ("LEFT OUTER JOIN", "left"),
    ])
    def test_outer_join_kinds(self, syntax, kind):
        stmt = parse(f"SELECT a FROM t {syntax} u ON t.a = u.b")
        assert [j.kind for j in stmt.joins] == [kind]

    def test_exists_and_not_exists(self):
        stmt = parse("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert not stmt.where.negated
        stmt = parse(
            "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
        assert stmt.where.negated

    def test_in_subquery_vs_value_list(self):
        from repro.sql import ast
        sub = parse("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(sub.where, ast.InSubquery)
        lst = parse("SELECT a FROM t WHERE a IN (1, 2)")
        assert isinstance(lst.where, ast.InExpr)

    def test_scalar_subquery_operand(self):
        from repro.sql import ast
        stmt = parse(
            "SELECT a FROM t WHERE a > (SELECT max(b) FROM u)")
        assert isinstance(stmt.where.right, ast.ScalarSubquery)


# ----------------------------------------------------------------------
# binder / decorrelation
# ----------------------------------------------------------------------
class TestDecorrelation:
    def test_exists_becomes_semi_join(self, view):
        plan = sql_to_plan(
            "SELECT name FROM c WHERE EXISTS"
            " (SELECT 1 FROM o WHERE o.ocid = c.cid)", view)
        assert "semi" in join_kinds(plan)

    def test_not_exists_becomes_anti_join(self, view):
        plan = sql_to_plan(
            "SELECT name FROM c WHERE NOT EXISTS"
            " (SELECT 1 FROM o WHERE o.ocid = c.cid)", view)
        assert "anti" in join_kinds(plan)

    def test_in_subquery_becomes_semi_join(self, view):
        plan = sql_to_plan(
            "SELECT name FROM c WHERE cid IN"
            " (SELECT ocid FROM o)", view)
        assert "semi" in join_kinds(plan)

    def test_not_in_subquery_becomes_anti_join(self, view):
        plan = sql_to_plan(
            "SELECT name FROM c WHERE cid NOT IN"
            " (SELECT ocid FROM o)", view)
        assert "anti" in join_kinds(plan)

    @pytest.mark.parametrize("sql", [
        # subquery expressions outside a top-level WHERE conjunct
        "SELECT EXISTS (SELECT 1 FROM o) AS e FROM c",
        "SELECT name FROM c WHERE cid = 1 OR EXISTS"
        " (SELECT 1 FROM o)",
        # IN-subquery operand must be a plain column
        "SELECT name FROM c WHERE cid + 1 IN (SELECT ocid FROM o)",
        # scalar subquery must be a single-row aggregate
        "SELECT name FROM c WHERE cid > (SELECT ocid FROM o)",
        "SELECT name FROM c WHERE cid > (SELECT max(ocid) FROM o"
        " GROUP BY amt)",
        # no LIMIT inside subqueries
        "SELECT name FROM c WHERE cid IN"
        " (SELECT ocid FROM o LIMIT 2)",
    ])
    def test_unsupported_shapes_raise(self, sql, view):
        with pytest.raises(SqlError):
            sql_to_plan(sql, view)


# ----------------------------------------------------------------------
# engine semantics
# ----------------------------------------------------------------------
class TestOuterJoinSemantics:
    def test_right_join_pads_probe_side_defaults(self, view):
        table = run(
            "SELECT name, score, oid, amt FROM c RIGHT JOIN o"
            " ON c.cid = o.ocid", view)
        rows = set(table.to_rows())
        # order 13 has no customer: STRING pads to "", FLOAT64 to 0.0
        assert ("", 0.0, 13, 2.0) in rows
        assert len(rows) == 4

    def test_full_join_is_left_plus_right_padding(self, view):
        table = run(
            "SELECT name, oid FROM c FULL JOIN o ON c.cid = o.ocid",
            view)
        rows = set(table.to_rows())
        assert ("bob", 0) in rows       # left-side preserved
        assert ("", 13) in rows         # right-side preserved
        assert table.num_rows == 5

    def test_left_and_right_are_mirrors(self, view):
        left = run("SELECT name, oid FROM c LEFT JOIN o"
                   " ON c.cid = o.ocid", view)
        right = run("SELECT name, oid FROM o RIGHT JOIN c"
                    " ON o.ocid = c.cid", view)
        assert sorted(left.to_rows()) == sorted(right.to_rows())

    @pytest.mark.parametrize("sql", [
        "SELECT name, oid FROM c RIGHT JOIN o ON c.cid = o.ocid"
        " WHERE amt > 4.0",
        "SELECT name, oid FROM c FULL JOIN o ON c.cid = o.ocid"
        " WHERE oid >= 0 AND score >= 0.0",
        "SELECT name, oid FROM c LEFT JOIN o ON c.cid = o.ocid"
        " WHERE name <> 'bob'",
    ])
    def test_pushdown_never_changes_outer_join_results(self, sql, view):
        raw = sql_to_plan(sql, view)
        optimized, _ = PlanOptimizer().optimize(raw, view)
        assert sorted(execute_plan(raw, view).table.to_rows()) \
            == sorted(execute_plan(optimized, view).table.to_rows())
