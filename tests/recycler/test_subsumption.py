"""Tests for subsumption: edges, the subsumes test, and compensations."""

from __future__ import annotations

import pytest

from repro.engine import execute_plan
from repro.expr import And, Cmp, Col, Lit
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig


def run_naive(plan, catalog):
    return execute_plan(plan, catalog).table


@pytest.fixture
def recycler(sales_catalog):
    return Recycler(sales_catalog, RecyclerConfig(
        mode="spec", cache_capacity=None,
        speculation_min_cost=0.0, speculation_benefit_threshold=0.0,
        min_store_cost=0.0, benefit_threshold=0.0))


class TestSelectTupleSubsumption:
    def test_narrower_range_reuses_wider_cached(self, recycler,
                                                sales_catalog):
        wide = (q.scan("sales", ["sale_id", "quantity"])
                 .filter(Cmp(">", Col("quantity"), Lit(1)))
                 .build())
        recycler.execute(wide)
        recycler.execute((q.scan("sales", ["sale_id", "quantity"])
                          .filter(Cmp(">", Col("quantity"), Lit(1)))
                          .build()))  # second run materializes / reuses
        narrow_plan = (q.scan("sales", ["sale_id", "quantity"])
                        .filter(Cmp(">", Col("quantity"), Lit(4)))
                        .build())
        prepared = recycler.prepare(narrow_plan)
        kinds = [r.kind for r in prepared.reuses]
        if "subsumption" in kinds:
            from repro.engine import execute_plan as ep
            result = ep(prepared.executed_plan, sales_catalog,
                        stores=prepared.stores)
            expected = run_naive(narrow_plan, sales_catalog)
            assert result.table.sorted_rows() == expected.sorted_rows()
        else:
            pytest.skip("wider select was not cached in this setup")

    def test_subsumption_result_correctness(self, recycler, sales_catalog):
        # Force-cache the wide selection, then ask for a strictly narrower
        # one and compare against naive execution.
        wide = (q.scan("sales", ["sale_id", "quantity", "product"])
                 .filter(Cmp(">=", Col("quantity"), Lit(2)))
                 .build())
        recycler.execute(wide)
        recycler.execute((q.scan("sales",
                                 ["sale_id", "quantity", "product"])
                          .filter(Cmp(">=", Col("quantity"), Lit(2)))
                          .build()))
        narrow = (q.scan("sales", ["sale_id", "quantity", "product"])
                   .filter(And([Cmp(">=", Col("quantity"), Lit(2)),
                                Cmp("<", Col("quantity"), Lit(6))]))
                   .build())
        result = recycler.execute(narrow)
        expected = run_naive(narrow, sales_catalog)
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_unrelated_predicate_is_not_subsumed(self, recycler,
                                                 sales_catalog):
        a = (q.scan("sales", ["sale_id", "quantity"])
              .filter(Cmp(">", Col("quantity"), Lit(3)))
              .build())
        recycler.execute(a)
        recycler.execute((q.scan("sales", ["sale_id", "quantity"])
                          .filter(Cmp(">", Col("quantity"), Lit(3)))
                          .build()))
        b = (q.scan("sales", ["sale_id", "quantity"])
              .filter(Cmp("<", Col("quantity"), Lit(2)))
              .build())
        prepared = recycler.prepare(b)
        assert all(r.kind != "subsumption" for r in prepared.reuses)


class TestAggregateSubsumption:
    def make(self, keys, aggs):
        return (q.scan("sales", ["store_id", "product", "quantity"])
                 .aggregate(keys=keys, aggs=aggs)
                 .build())

    def cache_fine_aggregate(self, recycler):
        fine = self.make(["store_id", "product"],
                         [("sum", Col("quantity"), "s"),
                          ("count_star", None, "c"),
                          ("min", Col("quantity"), "lo"),
                          ("max", Col("quantity"), "hi")])
        recycler.execute(fine)
        recycler.execute(self.make(["store_id", "product"],
                                   [("sum", Col("quantity"), "s"),
                                    ("count_star", None, "c"),
                                    ("min", Col("quantity"), "lo"),
                                    ("max", Col("quantity"), "hi")]))

    def test_rollup_from_finer_group_by(self, recycler, sales_catalog):
        self.cache_fine_aggregate(recycler)
        coarse = self.make(["product"], [("sum", Col("quantity"), "s2"),
                                         ("count_star", None, "c2"),
                                         ("min", Col("quantity"), "lo2"),
                                         ("max", Col("quantity"), "hi2")])
        prepared = recycler.prepare(coarse)
        assert any(r.kind == "subsumption" for r in prepared.reuses)
        result = recycler.execute(
            self.make(["product"], [("sum", Col("quantity"), "s2"),
                                    ("count_star", None, "c2"),
                                    ("min", Col("quantity"), "lo2"),
                                    ("max", Col("quantity"), "hi2")]))
        expected = run_naive(coarse, sales_catalog)
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_avg_recombines_sum_and_count(self, recycler, sales_catalog):
        self.cache_fine_aggregate(recycler)
        coarse = self.make(["product"], [("avg", Col("quantity"), "a")])
        result = recycler.execute(coarse)
        expected = run_naive(self.make(["product"],
                                       [("avg", Col("quantity"), "a")]),
                             sales_catalog)
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_column_subsumption_same_keys(self, recycler, sales_catalog):
        self.cache_fine_aggregate(recycler)
        subset = self.make(["store_id", "product"],
                           [("sum", Col("quantity"), "just_sum")])
        prepared = recycler.prepare(subset)
        assert any(r.kind == "subsumption" for r in prepared.reuses)
        result = recycler.execute(self.make(
            ["store_id", "product"], [("sum", Col("quantity"), "just_sum")]))
        expected = run_naive(subset, sales_catalog)
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_missing_aggregate_blocks_subsumption(self, recycler,
                                                  sales_catalog):
        fine = self.make(["store_id", "product"],
                         [("min", Col("quantity"), "lo")])
        recycler.execute(fine)
        recycler.execute(self.make(["store_id", "product"],
                                   [("min", Col("quantity"), "lo")]))
        other = self.make(["product"], [("sum", Col("quantity"), "s")])
        prepared = recycler.prepare(other)
        assert all(r.kind != "subsumption" for r in prepared.reuses)


class TestTopNSubsumption:
    def test_smaller_limit_reuses_larger_topn(self, recycler,
                                              sales_catalog):
        big = (q.scan("sales", ["sale_id", "price"])
                .top_n([("price", False)], limit=6)
                .build())
        recycler.execute(big)
        recycler.execute((q.scan("sales", ["sale_id", "price"])
                          .top_n([("price", False)], limit=6)
                          .build()))
        small = (q.scan("sales", ["sale_id", "price"])
                  .top_n([("price", False)], limit=2)
                  .build())
        prepared = recycler.prepare(small)
        assert any(r.kind == "subsumption" for r in prepared.reuses)
        result = recycler.execute(
            (q.scan("sales", ["sale_id", "price"])
              .top_n([("price", False)], limit=2)
              .build()))
        expected = run_naive(small, sales_catalog)
        assert result.table.to_rows() == expected.to_rows()

    def test_different_sort_keys_not_subsumed(self, recycler):
        big = (q.scan("sales", ["sale_id", "price"])
                .top_n([("price", False)], limit=6)
                .build())
        recycler.execute(big)
        recycler.execute((q.scan("sales", ["sale_id", "price"])
                          .top_n([("price", False)], limit=6)
                          .build()))
        other = (q.scan("sales", ["sale_id", "price"])
                  .top_n([("price", True)], limit=2)
                  .build())
        prepared = recycler.prepare(other)
        assert all(r.kind != "subsumption" for r in prepared.reuses)


class TestScanColumnSubsumption:
    def test_scan_subset_served_from_wider_scan(self, sales_catalog):
        config = RecyclerConfig(mode="spec", cache_capacity=None,
                                speculation_min_cost=0.0,
                                speculation_benefit_threshold=0.0,
                                min_store_cost=0.0, benefit_threshold=0.0)
        recycler = Recycler(sales_catalog, config)
        # Make the scan itself cacheable by forcing it through speculation.
        wide = q.scan("sales", ["sale_id", "product", "quantity"]).build()
        recycler.execute(wide)
        recycler.execute(
            q.scan("sales", ["sale_id", "product", "quantity"]).build())
        wide_match = recycler.prepare(
            q.scan("sales", ["sale_id", "product", "quantity"]).build())
        if not wide_match.reuses:
            pytest.skip("scan was not cached under this configuration")
        narrow = q.scan("sales", ["sale_id", "product"]).build()
        result = recycler.execute(narrow)
        expected = run_naive(q.scan("sales",
                                    ["sale_id", "product"]).build(),
                             sales_catalog)
        assert result.table.sorted_rows() == expected.sorted_rows()


class TestSubsumptionEdges:
    def test_edges_point_to_most_specific(self, sales_catalog):
        from repro.recycler import RecyclerGraph, SubsumptionIndex
        from repro.recycler import match_tree
        graph = RecyclerGraph(sales_catalog)
        index = SubsumptionIndex(graph)

        def insert(threshold, qid):
            plan = (q.scan("sales", ["sale_id", "quantity"])
                     .filter(Cmp(">", Col("quantity"), Lit(threshold)))
                     .build())
            m = match_tree(plan, graph, sales_catalog, query_id=qid,
                           subsumption_hook=index.on_insert)
            return m.of(plan).graph_node

        wide = insert(0, 1)     # quantity > 0  (widest)
        mid = insert(3, 2)      # quantity > 3
        narrow = insert(5, 3)   # quantity > 5  (narrowest)
        # narrow's most specific subsumer is mid, not wide (Fig. 4).
        assert mid in narrow.subsumers
        assert wide not in narrow.subsumers
        assert wide in mid.subsumers
