"""Tests for Algorithm-1 matching, insertion, and name mappings."""

from __future__ import annotations

import pytest

from repro.errors import ConcurrencyConflict
from repro.expr import Arith, Cmp, Col, Lit
from repro.plan import q
from repro.recycler import RecyclerGraph, match_tree


@pytest.fixture
def graph(sales_catalog):
    return RecyclerGraph(sales_catalog)


def simple_plan(alias="total"):
    return (q.scan("sales", ["product", "quantity"])
             .filter(Cmp(">", Col("quantity"), Lit(2)))
             .aggregate(keys=["product"],
                        aggs=[("sum", Col("quantity"), alias)])
             .build())


class TestExactMatching:
    def test_first_query_inserts_every_node(self, graph, sales_catalog):
        plan = simple_plan()
        result = match_tree(plan, graph, sales_catalog, query_id=1)
        assert result.inserted_count == 3
        assert result.matched_count == 0
        assert len(graph.nodes) == 3
        graph.check_invariants()

    def test_identical_query_fully_matches(self, graph, sales_catalog):
        match_tree(simple_plan(), graph, sales_catalog, query_id=1)
        result = match_tree(simple_plan(), graph, sales_catalog, query_id=2)
        assert result.inserted_count == 0
        assert result.matched_count == 3
        assert len(graph.nodes) == 3

    def test_shared_prefix_is_unified(self, graph, sales_catalog):
        match_tree(simple_plan(), graph, sales_catalog, query_id=1)
        other = (q.scan("sales", ["product", "quantity"])
                  .filter(Cmp(">", Col("quantity"), Lit(2)))
                  .aggregate(keys=["product"],
                             aggs=[("max", Col("quantity"), "mx")])
                  .build())
        result = match_tree(other, graph, sales_catalog, query_id=2)
        # scan + select shared; only the aggregate is new
        assert result.matched_count == 2
        assert result.inserted_count == 1
        assert len(graph.nodes) == 4

    def test_different_predicate_differs(self, graph, sales_catalog):
        match_tree(simple_plan(), graph, sales_catalog, query_id=1)
        other = (q.scan("sales", ["product", "quantity"])
                  .filter(Cmp(">", Col("quantity"), Lit(5)))
                  .build())
        result = match_tree(other, graph, sales_catalog, query_id=2)
        assert result.matched_count == 1  # only the scan
        assert result.inserted_count == 1

    def test_scan_column_sets_distinguish(self, graph, sales_catalog):
        match_tree(q.scan("sales", ["product"]).build(), graph,
                   sales_catalog, query_id=1)
        result = match_tree(q.scan("sales", ["quantity"]).build(), graph,
                            sales_catalog, query_id=2)
        assert result.inserted_count == 1

    def test_scan_column_order_is_significant(self, graph, sales_catalog):
        # Interior name mappings pair outputs positionally, so the scan
        # leaf must key the *ordered* column tuple — an unordered key let
        # pass-through chains above reordered scans swap names.  Sharing
        # across spellings is the plan optimizer's job (it canonicalizes
        # scan order before matching), never the matcher's.
        match_tree(q.scan("sales", ["product", "quantity"]).build(), graph,
                   sales_catalog, query_id=1)
        result = match_tree(q.scan("sales", ["quantity", "product"]).build(),
                            graph, sales_catalog, query_id=2)
        assert result.inserted_count == 1


class TestNameMappings:
    def test_alias_differences_still_match(self, graph, sales_catalog):
        match_tree(simple_plan("total"), graph, sales_catalog, query_id=1)
        result = match_tree(simple_plan("sum_qty"), graph, sales_catalog,
                            query_id=2)
        assert result.inserted_count == 0
        plan = simple_plan("sum_qty")
        result = match_tree(plan, graph, sales_catalog, query_id=3)
        match = result.of(plan)
        # The query's alias maps to the graph's unique name (@q1 suffix).
        assert match.mapping["sum_qty"] == "total@q1"

    def test_mapping_propagates_through_parents(self, graph, sales_catalog):
        def plan(alias):
            return (q.scan("sales", ["quantity", "price"])
                     .project([(alias, Arith("*", Col("quantity"),
                                             Col("price")))])
                     .filter(Cmp(">", Col(alias), Lit(5.0)))
                     .build())
        match_tree(plan("revenue"), graph, sales_catalog, query_id=1)
        result = match_tree(plan("rev2"), graph, sales_catalog, query_id=2)
        # The select's predicate references the aliased column; matching
        # must unify it through the name mapping.
        assert result.inserted_count == 0
        assert result.matched_count == 3

    def test_graph_names_are_query_unique(self, graph, sales_catalog):
        plan_a = (q.scan("sales", ["quantity"])
                   .project([("x", Arith("+", Col("quantity"), Lit(1)))])
                   .build())
        plan_b = (q.scan("sales", ["quantity"])
                   .project([("x", Arith("+", Col("quantity"), Lit(2)))])
                   .build())
        match_tree(plan_a, graph, sales_catalog, query_id=1)
        match_tree(plan_b, graph, sales_catalog, query_id=2)
        names = {n.plan.outputs[0][0] for n in graph.nodes
                 if n.op_name == "project"}
        assert names == {"x@q1", "x@q2"}


class TestJoinsAndMultiChildren:
    def join_plan(self):
        stores = (q.scan("stores", ["store_id", "city"])
                   .project([("s_id", Col("store_id")), "city"]))
        return (q.scan("sales", ["sale_id", "store_id"])
                 .join(stores, on=[("store_id", "s_id")])
                 .build())

    def test_join_matches(self, graph, sales_catalog):
        match_tree(self.join_plan(), graph, sales_catalog, query_id=1)
        result = match_tree(self.join_plan(), graph, sales_catalog,
                            query_id=2)
        assert result.inserted_count == 0
        assert result.matched_count == 4

    def test_join_key_mismatch_differs(self, graph, sales_catalog):
        match_tree(self.join_plan(), graph, sales_catalog, query_id=1)
        stores = (q.scan("stores", ["store_id", "city"])
                   .project([("s_id", Col("store_id")), "city"]))
        different = (q.scan("sales", ["sale_id", "store_id"])
                      .join(stores, on=[("sale_id", "s_id")])
                      .build())
        result = match_tree(different, graph, sales_catalog, query_id=2)
        assert result.inserted_count == 1  # the join node only


class TestUnification:
    def test_matching_is_idempotent(self, graph, sales_catalog):
        for qid in range(1, 6):
            match_tree(simple_plan(), graph, sales_catalog, query_id=qid)
        assert len(graph.nodes) == 3
        graph.check_invariants()

    def test_many_variants_linear_growth(self, graph, sales_catalog):
        for i in range(10):
            plan = (q.scan("sales", ["product", "quantity"])
                     .filter(Cmp(">", Col("quantity"), Lit(i)))
                     .build())
            match_tree(plan, graph, sales_catalog, query_id=i + 1)
        # one shared scan + ten selections
        assert len(graph.nodes) == 11


class TestOptimisticConcurrency:
    def test_version_conflict_raises(self, graph, sales_catalog):
        plan = q.scan("sales", ["product"]).build()
        result = match_tree(plan, graph, sales_catalog, query_id=1)
        leaf = result.of(plan).graph_node
        select = (q.scan("sales", ["product"])
                   .filter(Cmp("=", Col("product"), Lit("apple")))
                   .build())
        stale_version = leaf.version
        # Simulate a concurrent insertion bumping the leaf's version.
        other = (q.scan("sales", ["product"])
                  .filter(Cmp("=", Col("product"), Lit("pear")))
                  .build())
        match_tree(other, graph, sales_catalog, query_id=2)
        assert leaf.version != stale_version
        with pytest.raises(ConcurrencyConflict):
            graph.insert_node(select, [leaf], {"product": "product"},
                              {}, query_id=3,
                              expected_versions=[stale_version])

    def test_match_tree_retries_after_conflict(self, graph, sales_catalog,
                                               monkeypatch):
        # Force one conflict on the first insert attempt, then succeed.
        original = graph.insert_node
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConcurrencyConflict("synthetic")
            return original(*args, **kwargs)

        monkeypatch.setattr(graph, "insert_node", flaky)
        plan = q.scan("sales", ["product"]).build()
        result = match_tree(plan, graph, sales_catalog, query_id=1)
        assert result.inserted_count == 1
        assert calls["n"] == 2
