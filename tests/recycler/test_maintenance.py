"""Tests for background maintenance (MaintenanceManager / Database)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64


@pytest.fixture
def db_factory():
    def make(**config_kwargs) -> Database:
        rng = np.random.default_rng(3)
        n = 5000
        db = Database(RecyclerConfig(mode="spec", **config_kwargs))
        db.register_table("t", Table(
            Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
            {"g": rng.integers(0, 6, n), "v": rng.uniform(0, 1, n)}))
        return db
    return make


def distinct_queries(n):
    return [f"SELECT g, sum(v) AS s FROM t WHERE v > {i / (n + 1):.6f}"
            f" GROUP BY g" for i in range(n)]


class TestTriggers:
    def test_size_trigger_truncates(self, db_factory):
        # speculation never accepts: nothing materializes, so idle
        # subtrees are actually truncatable
        db = db_factory(maintenance_graph_node_limit=10,
                        maintenance_idle_seconds=None,
                        truncate_min_idle_events=2,
                        speculation_min_cost=1e18)
        for sql in distinct_queries(12):
            db.sql(sql)
        assert len(db.recycler.graph.nodes) > 10
        outcome = db.maintain()
        assert outcome["size_trigger"] == 1
        assert outcome["nodes_truncated"] > 0
        db.recycler.graph.check_invariants()
        db.close()

    def test_size_trigger_idle_below_limit(self, db_factory):
        db = db_factory(maintenance_graph_node_limit=10_000,
                        maintenance_idle_seconds=None)
        db.sql(distinct_queries(1)[0])
        outcome = db.maintain()
        assert outcome["size_trigger"] == 0
        assert outcome["nodes_truncated"] == 0
        db.close()

    def test_idle_trigger_truncates_and_refreshes(self, db_factory):
        db = db_factory(maintenance_idle_seconds=0.0,
                        maintenance_graph_node_limit=None,
                        truncate_min_idle_events=0)
        for sql in distinct_queries(6):
            db.sql(sql)
        cached_before = len(db.recycler.cache)
        outcome = db.maintain()
        assert outcome["idle_trigger"] == 1
        # cached results are pinned; their benefits were recomputed
        assert len(db.recycler.cache) == cached_before
        assert outcome["benefits_refreshed"] == cached_before
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        db.close()

    def test_materialized_and_recent_survive(self, db_factory):
        db = db_factory(maintenance_idle_seconds=0.0,
                        maintenance_graph_node_limit=None,
                        truncate_min_idle_events=0)
        queries = distinct_queries(4)
        for sql in queries:
            db.sql(sql)
        db.maintain()
        # every cached result is still matchable: re-issues reuse
        for sql in queries:
            record = db.sql(sql).record
            assert record is not None
        summary = db.summary()
        assert summary["cache"].reuses > 0
        db.close()


class TestBackgroundThread:
    def test_thread_runs_and_stops_cleanly(self, db_factory):
        db = db_factory(maintenance_interval_seconds=0.05,
                        maintenance_idle_seconds=0.0,
                        maintenance_graph_node_limit=None,
                        truncate_min_idle_events=0)
        assert db.maintenance.running
        for sql in distinct_queries(5):
            db.sql(sql)
        deadline = time.monotonic() + 5.0
        while db.maintenance.stats.cycles == 0 and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        assert db.maintenance.stats.cycles > 0
        db.close()
        assert not db.maintenance.running
        db.close()  # idempotent

    def test_disabled_by_default(self, db_factory):
        db = db_factory()
        assert not db.maintenance.running
        db.close()

    def test_database_context_manager(self, db_factory):
        with db_factory(maintenance_interval_seconds=0.05) as db:
            assert db.maintenance.running
        assert db.closed
        assert not db.maintenance.running

    def test_wake_forces_cycle(self, db_factory):
        db = db_factory(maintenance_interval_seconds=30.0,
                        maintenance_idle_seconds=None,
                        maintenance_graph_node_limit=None)
        assert db.maintenance.running
        before = db.maintenance.stats.cycles
        db.maintenance.wake()
        deadline = time.monotonic() + 5.0
        while db.maintenance.stats.cycles == before and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        assert db.maintenance.stats.cycles > before
        db.close()


class TestStats:
    def test_summary_exposes_maintenance_stats(self, db_factory):
        db = db_factory(maintenance_graph_node_limit=10,
                        maintenance_idle_seconds=None,
                        truncate_min_idle_events=2,
                        speculation_min_cost=1e18)
        for sql in distinct_queries(12):
            db.sql(sql)
        db.maintain()
        stats = db.summary()["maintenance"]
        assert stats["cycles"] >= 1
        assert stats["size_triggers"] >= 1
        assert stats["truncate_runs"] >= 1
        assert stats["nodes_truncated"] > 0
        # the truncated nodes carry measured result sizes, so the
        # bytes-reclaimed counter moves too
        assert stats["bytes_reclaimed"] > 0
        db.close()

    def test_idle_cycle_counts_refreshes(self, db_factory):
        db = db_factory(maintenance_idle_seconds=0.0,
                        maintenance_graph_node_limit=None)
        db.sql(distinct_queries(1)[0])
        db.maintain()
        stats = db.summary()["maintenance"]
        assert stats["idle_triggers"] >= 1
        assert stats["benefits_refreshed"] >= 0
        db.close()

    def test_no_trigger_counts_no_truncate_run(self, db_factory):
        db = db_factory(maintenance_graph_node_limit=10_000,
                        maintenance_idle_seconds=None)
        db.sql(distinct_queries(1)[0])
        db.maintain()
        stats = db.summary()["maintenance"]
        assert stats["cycles"] == 1
        assert stats["truncate_runs"] == 0
        assert stats["bytes_reclaimed"] == 0
        db.close()


class TestShutdownCancelsTruncation:
    def test_stop_flag_aborts_truncate(self, db_factory):
        db = db_factory(maintenance_graph_node_limit=10,
                        maintenance_idle_seconds=None,
                        truncate_min_idle_events=2,
                        speculation_min_cost=1e18)
        for sql in distinct_queries(12):
            db.sql(sql)
        nodes_before = len(db.recycler.graph.nodes)
        assert nodes_before > 10
        # simulate shutdown arriving mid-cycle (the background loop
        # passes its stop flag): the cycle's truncations abandon
        # promptly, graph untouched
        outcome = db.maintenance.run_once(stop=lambda: True)
        assert outcome["nodes_truncated"] == 0
        assert len(db.recycler.graph.nodes) == nodes_before
        db.close()

    def test_explicit_maintain_still_works_after_close(self, db_factory):
        # close() stops the background thread, but Database.maintain()
        # stays functional — open sessions stay usable by contract
        db = db_factory(maintenance_graph_node_limit=10,
                        maintenance_idle_seconds=None,
                        truncate_min_idle_events=2,
                        speculation_min_cost=1e18)
        for sql in distinct_queries(12):
            db.sql(sql)
        db.close()
        outcome = db.maintain()
        assert outcome["size_trigger"] == 1
        assert outcome["nodes_truncated"] > 0

    def test_graph_truncate_stop_callable(self, db_factory):
        db = db_factory(maintenance_graph_node_limit=10,
                        maintenance_idle_seconds=None,
                        truncate_min_idle_events=2,
                        speculation_min_cost=1e18)
        for sql in distinct_queries(12):
            db.sql(sql)
        graph = db.recycler.graph
        before = len(graph.nodes)
        assert graph.truncate(min_idle_events=0, stop=lambda: True) == 0
        assert len(graph.nodes) == before
        # the same truncation goes through once stop stays clear
        stats: dict = {}
        removed = graph.truncate(min_idle_events=0, stop=lambda: False,
                                 stats=stats)
        assert removed > 0
        assert stats.get("bytes_reclaimed", 0) >= 0
        graph.check_invariants()
        db.close()


class TestPinning:
    def test_inflight_nodes_survive_truncation(self, db_factory):
        db = db_factory(maintenance_idle_seconds=0.0,
                        maintenance_graph_node_limit=None,
                        truncate_min_idle_events=0)
        recycler = db.recycler
        plan = db.plan(distinct_queries(1)[0])
        prepared = recycler.prepare(plan, producer_token="pinned")
        assert len(recycler.inflight) >= 1
        producing = recycler.inflight.active_nodes()
        # age the graph hard, then maintain: in-flight nodes must stay
        for _ in range(20):
            recycler.graph.tick()
        db.maintain()
        alive = {node.node_id for node in recycler.graph.nodes}
        assert producing <= alive
        recycler.abandon(prepared)
        db.close()
