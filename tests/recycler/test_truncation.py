"""Tests for recycler-graph truncation (paper Section II)."""

from __future__ import annotations

from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig, RecyclerGraph, \
    match_tree


def select_plan(threshold):
    return (q.scan("sales", ["sale_id", "quantity"])
             .filter(Cmp(">", Col("quantity"), Lit(threshold)))
             .build())


class TestTruncation:
    def test_idle_subtrees_removed(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog)
        for i in range(10):
            graph.tick()
            match_tree(select_plan(i), graph, sales_catalog,
                       query_id=i + 1)
        before = len(graph.nodes)
        # make five more events pass, touching only one plan
        for _ in range(5):
            graph.tick()
            match_tree(select_plan(0), graph, sales_catalog,
                       query_id=99)
        removed = graph.truncate(min_idle_events=4)
        assert removed > 0
        assert len(graph.nodes) < before
        graph.check_invariants()

    def test_recently_accessed_kept(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog)
        graph.tick()
        result = match_tree(select_plan(1), graph, sales_catalog,
                            query_id=1)
        assert graph.truncate(min_idle_events=100) == 0
        assert len(graph.nodes) == 2

    def test_materialized_nodes_survive(self, sales_catalog):
        recycler = Recycler(sales_catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=0.0))
        recycler.execute(select_plan(1))
        assert len(recycler.cache) >= 1
        for _ in range(50):
            recycler.graph.tick()
        removed = recycler.graph.truncate(min_idle_events=10)
        materialized = [n for n in recycler.graph.nodes
                        if n.is_materialized]
        assert materialized  # cached results are never truncated away
        recycler.graph.check_invariants()

    def test_kept_subtree_stays_matchable(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog)
        for i in range(6):
            graph.tick()
            match_tree(select_plan(i), graph, sales_catalog,
                       query_id=i + 1)
        for _ in range(10):
            graph.tick()
            match_tree(select_plan(0), graph, sales_catalog,
                       query_id=50)
        graph.truncate(min_idle_events=5)
        graph.tick()
        # the surviving plan still matches exactly (no re-insertion)
        result = match_tree(select_plan(0), graph, sales_catalog,
                            query_id=51)
        assert result.inserted_count == 0
        # a truncated plan re-inserts cleanly
        result = match_tree(select_plan(3), graph, sales_catalog,
                            query_id=52)
        assert result.inserted_count == 1
        graph.check_invariants()
