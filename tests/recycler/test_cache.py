"""Tests for the recycler cache: groups, admission, replacement, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import INT64, Table
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import (BenefitModel, RecyclerCache, RecyclerGraph,
                            match_tree)


def table_of_bytes(nbytes: int) -> Table:
    rows = max(nbytes // 8, 1)
    return Table(Table.from_rows(["x"], [INT64], []).schema,
                 {"x": np.arange(rows, dtype=np.int64)})


@pytest.fixture
def env(sales_catalog):
    graph = RecyclerGraph(sales_catalog, alpha=1.0)
    model = BenefitModel(graph)

    counter = [0]

    def make_node(refs: float, bcost: float):
        counter[0] += 1
        plan = (q.scan("sales", ["quantity"])
                 .filter(Cmp(">", Col("quantity"), Lit(counter[0])))
                 .build())
        match = match_tree(plan, graph, sales_catalog,
                           query_id=counter[0])
        node = match.of(plan).graph_node
        node.refs_raw = refs
        node.bcost = bcost
        node.exec_count = 1
        return node

    return graph, model, make_node


class TestGrouping:
    def test_group_of_is_log2(self):
        assert RecyclerCache.group_of(1) == 1
        assert RecyclerCache.group_of(1024) == 11
        assert RecyclerCache.group_of(1025) == 11
        assert RecyclerCache.group_of(2048) == 12

    def test_entries_sorted_by_benefit_within_group(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        for refs in (5.0, 1.0, 3.0):
            node = make_node(refs=refs, bcost=1000.0)
            assert cache.admit(node, table_of_bytes(1000))
        cache.check_invariants()
        group = cache._groups[RecyclerCache.group_of(1000)]
        assert [e.benefit for e in group] == sorted(
            e.benefit for e in group)


class TestAdmission:
    def test_admits_while_space(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=10000)
        for _ in range(3):
            node = make_node(refs=1.0, bcost=100.0)
            assert cache.admit(node, table_of_bytes(3000))
        assert cache.used == 3 * 3000 - 3 * 3000 % 8 or cache.used > 0
        cache.check_invariants()

    def test_rejects_oversized_result(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=1000)
        node = make_node(refs=10.0, bcost=1e6)
        assert not cache.admit(node, table_of_bytes(5000))
        assert cache.counters.rejected == 1

    def test_duplicate_admit_is_noop(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        node = make_node(refs=1.0, bcost=100.0)
        table = table_of_bytes(100)
        assert cache.admit(node, table)
        assert cache.admit(node, table)
        assert len(cache) == 1


class TestReplacement:
    def test_evicts_lower_benefit_set(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=2048)
        low = make_node(refs=1.0, bcost=100.0)      # low benefit
        assert cache.admit(low, table_of_bytes(1500))
        high = make_node(refs=50.0, bcost=50000.0)  # high benefit
        assert cache.admit(high, table_of_bytes(1500))
        assert low.entry is None          # evicted
        assert high.entry is not None
        assert cache.counters.evicted == 1
        cache.check_invariants()

    def test_keeps_higher_benefit_residents(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=2048)
        resident = make_node(refs=50.0, bcost=50000.0)
        assert cache.admit(resident, table_of_bytes(1500))
        newcomer = make_node(refs=1.0, bcost=100.0)
        assert not cache.admit(newcomer, table_of_bytes(1500))
        assert resident.entry is not None
        cache.check_invariants()

    def test_replacement_only_scans_same_group_by_default(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=4096)
        # Fill the cache with small (different-group) low-benefit entries.
        for _ in range(8):
            node = make_node(refs=0.1, bcost=10.0)
            cache.admit(node, table_of_bytes(500))
        big = make_node(refs=100.0, bcost=100000.0)
        # Big result's own (empty) group cannot free enough space.
        assert not cache.admit(big, table_of_bytes(3000))

    def test_scan_all_groups_extension(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=4096, scan_all_groups=True)
        for _ in range(8):
            node = make_node(refs=0.1, bcost=10.0)
            cache.admit(node, table_of_bytes(500))
        big = make_node(refs=100.0, bcost=100000.0)
        assert cache.admit(big, table_of_bytes(3000))
        cache.check_invariants()

    def test_would_admit_is_side_effect_free(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=2048)
        low = make_node(refs=1.0, bcost=100.0)
        cache.admit(low, table_of_bytes(1500))
        before = len(cache)
        assert cache.would_admit(benefit=10.0, size=1500)
        assert not cache.would_admit(benefit=1e-9, size=1500)
        assert len(cache) == before
        assert low.entry is not None


class TestEvictionAndMaintenance:
    def test_flush_evicts_everything(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        for _ in range(4):
            cache.admit(make_node(refs=1.0, bcost=100.0),
                        table_of_bytes(100))
        assert cache.flush() == 4
        assert len(cache) == 0
        assert cache.used == 0
        cache.check_invariants()

    def test_invalidate_table(self, env, sales_catalog):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        sales_node = make_node(refs=1.0, bcost=100.0)
        cache.admit(sales_node, table_of_bytes(100))
        stores_plan = q.scan("stores", ["city"]).build()
        match = match_tree(stores_plan, graph, sales_catalog, query_id=99)
        stores_node = match.of(stores_plan).graph_node
        stores_node.bcost, stores_node.exec_count = 10.0, 1
        cache.admit(stores_node, table_of_bytes(100))
        assert cache.invalidate_table("sales") == 1
        assert sales_node.entry is None
        assert stores_node.entry is not None

    def test_note_reuse_updates_counters(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        node = make_node(refs=1.0, bcost=100.0)
        cache.admit(node, table_of_bytes(100))
        cache.note_reuse(node.entry)
        assert cache.counters.reuses == 1
        assert node.entry.reuse_count == 1

    def test_refresh_repositions_entry(self, env):
        graph, model, make_node = env
        cache = RecyclerCache(model, capacity=None)
        a = make_node(refs=1.0, bcost=1000.0)
        b = make_node(refs=5.0, bcost=1000.0)
        cache.admit(a, table_of_bytes(1000))
        cache.admit(b, table_of_bytes(1000))
        group = cache._groups[RecyclerCache.group_of(1000)]
        assert group[0].node is a
        graph.add_refs(a, 100.0)
        cache.refresh(a)
        group = cache._groups[RecyclerCache.group_of(1000)]
        assert group[-1].node is a
        cache.check_invariants()
