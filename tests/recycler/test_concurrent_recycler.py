"""Real-threads recycler behaviour: blocking in-flight sharing, OCC
insertion conflicts, and cache consistency under concurrent invalidation.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema
from repro.errors import ConcurrencyConflict, ExecutionError
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig as RC
from repro.recycler.matching import match_tree


def make_db(n=20000, seed=4, mode="spec", **config) -> Database:
    rng = np.random.default_rng(seed)
    db = Database(RecyclerConfig(mode=mode, **config))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    return db


def agg_plan(threshold=0.5):
    return (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(threshold)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "s")])
             .build())


class TestBlockingInFlight:
    def test_waiter_blocks_then_reuses(self):
        """A session matching an in-flight node stalls until the
        producer's store completes, then reuses the cached entry."""
        db = Database(RecyclerConfig(mode="spec"))
        entered = threading.Event()
        gate = threading.Event()
        rows = [(i, float(i) * 0.5) for i in range(256)]

        def slow_source(tag):
            entered.set()
            assert gate.wait(timeout=10), "test gate never opened"
            return Table.from_rows(["k", "x"], [INT64, FLOAT64], rows)

        db.register_function(
            "slow_source", slow_source,
            Schema(["k", "x"], [INT64, FLOAT64]), invocation_cost=50000.0)
        sql = ("SELECT k, sum(x) AS s FROM slow_source(1)"
               " GROUP BY k ORDER BY k")

        outcome: dict[str, object] = {}

        def produce():
            with db.connect() as session:
                outcome["producer"] = session.sql(sql)
                outcome["producer_record"] = session.records[-1]

        def wait_and_reuse():
            entered.wait(timeout=10)
            with db.connect() as session:
                outcome["waiter"] = session.sql(sql)
                outcome["waiter_record"] = session.records[-1]

        producer = threading.Thread(target=produce)
        waiter = threading.Thread(target=wait_and_reuse)
        producer.start()
        waiter.start()
        # the producer is inside the table function; the waiter must be
        # blocked on the in-flight registration, not finished.
        assert entered.wait(timeout=10)
        waiter.join(timeout=0.3)
        assert waiter.is_alive(), "waiter finished without stalling"
        gate.set()
        producer.join(timeout=10)
        waiter.join(timeout=10)
        assert not producer.is_alive() and not waiter.is_alive()

        producer_record = outcome["producer_record"]
        waiter_record = outcome["waiter_record"]
        assert producer_record.num_materialized >= 1
        assert waiter_record.stall_seconds > 0, \
            "waiter did not block on the in-flight materialization"
        assert waiter_record.num_reused >= 1, \
            "waiter did not reuse the awaited result"
        assert outcome["waiter"].table.to_rows() == \
            outcome["producer"].table.to_rows()
        assert len(db.recycler.inflight) == 0

    def test_waiter_released_when_producer_fails(self):
        """A crashed producer must not leave waiters stalled forever:
        abandon() drops its registrations."""
        db = Database(RecyclerConfig(mode="spec"))
        entered = threading.Event()

        def failing_source(tag):
            entered.set()
            raise ExecutionError("storage exploded")

        db.register_function(
            "failing_source", failing_source,
            Schema(["k", "x"], [INT64, FLOAT64]), invocation_cost=50000.0)
        sql = "SELECT k, sum(x) AS s FROM failing_source(1) GROUP BY k"

        def produce():
            with db.connect() as session:
                with pytest.raises(ExecutionError):
                    session.sql(sql)

        producer = threading.Thread(target=produce)
        producer.start()
        producer.join(timeout=10)
        assert not producer.is_alive()
        # all in-flight registrations were abandoned with the failure
        assert len(db.recycler.inflight) == 0


class TestOptimisticInsertion:
    """The Section III-B backwards-validation restart, deterministically:
    a 'concurrent' insert is injected between version read and insert."""

    def _recycler(self) -> tuple[Recycler, Database]:
        db = make_db()
        return db.recycler, db

    def test_interior_conflict_retries_and_unifies(self, monkeypatch):
        recycler, db = self._recycler()
        real_insert = recycler.graph.insert_node
        raced = {"done": False}

        def racing_insert(query_node, graph_children, input_mapping,
                          assigned_mapping, query_id,
                          expected_versions=None,
                          expected_leaf_version=None, catalog=None):
            if not raced["done"] and graph_children:
                raced["done"] = True
                # a concurrent session inserts the same node first …
                real_insert(query_node, graph_children, input_mapping,
                            dict(assigned_mapping), 999)
                # … so this insert's validation must now conflict.
            return real_insert(query_node, graph_children, input_mapping,
                               assigned_mapping, query_id,
                               expected_versions, expected_leaf_version,
                               catalog=catalog)

        monkeypatch.setattr(recycler.graph, "insert_node", racing_insert)
        matches = match_tree(agg_plan(), recycler.graph, db.catalog,
                             query_id=1)
        assert matches.conflicts >= 1
        self._assert_no_duplicates(recycler)

    def test_leaf_conflict_retries_and_unifies(self, monkeypatch):
        recycler, db = self._recycler()
        real_insert = recycler.graph.insert_node
        raced = {"done": False}

        def racing_insert(query_node, graph_children, input_mapping,
                          assigned_mapping, query_id,
                          expected_versions=None,
                          expected_leaf_version=None, catalog=None):
            if not raced["done"] and not graph_children:
                raced["done"] = True
                real_insert(query_node, graph_children, input_mapping,
                            dict(assigned_mapping), 999)
            return real_insert(query_node, graph_children, input_mapping,
                               assigned_mapping, query_id,
                               expected_versions, expected_leaf_version,
                               catalog=catalog)

        monkeypatch.setattr(recycler.graph, "insert_node", racing_insert)
        matches = match_tree(agg_plan(), recycler.graph, db.catalog,
                             query_id=1)
        assert matches.conflicts >= 1
        self._assert_no_duplicates(recycler)

    def test_stale_version_raises(self):
        recycler, db = self._recycler()
        recycler.execute(agg_plan(), label="seed")
        leaf = next(n for n in recycler.graph.nodes if not n.children)
        parent = next(n for n in recycler.graph.nodes
                      if n.children == [leaf])
        with pytest.raises(ConcurrencyConflict):
            recycler.graph.insert_node(
                parent.plan, [leaf], {}, {}, query_id=7,
                expected_versions=[leaf.version - 1])

    def test_threaded_matching_never_duplicates(self):
        """Many threads racing to insert the same fresh plans must unify
        on one graph node per operator."""
        db = make_db()
        plans = [f"SELECT g, sum(v) AS s FROM t WHERE v > 0.{d}"
                 f" GROUP BY g" for d in range(1, 8)]
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def worker():
            try:
                session = db.connect()
                barrier.wait(timeout=10)
                for sql in plans:
                    session.sql(sql)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        self._assert_no_duplicates(db.recycler)
        db.recycler.graph.check_invariants()

    @staticmethod
    def _assert_no_duplicates(recycler: Recycler) -> None:
        seen: set[tuple] = set()
        for node in recycler.graph.nodes:
            key = (node.op_name, node.params,
                   tuple(c.node_id for c in node.children))
            assert key not in seen, f"duplicate graph node {node!r}"
            seen.add(key)


class TestConcurrentInvalidation:
    def test_invalidate_during_execution_keeps_accounting(self):
        """cache.used must equal the sum of entry sizes no matter how
        invalidations interleave with admissions."""
        db = make_db(n=30000, cache_capacity=8 * 1024 * 1024)
        queries = [f"SELECT g, sum(v) AS s FROM t WHERE v > 0.{d}"
                   f" GROUP BY g" for d in range(1, 10)] * 4
        stop = threading.Event()
        errors: list[BaseException] = []

        def invalidator():
            try:
                while not stop.is_set():
                    db.invalidate_table("t")
                    cache = db.recycler.cache
                    cache.check_invariants()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        chaos = threading.Thread(target=invalidator)
        chaos.start()
        try:
            with db.pool(workers=4) as pool:
                results = pool.run(queries)
        finally:
            stop.set()
            chaos.join(timeout=10)
        assert not errors
        cache = db.recycler.cache
        cache.check_invariants()
        assert cache.used == sum(e.size for e in cache.entries())
        # results stay correct regardless of eviction interleavings
        expected = make_db(n=30000).sql(queries[0]).table.to_rows()
        assert results[0].table.to_rows() == expected


def test_config_exposes_wait_timeout():
    assert RC().inflight_wait_timeout == 30.0
    assert RC(inflight_wait_timeout=None).inflight_wait_timeout is None
