"""Tests for the proactive strategies (Section IV-B)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import (BinningSpec, Catalog, DATE, FLOAT64, INT64,
                            STRING, Table, date_to_days)
from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.plan.logical import Aggregate, Limit, Select, TopN, UnionAll
from repro.recycler import ProactiveRewriter, Recycler, RecyclerConfig


@pytest.fixture
def lineitem_catalog() -> Catalog:
    """A miniature lineitem-like table with dates and low-card columns."""
    rng = np.random.default_rng(5)
    n = 20000
    catalog = Catalog()
    start = date_to_days("1995-01-01")
    end = date_to_days("1998-12-01")
    schema = Table.from_rows(
        ["shipdate", "shipmode", "returnflag", "quantity", "price"],
        [DATE, STRING, STRING, INT64, FLOAT64], []).schema
    table = Table(schema, {
        "shipdate": rng.integers(start, end, n).astype(np.int32),
        "shipmode": rng.choice(
            np.array(["AIR", "RAIL", "SHIP", "TRUCK"], dtype=object), n),
        "returnflag": rng.choice(np.array(["A", "N", "R"], dtype=object),
                                 n),
        "quantity": rng.integers(1, 50, n),
        "price": rng.uniform(1.0, 100.0, n),
    })
    catalog.register_table("items", table)
    catalog.register_binning("items", BinningSpec("shipdate", "year"))
    return catalog


def config(**kw):
    defaults = dict(mode="pa", proactive_benefit_steered=False,
                    cache_capacity=None)
    defaults.update(kw)
    return RecyclerConfig(**defaults)


class TestTopNStrategy:
    def test_rewrite_shape(self, lineitem_catalog):
        rewriter = ProactiveRewriter(lineitem_catalog, config())
        plan = (q.scan("items", ["shipdate", "price"])
                 .top_n([("price", False)], limit=10)
                 .build())
        result = rewriter.apply(plan)
        assert [a.strategy for a in result.applications] == ["topn"]
        assert isinstance(result.plan, Limit)
        inner = result.plan.children[0]
        assert isinstance(inner, TopN)
        assert inner.limit == 10000

    def test_large_limits_untouched(self, lineitem_catalog):
        rewriter = ProactiveRewriter(lineitem_catalog, config())
        plan = (q.scan("items", ["price"])
                 .top_n([("price", False)], limit=20000)
                 .build())
        result = rewriter.apply(plan)
        assert not result.applications

    def test_correctness_and_reuse(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config())
        plan10 = (q.scan("items", ["shipdate", "price"])
                   .top_n([("price", False)], limit=10)
                   .build())
        expected10 = execute_plan(plan10, lineitem_catalog).table
        first = recycler.execute(plan10)
        assert first.table.to_rows() == expected10.to_rows()
        # A different N over the same query reuses the proactive topN via
        # exact matching of the inner node.
        plan25 = (q.scan("items", ["shipdate", "price"])
                   .top_n([("price", False)], limit=25)
                   .build())
        expected25 = execute_plan(plan25, lineitem_catalog).table
        second = recycler.execute(plan25)
        assert second.table.to_rows() == expected25.to_rows()
        assert second.stats.num_reused >= 1
        assert second.stats.total_cost < 0.1 * first.stats.total_cost


class TestCubeWithSelections:
    def plan(self, mode="AIR"):
        return (q.scan("items", ["shipmode", "returnflag", "quantity"])
                 .filter(Cmp("=", Col("shipmode"), Lit(mode)))
                 .aggregate(keys=["returnflag"],
                            aggs=[("sum", Col("quantity"), "sum_qty"),
                                  ("avg", Col("quantity"), "avg_qty")])
                 .build())

    def test_rewrite_shape(self, lineitem_catalog):
        rewriter = ProactiveRewriter(lineitem_catalog, config())
        result = rewriter.apply(self.plan())
        assert [a.strategy for a in result.applications] == ["cube_select"]
        # The selection must now sit above the (extended) aggregate.
        aggregates = [n for n in result.plan.walk()
                      if isinstance(n, Aggregate)]
        assert len(aggregates) == 2
        cube = aggregates[0]
        assert {name for name, _ in cube.group_keys} == \
            {"returnflag", "shipmode"}
        selects = [n for n in result.plan.walk() if isinstance(n, Select)]
        assert any(isinstance(s.children[0], Aggregate) for s in selects)

    def test_high_cardinality_not_rewritten(self, lineitem_catalog):
        rewriter = ProactiveRewriter(lineitem_catalog,
                                     config(proactive_group_threshold=2))
        result = rewriter.apply(self.plan())
        assert not result.applications

    def test_correctness(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config())
        for mode in ("AIR", "RAIL", "AIR", "SHIP"):
            plan = self.plan(mode)
            expected = execute_plan(plan, lineitem_catalog).table
            result = recycler.execute(self.plan(mode))
            assert result.table.sorted_rows() == expected.sorted_rows(), \
                mode

    def test_cube_shared_across_predicates(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config())
        first = recycler.execute(self.plan("AIR"))
        second = recycler.execute(self.plan("RAIL"))
        # Different predicate, but the cube is shared: big cost drop.
        assert second.stats.num_reused >= 1
        assert second.stats.total_cost < 0.2 * first.stats.total_cost


class TestCubeWithBinning:
    def plan(self, hi="1998-03-01"):
        return (q.scan("items", ["shipdate", "returnflag", "quantity"])
                 .filter(Cmp("<=", Col("shipdate"), Lit.date(hi)))
                 .aggregate(keys=["returnflag"],
                            aggs=[("sum", Col("quantity"), "sum_qty"),
                                  ("count_star", None, "n")])
                 .build())

    def test_rewrite_shape(self, lineitem_catalog):
        rewriter = ProactiveRewriter(lineitem_catalog, config())
        result = rewriter.apply(self.plan())
        assert [a.strategy for a in result.applications] == \
            ["cube_binning"]
        unions = [n for n in result.plan.walk()
                  if isinstance(n, UnionAll)]
        assert len(unions) == 1  # contained-bins branch + residual branch

    def test_correctness(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config())
        for hi in ("1998-03-01", "1997-09-15", "1998-03-01"):
            plan = self.plan(hi)
            expected = execute_plan(plan, lineitem_catalog).table
            result = recycler.execute(self.plan(hi))
            got = result.table.sorted_rows()
            want = expected.sorted_rows()
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g[0] == w[0]
                assert g[1] == pytest.approx(w[1])
                assert g[2] == w[2]

    def test_binned_cube_shared_across_ranges(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config())
        first = recycler.execute(self.plan("1998-03-01"))
        second = recycler.execute(self.plan("1997-06-30"))
        # The year-binned cube is shared; only the residual days differ.
        assert second.stats.num_reused >= 1
        assert second.stats.total_cost < 0.6 * first.stats.total_cost

    def test_no_binning_spec_no_rewrite(self, lineitem_catalog):
        lineitem_catalog.table_entry("items").binnings.clear()
        rewriter = ProactiveRewriter(lineitem_catalog, config())
        result = rewriter.apply(self.plan())
        assert not result.applications


class TestBenefitSteering:
    def test_steered_mode_defers_then_fires(self, lineitem_catalog):
        recycler = Recycler(lineitem_catalog, config(
            proactive_benefit_steered=True))
        plan = (q.scan("items", ["shipmode", "returnflag", "quantity"])
                 .filter(Cmp("=", Col("shipmode"), Lit("AIR")))
                 .aggregate(keys=["returnflag"],
                            aggs=[("sum", Col("quantity"), "s")])
                 .build())

        def fresh():
            return (q.scan("items",
                           ["shipmode", "returnflag", "quantity"])
                     .filter(Cmp("=", Col("shipmode"), Lit("AIR")))
                     .aggregate(keys=["returnflag"],
                                aggs=[("sum", Col("quantity"), "s")])
                     .build())

        p1 = recycler.prepare(fresh())
        assert not p1.proactive_executed  # anchor never seen: deferred
        result = execute_plan(p1.executed_plan, lineitem_catalog,
                              stores=p1.stores)
        recycler.finalize(p1, result.stats)
        p2 = recycler.prepare(fresh())
        # Second occurrence: the anchor has references now.
        assert p2.proactive_executed
