"""Tests for the benefit metric: Eq. 1-5 and Algorithm 2.

Several tests rebuild the paper's Figure 3 example graph:

    root over {pi3, pi4 over sigma4 over sigma3; pi5 over sigma4; ...}

simplified to a chain  scan -> sigma3 -> sigma4 -> {pi3, pi4, pi5}
with the reference counts used in the paper's worked example:
h(sigma3)=5, h(sigma4)=5, h(pi5)=2.
"""

from __future__ import annotations

import pytest

from repro.columnar import Table
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import (BenefitModel, RecyclerCache, RecyclerGraph,
                            match_tree)


def build_chain(graph, catalog):
    """scan -> select(>1) -> select2(>2) -> three projections."""
    base = (q.scan("sales", ["product", "quantity"])
             .filter(Cmp(">", Col("quantity"), Lit(1)))
             .filter(Cmp(">", Col("quantity"), Lit(2))))
    plans = {
        "pi3": base.project([("a", Col("product"))]).build(),
        "pi4": base.project([("b", Col("quantity"))]).build(),
        "pi5": base.project([("c", Col("product")),
                             ("d", Col("quantity"))]).build(),
    }
    matches = {}
    for i, (name, plan) in enumerate(plans.items()):
        matches[name] = match_tree(plan, graph, catalog, query_id=i + 1)
    nodes = {}
    for name, plan in plans.items():
        nodes[name] = matches[name].of(plan).graph_node
    # shared chain nodes, reachable from any projection
    nodes["sigma4"] = nodes["pi3"].children[0]
    nodes["sigma3"] = nodes["sigma4"].children[0]
    nodes["scan"] = nodes["sigma3"].children[0]
    return nodes


def tiny_table():
    from repro.columnar import INT64
    return Table.from_rows(["x"], [INT64], [(1,), (2,)])


@pytest.fixture
def setup(sales_catalog):
    graph = RecyclerGraph(sales_catalog, alpha=1.0)  # no aging here
    nodes = build_chain(graph, sales_catalog)
    model = BenefitModel(graph)
    cache = RecyclerCache(model, capacity=None)
    # Paper Fig. 3-style annotations.
    nodes["sigma3"].refs_raw = 5.0
    nodes["sigma4"].refs_raw = 5.0
    nodes["pi5"].refs_raw = 2.0
    nodes["pi3"].refs_raw = 1.0
    nodes["pi4"].refs_raw = 0.0
    for name, (bcost, size) in {
        "scan": (40.0, 64000), "sigma3": (80.0, 32000),
        "sigma4": (150.0, 64000), "pi3": (80.0, 32000),
        "pi4": (110.0, 32000), "pi5": (160.0, 64000),
    }.items():
        nodes[name].bcost = bcost
        nodes[name].size_bytes = size
        nodes[name].rows = 10
        nodes[name].exec_count = 1
    return graph, model, cache, nodes


class TestTrueCost:
    def test_true_cost_without_dmds(self, setup):
        _, model, _, nodes = setup
        assert model.true_cost(nodes["pi5"]) == pytest.approx(160.0)

    def test_true_cost_subtracts_dmds(self, setup):
        _, model, cache, nodes = setup
        cache.admit(nodes["sigma4"], tiny_table())
        # Eq. 2: cost(pi5) = bcost(pi5) - bcost(sigma4)
        assert model.true_cost(nodes["pi5"]) == pytest.approx(160.0 - 150.0)

    def test_direct_dmd_shadows_deeper(self, setup):
        _, model, cache, nodes = setup
        cache.admit(nodes["sigma3"], tiny_table())
        cache.admit(nodes["sigma4"], tiny_table())
        # Only the *direct* materialized descendant counts.
        assert model.true_cost(nodes["pi5"]) == pytest.approx(10.0)

    def test_true_cost_clamped_at_zero(self, setup):
        _, model, cache, nodes = setup
        nodes["sigma4"].bcost = 1000.0
        cache.admit(nodes["sigma4"], tiny_table())
        assert model.true_cost(nodes["pi5"]) == 0.0


class TestBenefitFormula:
    def test_eq1(self, setup):
        _, model, _, nodes = setup
        expected = 150.0 * 5.0 / 64000
        assert model.benefit(nodes["sigma4"]) == pytest.approx(expected)

    def test_unknown_size_is_zero_benefit(self, setup):
        _, model, _, nodes = setup
        nodes["sigma4"].size_bytes = -1
        assert model.benefit(nodes["sigma4"]) == 0.0

    def test_speculative_benefit_uses_constant_h(self, setup):
        _, model, _, _ = setup
        assert model.speculative_benefit(1000.0, 100) == \
            pytest.approx(1000.0 * 0.001 / 100)


class TestHRMaintenance:
    """The paper's worked example below Figure 3."""

    def test_admit_sigma4_zeroes_sigma3(self, setup):
        _, model, cache, nodes = setup
        cache.admit(nodes["sigma4"], tiny_table())
        # h(sigma3) = 5 - 5 = 0  (Algorithm 2)
        assert nodes["sigma3"].refs_raw == pytest.approx(0.0)

    def test_admit_pi5_reduces_sigma4_but_not_sigma3(self, setup):
        graph, model, cache, nodes = setup
        cache.admit(nodes["pi5"], tiny_table())
        # h(sigma4) = 5 - 2 = 3
        assert nodes["sigma4"].refs_raw == pytest.approx(3.0)
        # sigma3 also loses the pi5 queries (it is a potential DMD of pi5
        # through sigma4): 5 - 2 = 3.
        assert nodes["sigma3"].refs_raw == pytest.approx(3.0)

    def test_admit_both_matches_paper_example(self, setup):
        _, model, cache, nodes = setup
        cache.admit(nodes["sigma4"], tiny_table())
        assert nodes["sigma3"].refs_raw == pytest.approx(0.0)
        cache.admit(nodes["pi5"], tiny_table())
        # After pi5: sigma4 loses pi5's 2 queries -> 3; sigma3 stays,
        # because queries through pi5 would have used sigma4 anyway
        # (Algorithm 2 stops at the materialized sigma4).
        assert nodes["sigma4"].refs_raw == pytest.approx(3.0)
        assert nodes["sigma3"].refs_raw == pytest.approx(0.0)

    def test_evict_restores_refs(self, setup):
        _, model, cache, nodes = setup
        cache.admit(nodes["sigma4"], tiny_table())
        entry = nodes["sigma4"].entry
        cache.evict(entry)
        # Eq. 4 is the exact inverse of Algorithm 2.
        assert nodes["sigma3"].refs_raw == pytest.approx(5.0)
        assert nodes["sigma4"].entry is None

    def test_admit_evict_roundtrip_is_identity(self, setup):
        _, model, cache, nodes = setup
        before = {k: n.refs_raw for k, n in nodes.items()}
        cache.admit(nodes["pi5"], tiny_table())
        cache.admit(nodes["sigma4"], tiny_table())
        cache.evict(nodes["sigma4"].entry)
        cache.evict(nodes["pi5"].entry)
        after = {k: n.refs_raw for k, n in nodes.items()}
        for key in before:
            assert after[key] == pytest.approx(before[key]), key


class TestReferenceRecording:
    def test_repeat_queries_increment_refs(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog, alpha=1.0)
        model = BenefitModel(graph)
        plan1 = (q.scan("sales", ["product", "quantity"])
                  .filter(Cmp(">", Col("quantity"), Lit(1)))
                  .build())
        m1 = match_tree(plan1, graph, sales_catalog, query_id=1)
        model.record_query_references(plan1, m1)
        node = m1.of(plan1).graph_node
        assert node.refs_raw == 0.0  # inserted by this query: no credit
        plan2 = (q.scan("sales", ["product", "quantity"])
                  .filter(Cmp(">", Col("quantity"), Lit(1)))
                  .build())
        m2 = match_tree(plan2, graph, sales_catalog, query_id=2)
        model.record_query_references(plan2, m2)
        assert node.refs_raw == pytest.approx(1.0)

    def test_materialized_ancestor_blocks_credit(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog, alpha=1.0)
        model = BenefitModel(graph)
        cache = RecyclerCache(model, capacity=None)

        def plan():
            return (q.scan("sales", ["product", "quantity"])
                     .filter(Cmp(">", Col("quantity"), Lit(1)))
                     .build())

        m1 = match_tree(plan(), graph, sales_catalog, query_id=1)
        p = plan()
        m2 = match_tree(p, graph, sales_catalog, query_id=2)
        select_node = m2.of(p).graph_node
        scan_node = select_node.children[0]
        cache.admit(select_node, tiny_table())
        scan_before = scan_node.refs_raw
        model.record_query_references(p, m2)
        # The select (materialized, top of matched region) gets credit;
        # the scan below it does not.
        assert scan_node.refs_raw == pytest.approx(scan_before)
        assert select_node.refs_raw > 0.0


class TestAging:
    def test_refs_decay_with_events(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog, alpha=0.5)
        plan = q.scan("sales", ["product"]).build()
        m = match_tree(plan, graph, sales_catalog, query_id=1)
        node = m.of(plan).graph_node
        node.refs_raw = 8.0
        node.age_event = graph.event
        for _ in range(3):
            graph.tick()
        assert graph.effective_refs(node) == pytest.approx(1.0)

    def test_alpha_one_disables_aging(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog, alpha=1.0)
        plan = q.scan("sales", ["product"]).build()
        m = match_tree(plan, graph, sales_catalog, query_id=1)
        node = m.of(plan).graph_node
        node.refs_raw = 8.0
        for _ in range(10):
            graph.tick()
        assert graph.effective_refs(node) == pytest.approx(8.0)

    def test_aging_is_lazy_but_consistent(self, sales_catalog):
        graph = RecyclerGraph(sales_catalog, alpha=0.9)
        plan = q.scan("sales", ["product"]).build()
        m = match_tree(plan, graph, sales_catalog, query_id=1)
        node = m.of(plan).graph_node
        graph.add_refs(node, 1.0)
        graph.tick()
        graph.add_refs(node, 1.0)   # ages the old 1.0 first
        assert node.refs_raw == pytest.approx(0.9 + 1.0)
