"""End-to-end recycler behaviour: modes, speculation, reuse correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.engine import execute_plan
from repro.expr import Arith, Cmp, Col, Lit
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig


@pytest.fixture
def big_catalog() -> Catalog:
    rng = np.random.default_rng(11)
    n = 30000
    catalog = Catalog()
    schema = Table.from_rows(["k", "g", "v"], [INT64, INT64, FLOAT64],
                             []).schema
    catalog.register_table("t", Table(schema, {
        "k": np.arange(n, dtype=np.int64),
        "g": rng.integers(0, 12, n),
        "v": rng.normal(50.0, 10.0, n),
    }))
    return catalog


def agg_plan(alias="sv"):
    return (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(45.0)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), alias)])
             .build())


class TestModes:
    def test_off_mode_never_caches(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="off"))
        first = recycler.execute(agg_plan())
        second = recycler.execute(agg_plan())
        assert second.stats.total_cost == pytest.approx(
            first.stats.total_cost)
        assert len(recycler.cache) == 0
        assert len(recycler.graph.nodes) == 0

    def test_spec_mode_benefits_on_second_run(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        first = recycler.execute(agg_plan())
        second = recycler.execute(agg_plan())
        # Speculation materialized on the first run; the second reuses.
        assert second.stats.num_reused >= 1
        assert second.stats.total_cost < 0.05 * first.stats.total_cost

    def test_hist_mode_needs_three_occurrences(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="hist"))
        first = recycler.execute(agg_plan())
        second = recycler.execute(agg_plan())
        third = recycler.execute(agg_plan())
        # 1st: insert; 2nd: store decision (materializes, so it still
        # executes in full, plus overhead); 3rd: reuse.
        assert second.stats.num_reused == 0
        assert second.stats.num_stored >= 1
        assert third.stats.num_reused >= 1
        assert third.stats.total_cost < 0.05 * first.stats.total_cost

    def test_hist_misses_twice_occurring_results(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="hist"))
        recycler.execute(agg_plan())
        second = recycler.execute(agg_plan())
        # The paper: history mode always misses one reuse possibility.
        assert second.stats.num_reused == 0


class TestReuseCorrectness:
    def test_reuse_with_different_alias(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        recycler.execute(agg_plan("first_alias"))
        result = recycler.execute(agg_plan("second_alias"))
        assert result.stats.num_reused >= 1
        expected = execute_plan(agg_plan("second_alias"),
                                big_catalog).table
        assert result.table.schema.names == ["g", "second_alias"]
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_partial_subtree_reuse(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=0.0,
            speculation_benefit_threshold=0.0))
        recycler.execute(agg_plan())
        # A different query sharing only the aggregate's input subtree
        # cannot reuse the aggregate itself; but one sharing the whole
        # subtree plus a projection on top reuses the aggregate.
        extended = (q.scan("t", ["g", "v"])
                     .filter(Cmp(">", Col("v"), Lit(45.0)))
                     .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
                     .project([("g", Col("g")),
                               ("double_sv",
                                Arith("*", Col("sv"), Lit(2.0)))])
                     .build())
        result = recycler.execute(extended)
        assert result.stats.num_reused >= 1
        expected = execute_plan(extended, big_catalog).table
        assert result.table.sorted_rows() == expected.sorted_rows()

    def test_chain_reuse_prefers_highest_node(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        recycler.execute(agg_plan())
        prepared = recycler.prepare(agg_plan())
        # Only one reuse: the topmost (aggregate) node; nothing below.
        assert len(prepared.reuses) == 1
        assert prepared.reuses[0].target.op_name == "aggregate"

    def test_results_identical_across_all_modes(self, big_catalog):
        expected = execute_plan(agg_plan(), big_catalog).table.sorted_rows()
        for mode in ("off", "hist", "spec", "pa"):
            recycler = Recycler(big_catalog, RecyclerConfig(mode=mode))
            for _ in range(4):
                result = recycler.execute(agg_plan())
                assert result.table.sorted_rows() == expected, mode


class TestSpeculation:
    def test_speculation_skips_cheap_results(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=1e9))
        recycler.execute(agg_plan())
        assert len(recycler.cache) == 0

    def test_speculation_skips_large_results(self, big_catalog):
        # The selection result is big (thousands of rows); the benefit
        # with h=0.001 is tiny, so it must not be materialized; the small
        # aggregate should be.
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        recycler.execute(agg_plan())
        kinds = {e.node.op_name for e in recycler.cache.entries()}
        assert "aggregate" in kinds
        assert "select" not in kinds

    def test_store_abort_releases_inflight(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=1e9))
        prepared = recycler.prepare(agg_plan())
        assert len(prepared.stores) >= 1
        assert len(recycler.inflight) >= 1
        result = execute_plan(prepared.executed_plan, big_catalog,
                              stores=prepared.stores)
        recycler.finalize(prepared, result.stats)
        assert len(recycler.inflight) == 0


class TestGraphAnnotations:
    def test_executed_nodes_get_stats(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        plan = agg_plan()
        recycler.execute(plan)
        executed = [n for n in recycler.graph.nodes if n.exec_count > 0]
        assert len(executed) == 3  # scan, select, aggregate
        for node in executed:
            assert node.bcost > 0
            assert node.rows >= 0
            assert node.size_bytes >= 0

    def test_bcost_reconstructed_through_reuse(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        recycler.execute(agg_plan())
        agg_node = next(n for n in recycler.graph.nodes
                        if n.op_name == "aggregate")
        bcost_first = agg_node.bcost
        # Re-running reuses the cached result; bcost must not collapse to
        # the (tiny) reuse cost.
        recycler.execute(agg_plan())
        assert agg_node.bcost == pytest.approx(bcost_first, rel=0.05)

    def test_cache_flush_enables_recompute(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        baseline = recycler.execute(agg_plan()).stats.total_cost
        recycler.execute(agg_plan())
        assert recycler.flush_cache() >= 1
        after_flush = recycler.execute(agg_plan())
        # Recomputes (roughly baseline cost, modulo store overhead).
        assert after_flush.stats.total_cost > 0.5 * baseline


class TestInvalidation:
    def test_invalidate_table_evicts_dependents(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec"))
        recycler.execute(agg_plan())
        assert len(recycler.cache) >= 1
        assert recycler.invalidate_table("t") >= 1
        assert len(recycler.cache) == 0


class TestInvariantsUnderChurn:
    def test_many_query_variants_keep_invariants(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", cache_capacity=64 * 1024))
        rng = np.random.default_rng(3)
        for i in range(40):
            threshold = float(rng.choice([40.0, 45.0, 50.0, 55.0]))
            plan = (q.scan("t", ["g", "v"])
                     .filter(Cmp(">", Col("v"), Lit(threshold)))
                     .aggregate(keys=["g"],
                                aggs=[("sum", Col("v"), "sv"),
                                      ("count_star", None, "n")])
                     .build())
            recycler.execute(plan)
            recycler.graph.check_invariants()
            recycler.cache.check_invariants()
        summary = recycler.summary()
        assert summary["cache"].reuses > 0
