"""Cost-aware maintenance scheduling: EWMA activity signal, per-cycle
budgets, and benefit-per-byte victim ordering.

Deterministic ``run_once``-style tests — synthetic clocks feed the
activity tracker and the trigger clock, and victim statistics are
planted directly on graph nodes, so every assertion is exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import Catalog, FLOAT64, INT64
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import (ActivityTracker, BenefitModel, RecyclerGraph,
                            match_tree)

N_COLS = 6


def build_catalog() -> Catalog:
    catalog = Catalog()
    names = [f"c{i}" for i in range(N_COLS)]
    catalog.register_table("t", Table(
        Table.from_rows(names, [INT64] * N_COLS, []).schema,
        {name: np.arange(4, dtype=np.int64) for name in names}))
    return catalog


def planted_graph():
    """A graph of independent leaf victims with planted statistics:
    leaf i scans column ``c{i}`` (so no structure is shared), has base
    cost ``(i + 1) * 100``, one reference, and a 100-byte result —
    benefit-per-byte strictly increasing with i."""
    catalog = build_catalog()
    graph = RecyclerGraph(catalog, alpha=1.0)  # no aging: exact benefits
    model = BenefitModel(graph)
    nodes = []
    for i in range(N_COLS):
        graph.tick()
        plan = q.scan("t", [f"c{i}"]).build()
        node = match_tree(plan, graph, catalog, i + 1).of(plan).graph_node
        graph.record_execution(node, bcost=(i + 1) * 100.0, rows=4,
                               size_bytes=100)
        graph.add_refs(node, 1.0)
        nodes.append(node)
    graph.tick()  # every node now idle beyond min_idle_events=0
    return graph, model, nodes


class TestActivityTracker:
    def test_ewma_of_gaps(self):
        tracker = ActivityTracker(alpha=0.5)
        assert tracker.ewma_gap is None
        tracker.note_query(now=0.0)
        assert tracker.ewma_gap is None  # one arrival, no gap yet
        tracker.note_query(now=2.0)
        assert tracker.ewma_gap == pytest.approx(2.0)
        tracker.note_query(now=6.0)     # gap 4 -> 0.5*2 + 0.5*4
        assert tracker.ewma_gap == pytest.approx(3.0)
        assert tracker.queries == 3
        assert tracker.current_gap(now=7.0) == pytest.approx(1.0)

    def test_predicts_idle_against_typical_gap(self):
        tracker = ActivityTracker(alpha=0.5)
        # steady stream: one query per second
        for t in range(5):
            tracker.note_query(now=float(t))
        assert tracker.ewma_gap == pytest.approx(1.0)
        # 2s of silence is not idle at factor 4 ... yet
        assert not tracker.predicts_idle(now=6.0, factor=4.0)
        # ... 5s is
        assert tracker.predicts_idle(now=9.0, factor=4.0)

    def test_no_prediction_before_any_gap(self):
        tracker = ActivityTracker()
        assert not tracker.predicts_idle(now=100.0, factor=1.0)
        tracker.note_query(now=0.0)
        assert not tracker.predicts_idle(now=100.0, factor=1.0)

    def test_floor_blocks_prediction_during_bursts(self):
        """Back-to-back arrivals drive the EWMA gap to ~0; without an
        absolute floor every instant would 'predict idle' and put
        maintenance in the middle of peak traffic."""
        tracker = ActivityTracker(alpha=0.5)
        for _ in range(10):
            tracker.note_query(now=5.0)   # zero-gap burst
        assert tracker.ewma_gap == 0.0
        assert tracker.predicts_idle(now=5.001, factor=8.0)  # floorless
        assert not tracker.predicts_idle(now=5.001, factor=8.0,
                                         floor=0.05)
        assert tracker.predicts_idle(now=5.1, factor=8.0, floor=0.05)


class TestBenefitPerByteOrdering:
    def test_lowest_benefit_victims_fall_first_and_budget_stops(self):
        graph, model, nodes = planted_graph()
        before = {n.node_id for n in nodes}
        # budget of 250 bytes pays for exactly the two cheapest victims
        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=250,
            score=model.truncation_score)
        assert removed == 2
        assert exhausted
        alive = {n.node_id for n in graph.nodes}
        # strictly the two lowest benefit-per-byte nodes are gone
        assert before - alive == {nodes[0].node_id, nodes[1].node_id}
        graph.check_invariants()

    def test_second_cycle_continues_where_budget_cut(self):
        graph, model, nodes = planted_graph()
        graph.truncate_budgeted(min_idle_events=0, budget_bytes=250,
                                score=model.truncation_score)
        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=250,
            score=model.truncation_score)
        assert removed == 2
        alive = {n.node_id for n in graph.nodes}
        assert alive == {nodes[4].node_id, nodes[5].node_id}

    def test_unlimited_budget_drains_everything(self):
        graph, model, nodes = planted_graph()
        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=None,
            score=model.truncation_score)
        assert removed == N_COLS
        assert not exhausted
        assert graph.nodes == []

    def test_structure_respected_parent_falls_before_child(self):
        """A shared child only becomes a victim once every parent was
        removed, whatever the scores say — survivors stay child-closed."""
        catalog = build_catalog()
        graph = RecyclerGraph(catalog, alpha=1.0)
        model = BenefitModel(graph)
        plans = [q.scan("t", ["c0"])
                  .filter(Cmp(">", Col("c0"), Lit(i)))
                  .build() for i in range(3)]
        roots = []
        for i, plan in enumerate(plans):
            graph.tick()
            roots.append(match_tree(plan, graph, catalog,
                                    i + 1).of(plan).graph_node)
        leaf = roots[0].children[0]
        # make the shared leaf the *cheapest* victim by far
        graph.record_execution(leaf, bcost=1.0, rows=4, size_bytes=1)
        for i, root in enumerate(roots):
            graph.record_execution(root, bcost=(i + 1) * 1000.0, rows=4,
                                   size_bytes=100)
            graph.add_refs(root, 1.0)
        graph.tick()
        # budget covers one root only: the leaf, though cheapest, must
        # survive because parents remain
        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=100,
            score=model.truncation_score)
        assert removed == 1
        assert exhausted
        alive = {n.node_id for n in graph.nodes}
        assert leaf.node_id in alive
        assert roots[0].node_id not in alive  # lowest-benefit root fell
        graph.check_invariants()

    def test_oversized_victim_skipped_not_starving(self):
        """One idle subtree bigger than the whole budget must not
        starve truncation: it is skipped (cycle marked exhausted) while
        smaller victims behind it in the heap keep draining."""
        graph, model, nodes = planted_graph()
        # make the cheapest victim enormous: lowest benefit-per-byte,
        # so the heap pops it first — and it can never fit the budget
        graph.record_execution(nodes[0], bcost=100.0, rows=4,
                               size_bytes=10_000_000)
        graph.tick()
        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=250,
            score=model.truncation_score)
        assert exhausted
        alive = {n.node_id for n in graph.nodes}
        assert nodes[0].node_id in alive          # the whale survived
        # ... but the two cheapest *fitting* victims were still taken
        assert removed == 2
        assert nodes[1].node_id not in alive
        assert nodes[2].node_id not in alive
        graph.check_invariants()

    def test_stop_hook_cuts_cycle_short(self):
        graph, model, nodes = planted_graph()
        calls = {"n": 0}

        def stop_after_two() -> bool:
            calls["n"] += 1
            return calls["n"] > 2

        removed, exhausted = graph.truncate_budgeted(
            min_idle_events=0, budget_bytes=None,
            score=model.truncation_score, stop=stop_after_two)
        assert removed < N_COLS
        assert exhausted
        graph.check_invariants()


def scheduler_db(**config_kwargs) -> Database:
    rng = np.random.default_rng(5)
    n = 4000
    db = Database(RecyclerConfig(mode="spec", **config_kwargs))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 6, n), "v": rng.uniform(0, 1, n)}))
    return db


def distinct_queries(n):
    return [f"SELECT g, sum(v) AS s FROM t WHERE v > {i / (n + 1):.6f}"
            f" GROUP BY g" for i in range(n)]


class TestBudgetedCycles:
    def test_budget_exhaustion_mid_cycle_and_carry_over(self):
        db = scheduler_db(maintenance_graph_node_limit=5,
                          maintenance_idle_seconds=None,
                          maintenance_idle_gap_factor=None,
                          maintenance_budget_bytes=1,
                          maintenance_budget_seconds=None,
                          truncate_min_idle_events=2,
                          speculation_min_cost=1e18)
        for sql in distinct_queries(10):
            db.sql(sql)
        nodes_before = len(db.recycler.graph.nodes)
        assert nodes_before > 5
        outcome = db.maintain()
        assert outcome["size_trigger"] == 1
        assert outcome["budget_exhausted"] == 1
        # a 1-byte budget still pays for size-unknown (never-executed)
        # nodes but stops at the first measured victim
        assert len(db.recycler.graph.nodes) > 5
        assert db.summary()["maintenance"]["budget_exhausted_cycles"] == 1
        # raising the budget lets the next cycle finish the job
        db.config.maintenance_budget_bytes = None
        outcome = db.maintain()
        assert outcome["nodes_truncated"] > 0
        assert outcome["budget_exhausted"] == 0
        db.recycler.graph.check_invariants()
        db.close()

    def test_predicted_idle_window_triggers_budget_spend(self):
        db = scheduler_db(maintenance_graph_node_limit=None,
                          maintenance_idle_seconds=None,
                          maintenance_idle_gap_factor=4.0,
                          truncate_min_idle_events=0,
                          speculation_min_cost=1e18)
        for sql in distinct_queries(6):
            db.sql(sql)
        # replace the wall-clock arrivals with a synthetic steady
        # stream: one query per second, last one at t=10
        tracker = ActivityTracker(alpha=0.5)
        for t in range(11):
            tracker.note_query(now=float(t))
        db.maintenance.activity = tracker
        # t=12: a 2s gap against an EWMA of 1s — no prediction yet
        outcome = db.maintenance.run_once(now=12.0)
        assert outcome["predicted_idle_trigger"] == 0
        assert outcome["idle_trigger"] == 0
        # t=15: 5s of silence >= 4 x EWMA -> predicted idle, budget spent
        outcome = db.maintenance.run_once(now=15.0)
        assert outcome["predicted_idle_trigger"] == 1
        assert outcome["idle_trigger"] == 0  # coarse trigger disabled
        assert outcome["nodes_truncated"] > 0
        stats = db.summary()["maintenance"]
        assert stats["predicted_idle_triggers"] == 1
        db.recycler.graph.check_invariants()
        db.close()

    def test_legacy_idle_threshold_still_fires(self):
        db = scheduler_db(maintenance_idle_seconds=0.0,
                          maintenance_graph_node_limit=None,
                          maintenance_idle_gap_factor=None,
                          truncate_min_idle_events=0)
        db.sql(distinct_queries(1)[0])
        outcome = db.maintain()
        assert outcome["idle_trigger"] == 1
        assert outcome["predicted_idle_trigger"] == 0
        db.close()

    def test_summary_gains_scheduler_counters(self):
        db = scheduler_db(maintenance_idle_seconds=None,
                          maintenance_graph_node_limit=None)
        db.sql(distinct_queries(1)[0])
        db.maintain()
        stats = db.summary()["maintenance"]
        for key in ("gc_nodes_collected", "stats_incremental_merges",
                    "budget_exhausted_cycles", "predicted_idle_triggers"):
            assert key in stats
            assert stats[key] == 0
        db.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecyclerConfig(maintenance_budget_seconds=0.0)
        with pytest.raises(ValueError):
            RecyclerConfig(maintenance_budget_bytes=-1)
        with pytest.raises(ValueError):
            RecyclerConfig(maintenance_idle_gap_factor=0.0)
        with pytest.raises(ValueError):
            RecyclerConfig(activity_ewma_alpha=0.0)


class TestHitRateFeedback:
    """Cache hit rate feeds the per-cycle byte budget: cold windows
    (no reuses) scale it up to ``1 + factor`` x, hot windows keep the
    base budget."""

    BASE = 1000

    def feedback_db(self):
        return scheduler_db(maintenance_graph_node_limit=None,
                            maintenance_idle_seconds=None,
                            maintenance_idle_gap_factor=None,
                            maintenance_budget_bytes=self.BASE,
                            maintenance_hit_rate_budget_factor=1.0,
                            speculation_min_cost=1e18)

    def test_cold_window_doubles_budget(self):
        db = self.feedback_db()
        for sql in distinct_queries(5):  # all distinct: zero reuses
            db.sql(sql)
        outcome = db.maintain()
        assert outcome["hit_rate"] == 0.0
        assert outcome["budget_bytes"] == 2 * self.BASE
        db.close()

    def test_hot_window_keeps_base_budget(self):
        db = self.feedback_db()
        query = distinct_queries(1)[0]
        for _ in range(10):  # 1 cold + 9 warm
            db.sql(query)
        reuses = db.recycler.cache.counters.reuses
        assert reuses > 0
        expected_rate = min(reuses / 10, 1.0)
        outcome = db.maintain()
        assert outcome["hit_rate"] == pytest.approx(expected_rate)
        assert outcome["budget_bytes"] == \
            int(self.BASE * (2.0 - expected_rate))
        assert outcome["budget_bytes"] < 2 * self.BASE
        db.close()

    def test_window_is_per_cycle_not_cumulative(self):
        db = self.feedback_db()
        query = distinct_queries(1)[0]
        db.sql(query)          # cold
        db.sql(query)          # warms the cache fully
        db.maintain()          # consumes the cold+warm window
        reuses_mark = db.recycler.cache.counters.reuses
        for _ in range(4):
            db.sql(query)      # all warm now
        window_rate = \
            (db.recycler.cache.counters.reuses - reuses_mark) / 4
        assert window_rate == pytest.approx(1.0)  # fully warm window
        outcome = db.maintain()
        # the rate reflects only this window, not the cold history
        assert outcome["hit_rate"] == pytest.approx(1.0)
        assert outcome["budget_bytes"] == self.BASE
        db.close()

    def test_empty_window_reports_no_rate(self):
        db = self.feedback_db()
        db.sql(distinct_queries(1)[0])
        db.maintain()
        outcome = db.maintain()  # no queries since the last cycle
        assert "hit_rate" not in outcome
        assert "budget_bytes" not in outcome
        db.close()

    def test_feedback_disabled_by_default(self):
        db = scheduler_db(maintenance_graph_node_limit=None,
                          maintenance_idle_seconds=None,
                          maintenance_idle_gap_factor=None)
        db.sql(distinct_queries(1)[0])
        outcome = db.maintain()
        assert "hit_rate" not in outcome
        db.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecyclerConfig(maintenance_hit_rate_budget_factor=-0.5)
