"""Version-dead subtree GC: drop/re-register strands graph history that
no future snapshot can match; maintenance collects it.

Incarnations (not versions) decide deadness: ``append_rows`` bumps a
table's *version* but not its *incarnation*, so update history survives
— exactly the paper's committed-update model — while ``drop_table`` /
``register_table`` (replace) / ``register_function`` (replace) orphan
the old incarnation's subtrees.
"""

from __future__ import annotations

import numpy as np

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64

SCHEMA = Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema


def make_table(seed: int = 0, n: int = 2000) -> Table:
    rng = np.random.default_rng(seed)
    return Table(SCHEMA, {"g": rng.integers(0, 6, n),
                          "v": rng.uniform(0, 1, n)})


def make_db(**config_kwargs) -> Database:
    db = Database(RecyclerConfig(mode="spec", **config_kwargs))
    db.register_table("t", make_table())
    return db


QUERIES = [f"SELECT g, sum(v) AS s FROM t WHERE v > {i / 10:.1f} GROUP BY g"
           for i in range(4)]


class TestVersionDeadSweep:
    def test_drop_reregister_leaves_zero_dead_after_one_cycle(self):
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        for sql in QUERIES:
            db.sql(sql)
        graph = db.recycler.graph
        populated = len(graph.nodes)
        assert populated > 0
        assert graph.version_dead_count() == 0

        db.drop_table("t")
        db.register_table("t", make_table(seed=1))
        # the whole old-incarnation graph is now dead ...
        assert graph.version_dead_count() == populated
        outcome = db.maintain()
        # ... and one cycle collects every node of it
        assert outcome["gc_nodes_collected"] == populated
        assert graph.version_dead_count() == 0
        assert len(graph.nodes) == 0
        graph.check_invariants()
        assert db.summary()["maintenance"]["gc_nodes_collected"] == \
            populated
        db.close()

    def test_append_keeps_history_alive(self):
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        for sql in QUERIES:
            db.sql(sql)
        graph = db.recycler.graph
        populated = len(graph.nodes)
        db.append_rows("t", [(3, 0.5)])
        assert graph.version_dead_count() == 0
        outcome = db.maintain()
        assert outcome["gc_nodes_collected"] == 0
        assert len(graph.nodes) == populated
        # and the history is actually rematched: re-issuing inserts
        # nothing new
        before = len(graph.nodes)
        db.sql(QUERIES[0])
        assert len(graph.nodes) == before
        db.close()

    def test_dead_leaves_unreachable_to_matching(self):
        """After drop/re-register a repeat query must insert a fresh
        subtree (never match old-incarnation nodes), while the stale
        twins sit dead until GC."""
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        result = db.sql(QUERIES[0])
        inserted_first = result.record.graph_nodes
        db.drop_table("t")
        db.register_table("t", make_table(seed=2))
        db.sql(QUERIES[0])
        graph = db.recycler.graph
        # the graph doubled: a full fresh subtree next to the dead one
        assert len(graph.nodes) == 2 * inserted_first
        assert graph.version_dead_count() == inserted_first
        db.maintain()
        assert len(graph.nodes) == inserted_first
        assert graph.version_dead_count() == 0
        graph.check_invariants()
        db.close()

    def test_function_reregister_kills_function_history(self):
        from repro.columnar import Schema
        b_schema = Schema(["x"], [INT64])
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        db.register_function("f", lambda: Table(
            b_schema, {"x": np.arange(8)}), b_schema)
        db.sql("SELECT sum(x) AS s FROM f()")
        graph = db.recycler.graph
        dead_before = graph.version_dead_count()
        assert dead_before == 0
        db.register_function("f", lambda: Table(
            b_schema, {"x": np.arange(3)}), b_schema)
        assert graph.version_dead_count() > 0
        db.maintain()
        assert graph.version_dead_count() == 0
        assert db.sql("SELECT sum(x) AS s FROM f()").table.to_rows() == \
            [(3,)]
        db.close()


class TestPinningAndIsolation:
    def test_gc_never_collects_inflight_nodes(self):
        """GC's own pinning contract, isolated from the facade: the
        ``Database`` DDL path additionally aborts in-flight producers of
        stale nodes (PR 4), so deadness is created here at the catalog
        level — the incarnation bump without the sweep — leaving the
        producer registered when GC runs."""
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        recycler = db.recycler
        prepared = recycler.prepare(db.plan(QUERIES[0]),
                                    producer_token="pinned")
        assert len(recycler.inflight) >= 1
        producing = recycler.inflight.active_nodes()
        db.catalog.drop_table("t")
        db.catalog.register_table("t", make_table(seed=3))
        assert recycler.graph.version_dead_count() > 0
        db.maintain()
        alive = {node.node_id for node in recycler.graph.nodes}
        assert producing <= alive, "GC collected an in-flight node"
        recycler.graph.check_invariants()
        # once the producer abandons, the next cycle finishes the sweep
        recycler.abandon(prepared)
        db.maintain()
        assert recycler.graph.version_dead_count() == 0
        db.close()

    def test_old_snapshot_query_still_matches_old_incarnation(self):
        """Snapshot isolation extends to matching: a query pinned before
        the DDL unifies with the old-incarnation subtree (and owes the
        old answer), even while new-snapshot queries get fresh nodes."""
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        db.sql(QUERIES[0])
        nodes_after_first = len(db.recycler.graph.nodes)
        old_snapshot = db.catalog.snapshot()
        old_plan = db.plan(QUERIES[0], snapshot=old_snapshot)
        db.drop_table("t")
        db.register_table("t", make_table(seed=4))
        result = db.recycler.execute(old_plan, snapshot=old_snapshot)
        # the old-snapshot run matched the existing subtree: no growth
        assert len(db.recycler.graph.nodes) == nodes_after_first
        assert result.table.num_rows > 0
        db.close()

    def test_results_correct_across_generations(self):
        db = make_db(maintenance_idle_seconds=None,
                     maintenance_graph_node_limit=None)
        first = db.sql(QUERIES[1]).table.to_rows()
        assert db.sql(QUERIES[1]).table.to_rows() == first
        db.drop_table("t")
        db.register_table("t", make_table(seed=5))
        reference = Database(RecyclerConfig(mode="off"))
        reference.register_table("t", make_table(seed=5))
        expected = reference.sql(QUERIES[1]).table.to_rows()
        assert db.sql(QUERIES[1]).table.to_rows() == expected
        db.maintain()
        assert db.sql(QUERIES[1]).table.to_rows() == expected
        db.close()
        reference.close()
