"""Tests for the in-flight registry and prepare-time stall detection."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import InFlightRegistry, Recycler, RecyclerConfig


@pytest.fixture
def catalog():
    catalog = Catalog()
    rng = np.random.default_rng(4)
    n = 20000
    catalog.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    return catalog


def plan():
    return (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(0.5)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "s")])
             .build())


class TestRegistry:
    def test_register_release(self):
        class FakeNode:
            node_id = 7
        registry = InFlightRegistry()
        node = FakeNode()
        registry.register(node, "producer-a")
        assert registry.producer_of(node) == "producer-a"
        # first registration wins
        registry.register(node, "producer-b")
        assert registry.producer_of(node) == "producer-a"
        registry.release(node)
        assert registry.producer_of(node) is None

    def test_release_all_by_token(self):
        class FakeNode:
            def __init__(self, node_id):
                self.node_id = node_id
        registry = InFlightRegistry()
        a, b, c = FakeNode(1), FakeNode(2), FakeNode(3)
        registry.register(a, "x")
        registry.register(b, "x")
        registry.register(c, "y")
        assert sorted(registry.release_all("x")) == [1, 2]
        assert len(registry) == 1

    def test_release_is_owner_checked(self):
        class FakeNode:
            node_id = 3
        registry = InFlightRegistry()
        node = FakeNode()
        registry.register(node, "owner")
        # a non-owner (e.g. a racing duplicated completion) cannot evict
        # the live producer's registration
        assert not registry.release(node, "impostor")
        assert registry.producer_of(node) == "owner"
        assert registry.release(node, "owner")
        assert registry.producer_of(node) is None

    def test_cancelled_token_is_refused_and_woken(self):
        class FakeNode:
            def __init__(self, node_id):
                self.node_id = node_id
        registry = InFlightRegistry()
        produced, wanted = FakeNode(1), FakeNode(2)
        registry.register(produced, "victim")
        registry.cancel("victim")
        assert len(registry) == 0
        # a cancelled token can no longer register
        assert not registry.register(wanted, "victim")
        assert registry.producer_of(wanted) is None
        # and never blocks waiting on someone else's producer
        registry.register(wanted, "other")
        waited = registry.wait_for(wanted, "victim", timeout=5.0)
        assert waited < 1.0

    def test_active_nodes_snapshot(self):
        class FakeNode:
            def __init__(self, node_id):
                self.node_id = node_id
        registry = InFlightRegistry()
        registry.register(FakeNode(10), "a")
        registry.register(FakeNode(11), "b")
        assert registry.active_nodes() == {10, 11}


class TestPrepareStalls:
    def test_concurrent_preparation_detects_stall(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        first = recycler.prepare(plan(), producer_token="stream-1")
        assert len(first.stores) >= 1
        # A second query prepared before the first finishes sees the
        # in-flight registration and reports the stall.
        second = recycler.prepare(plan(), producer_token="stream-2")
        assert second.stalls, "second query must stall on the producer"
        producers = {recycler.inflight.producer_of(node)
                     for node in second.stalls}
        assert producers == {"stream-1"}
        # the stalled query does NOT get its own store on the same node
        stalled_ids = {node.node_id for node in second.stalls}
        second_targets = {req.tag.node_id
                          for req in second.stores.values()}
        assert not stalled_ids & second_targets

    def test_same_token_does_not_stall_itself(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        recycler.prepare(plan(), producer_token="s1")
        again = recycler.prepare(plan(), producer_token="s1")
        assert not again.stalls

    def test_finalize_releases_inflight(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        prepared = recycler.prepare(plan(), producer_token="s1")
        result = execute_plan(prepared.executed_plan, catalog,
                              stores=prepared.stores)
        recycler.finalize(prepared, result.stats)
        assert len(recycler.inflight) == 0
        follow_up = recycler.prepare(plan(), producer_token="s2")
        assert not follow_up.stalls
        assert follow_up.reuses  # the result is cached now

    def test_query_record_written(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        recycler.execute(plan(), label="alpha")
        recycler.execute(plan(), label="beta")
        labels = [r.label for r in recycler.records]
        assert labels == ["alpha", "beta"]
        assert recycler.records[1].num_reused == 1
        assert recycler.records[0].matching_seconds > 0


class TestAbandonedConsumer:
    """Regression: abandoning a *waiting* consumer whose producer already
    finalized must not leave a stale ``InFlightRegistry`` entry.

    The consumer wakes from its stall only after the cancel landed; it
    then plans stores for a node the producer left unmaterialized
    (speculation aborted) — without the cancelled-token check it would
    register itself as producer, and since an abandoned query never
    finalizes, nothing would ever release that entry: every later query
    matching the node would stall against a ghost until timeout.
    """

    def _recycler(self, catalog):
        # Astronomic speculation_min_cost: the producer's speculative
        # store always aborts, leaving the node seen-but-unmaterialized
        # so the consumer's rewrite wants a history store on it.
        return Recycler(catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=1e18,
            inflight_wait_timeout=30.0))

    def test_cancelled_consumer_registers_nothing(self, catalog):
        recycler = self._recycler(catalog)
        # Producer runs the query; its speculation aborts.
        recycler.execute(plan(), producer_token="producer")
        node_count = len(recycler.graph.nodes)
        assert len(recycler.cache) == 0
        assert len(recycler.inflight) == 0
        # The consumer was abandoned while stalled; by the time its
        # prepare resumes, the producer has finalized.  Its store
        # planning must be refused outright.
        recycler.cancel("consumer")
        prepared = recycler.prepare(plan(), producer_token="consumer",
                                    block_on_inflight=True)
        assert not prepared.stores, "abandoned query planned a store"
        assert len(recycler.inflight) == 0, "stale in-flight entry"
        # The graph node stays reusable: a healthy query claims it,
        # produces it, and later queries reuse it — nothing is wedged.
        result = recycler.execute(plan(), producer_token="healthy")
        assert result.record is not None
        assert len(recycler.graph.nodes) == node_count
        follow_up = recycler.prepare(plan(), producer_token="later")
        assert follow_up.reuses or not follow_up.stalls

    def test_cancel_wakes_blocked_consumer(self, catalog):
        recycler = self._recycler(catalog)
        producer = recycler.prepare(plan(), producer_token="producer")
        assert len(recycler.inflight) == 1
        entered = threading.Event()
        prepared_box: list = []

        def consume():
            entered.set()
            prepared_box.append(recycler.prepare(
                plan(), producer_token="consumer",
                block_on_inflight=True))

        thread = threading.Thread(target=consume)
        thread.start()
        assert entered.wait(timeout=5)
        # Abandon the waiting consumer from this thread; it must wake
        # well before the 30 s producer timeout.
        recycler.cancel("consumer")
        thread.join(timeout=5)
        assert not thread.is_alive(), "cancel did not wake the waiter"
        prepared = prepared_box[0]
        assert not prepared.stores
        # Only the producer's own registration remains, and its
        # finalize clears it.
        assert recycler.inflight.active_nodes() <= {
            node.node_id for node in recycler.graph.nodes}
        recycler.abandon(producer)
        assert len(recycler.inflight) == 0
