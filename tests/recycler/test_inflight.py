"""Tests for the in-flight registry and prepare-time stall detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import InFlightRegistry, Recycler, RecyclerConfig


@pytest.fixture
def catalog():
    catalog = Catalog()
    rng = np.random.default_rng(4)
    n = 20000
    catalog.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    return catalog


def plan():
    return (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(0.5)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "s")])
             .build())


class TestRegistry:
    def test_register_release(self):
        class FakeNode:
            node_id = 7
        registry = InFlightRegistry()
        node = FakeNode()
        registry.register(node, "producer-a")
        assert registry.producer_of(node) == "producer-a"
        # first registration wins
        registry.register(node, "producer-b")
        assert registry.producer_of(node) == "producer-a"
        registry.release(node)
        assert registry.producer_of(node) is None

    def test_release_all_by_token(self):
        class FakeNode:
            def __init__(self, node_id):
                self.node_id = node_id
        registry = InFlightRegistry()
        a, b, c = FakeNode(1), FakeNode(2), FakeNode(3)
        registry.register(a, "x")
        registry.register(b, "x")
        registry.register(c, "y")
        assert sorted(registry.release_all("x")) == [1, 2]
        assert len(registry) == 1


class TestPrepareStalls:
    def test_concurrent_preparation_detects_stall(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        first = recycler.prepare(plan(), producer_token="stream-1")
        assert len(first.stores) >= 1
        # A second query prepared before the first finishes sees the
        # in-flight registration and reports the stall.
        second = recycler.prepare(plan(), producer_token="stream-2")
        assert second.stalls, "second query must stall on the producer"
        producers = {recycler.inflight.producer_of(node)
                     for node in second.stalls}
        assert producers == {"stream-1"}
        # the stalled query does NOT get its own store on the same node
        stalled_ids = {node.node_id for node in second.stalls}
        second_targets = {req.tag.node_id
                          for req in second.stores.values()}
        assert not stalled_ids & second_targets

    def test_same_token_does_not_stall_itself(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        recycler.prepare(plan(), producer_token="s1")
        again = recycler.prepare(plan(), producer_token="s1")
        assert not again.stalls

    def test_finalize_releases_inflight(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        prepared = recycler.prepare(plan(), producer_token="s1")
        result = execute_plan(prepared.executed_plan, catalog,
                              stores=prepared.stores)
        recycler.finalize(prepared, result.stats)
        assert len(recycler.inflight) == 0
        follow_up = recycler.prepare(plan(), producer_token="s2")
        assert not follow_up.stalls
        assert follow_up.reuses  # the result is cached now

    def test_query_record_written(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        recycler.execute(plan(), label="alpha")
        recycler.execute(plan(), label="beta")
        labels = [r.label for r in recycler.records]
        assert labels == ["alpha", "beta"]
        assert recycler.records[1].num_reused == 1
        assert recycler.records[0].matching_seconds > 0
