"""Cache-level halves of the shape-miss regressions.

``tests/plan/test_optimizer.py`` proves the three reproduced miss bugs
now share a fingerprint; these tests prove the part the user observes:
a warm query in one shape is *served from the cache entry produced by
the other shape*, byte-identical, in both directions — and that
``optimize_plans=False`` restores the old per-shape behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database
from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.expr import And, Arith, Cmp, Col, Lit
from repro.plan import q
from repro.recycler import Recycler, RecyclerConfig


@pytest.fixture
def big_catalog() -> Catalog:
    rng = np.random.default_rng(23)
    n = 30000
    catalog = Catalog()
    schema = Table.from_rows(["k", "g", "v"], [INT64, INT64, FLOAT64],
                             []).schema
    catalog.register_table("t", Table(schema, {
        "k": np.arange(n, dtype=np.int64),
        "g": rng.integers(0, 12, n),
        "v": rng.normal(50.0, 10.0, n),
    }))
    return catalog


def stacked_filters():
    return (q.scan("t", ["k", "g", "v"])
             .filter(Cmp("<", Col("k"), Lit(20000)))
             .filter(Cmp(">", Col("v"), Lit(45.0)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
             .build())


def merged_filter():
    return (q.scan("t", ["k", "g", "v"])
             .filter(And([Cmp(">", Col("v"), Lit(45.0)),
                          Cmp("<", Col("k"), Lit(20000))]))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
             .build())


def int_literal():
    return (q.scan("t", ["k", "g"])
             .filter(Cmp("<", Col("k"), Lit(15000)))
             .aggregate(keys=["g"], aggs=[("count", Col("k"), "n")])
             .build())


def float_literal():
    return (q.scan("t", ["k", "g"])
             .filter(Cmp("<", Col("k"), Lit(15000.0)))
             .aggregate(keys=["g"], aggs=[("count", Col("k"), "n")])
             .build())


def bare_filter():
    return (q.scan("t", ["k", "v"])
             .filter(Cmp(">", Col("v"), Lit(75.0)))
             .build())


def projected_filter():
    return (q.scan("t", ["k", "v"])
             .filter(Cmp(">", Col("v"), Lit(75.0)))
             .project(["k", "v"])
             .build())


SHAPE_PAIRS = [
    pytest.param(stacked_filters, merged_filter, id="stacked-vs-and"),
    pytest.param(int_literal, float_literal, id="int-vs-float-literal"),
    pytest.param(bare_filter, projected_filter, id="identity-project"),
]


def assert_tables_identical(expected, actual):
    assert actual.schema.names == expected.schema.names
    assert actual.schema.types == expected.schema.types
    for name in expected.schema.names:
        want, have = expected.column(name), actual.column(name)
        assert have.dtype == want.dtype
        assert np.array_equal(want, have)


class TestCrossShapeReuse:
    @pytest.mark.parametrize("cold_shape,warm_shape", SHAPE_PAIRS)
    def test_warm_shape_served_from_cold_entry(self, big_catalog,
                                               cold_shape, warm_shape):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec", optimize_plans=True))
        cold = recycler.execute(cold_shape())
        warm = recycler.execute(warm_shape())
        assert warm.stats.num_reused >= 1
        assert warm.stats.total_cost < 0.1 * cold.stats.total_cost
        # every node of the warm shape resolved to an existing graph
        # node: the equivalence class truly is one subtree
        assert warm.record.num_inserted == 0
        assert_tables_identical(cold.table, warm.table)

    @pytest.mark.parametrize("cold_shape,warm_shape", SHAPE_PAIRS)
    def test_reverse_direction(self, big_catalog, cold_shape,
                               warm_shape):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec", optimize_plans=True))
        cold = recycler.execute(warm_shape())
        warm = recycler.execute(cold_shape())
        assert warm.stats.num_reused >= 1
        assert_tables_identical(cold.table, warm.table)

    @pytest.mark.parametrize("cold_shape,warm_shape", SHAPE_PAIRS)
    def test_optimizer_off_reproduces_the_miss(self, big_catalog,
                                               cold_shape, warm_shape):
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=False))
        recycler.execute(cold_shape())
        warm = recycler.execute(warm_shape())
        # legacy as-bound matching: the equivalent shape misses at
        # least one node and grows the graph with a duplicate subtree
        assert warm.record.num_inserted >= 1
        # ... while the byte-identical shape still hits
        again = recycler.execute(warm_shape())
        assert again.stats.num_reused >= 1
        assert again.record.num_inserted == 0


class TestCostGatedReuse:
    def test_cheap_wide_result_recomputed(self, big_catalog):
        # A bare column projection is cheaper to recompute than to
        # re-emit row by row; the cost gate skips its cached entry and
        # counts the skip.
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=True,
            speculation_min_cost=0.0))
        plan = q.scan("t", ["k"]).build()
        first = recycler.execute(plan)
        second = recycler.execute(plan)
        summary = recycler.optimizer_summary()
        if summary["reuse_cost_skips"]:
            assert second.stats.num_reused == 0
            assert_tables_identical(first.table, second.table)

    def test_expensive_result_still_reused(self, big_catalog):
        recycler = Recycler(big_catalog, RecyclerConfig(mode="spec", optimize_plans=True))
        recycler.execute(stacked_filters())
        warm = recycler.execute(stacked_filters())
        assert warm.stats.num_reused >= 1


class TestObservability:
    def test_database_summary_exposes_optimizer_section(self,
                                                        big_catalog):
        db = Database(RecyclerConfig(mode="spec", optimize_plans=True), catalog=big_catalog)
        db.execute(stacked_filters())
        db.execute(merged_filter())
        section = db.summary()["optimizer"]
        assert section["enabled"] is True
        assert section["rewrites"]["merge_selects"] >= 1
        assert section["nodes_matched"] >= 1
        assert 0.0 < section["match_rate"] <= 1.0
        assert section["match_rate"] == pytest.approx(
            section["nodes_matched"]
            / (section["nodes_matched"] + section["nodes_inserted"]))

    def test_disabled_section_reports_no_rewrites(self, big_catalog):
        db = Database(RecyclerConfig(mode="spec",
                                     optimize_plans=False),
                      catalog=big_catalog)
        db.execute(stacked_filters())
        section = db.summary()["optimizer"]
        assert section["enabled"] is False
        assert section["rewrites"] == {}

    def test_expression_layer_still_canonicalizes_alone(self,
                                                        big_catalog):
        # sanity: And-arg order never split fingerprints, even without
        # the optimizer — the pass closes *plan*-shape misses only.
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=False))
        flip = (q.scan("t", ["k", "g", "v"])
                 .filter(And([Cmp("<", Col("k"), Lit(20000)),
                              Cmp(">", Col("v"), Lit(45.0))]))
                 .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
                 .build())
        recycler.execute(merged_filter())
        warm = recycler.execute(flip)
        assert warm.stats.num_reused >= 1


class TestPassThroughNameMapping:
    """Scan leaves match with their column set unordered, so the name
    mapping above pass-through operators must translate by name, not
    position — positionally, a reordered scan silently swaps names.
    """

    def _shapes(self):
        a = (q.scan("t", ["k", "g", "v"])
              .filter(Cmp(">", Col("v"), Lit(60.0)))
              .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
              .build())
        # same query, scan columns spelled in another order
        a2 = (q.scan("t", ["g", "k", "v"])
               .filter(Cmp(">", Col("v"), Lit(60.0)))
               .aggregate(keys=["g"], aggs=[("sum", Col("v"), "sv")])
               .build())
        # different query: groups by k, over the reordered scan
        b = (q.scan("t", ["g", "k", "v"])
              .filter(Cmp(">", Col("v"), Lit(60.0)))
              .aggregate(keys=["k"], aggs=[("sum", Col("v"), "sv")])
              .build())
        return a, a2, b

    @pytest.mark.parametrize("optimize", [True, False])
    def test_group_by_other_column_never_reuses(self, big_catalog,
                                                optimize):
        # regression: with positional output pairing the reordered scan
        # mapped g<->k, so the GROUP BY k query *reused the GROUP BY g
        # entry* — wrong rows, silently
        a, _, b = self._shapes()
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=optimize,
            speculation_min_cost=0.0))
        recycler.execute(a)
        got = recycler.execute(b)
        reference = Recycler(big_catalog,
                             RecyclerConfig(mode="off")).execute(b)
        assert_tables_identical(reference.table, got.table)

    def test_reordered_scan_spelling_shares(self, big_catalog):
        # ... while the genuinely identical query, spelled over a
        # reordered scan, fully unifies: the optimizer rewrites both
        # scans to base-table column order (the order is invisible
        # below the Aggregate), so they are one graph leaf
        a, a2, _ = self._shapes()
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=True))
        cold = recycler.execute(a)
        warm = recycler.execute(a2)
        assert warm.stats.num_reused >= 1
        assert warm.record.num_inserted == 0
        assert_tables_identical(cold.table, warm.table)

    def test_reordered_scan_conservative_miss_when_off(self,
                                                       big_catalog):
        # legacy matching keys scans on the ordered column tuple, so
        # the reordered spelling misses — never shares unsoundly
        a, a2, _ = self._shapes()
        recycler = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=False))
        cold = recycler.execute(a)
        warm = recycler.execute(a2)
        assert warm.record.num_inserted >= 1
        assert_tables_identical(cold.table, warm.table)


class TestLiteralNormalizationSafety:
    def test_arith_literal_dtype_preserved(self, big_catalog):
        # v + 1.0 must stay FLOAT64 arithmetic: optimizer on and off
        # return byte-identical columns.
        plan = (q.scan("t", ["k", "v"])
                 .project([("k", Col("k")),
                           ("v1", Arith("+", Col("v"), Lit(1.0)))])
                 .filter(Cmp(">", Col("v1"), Lit(60)))
                 .build())
        on = Recycler(big_catalog,
                      RecyclerConfig(mode="spec", optimize_plans=True)).execute(plan)
        off = Recycler(big_catalog, RecyclerConfig(
            mode="spec", optimize_plans=False)).execute(plan)
        assert_tables_identical(off.table, on.table)
