"""LIKE fast paths: classification and parity against the regex engine.

``Like`` dispatches exact / prefix / suffix / contains patterns onto
vectorized string primitives; every fast path must agree with the
compiled-regex semantics on every input — including ``_`` wildcards,
empty patterns, empty strings, and NOT LIKE.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.batch import Batch
from repro.expr.nodes import Col, Like, _classify_like, _like_to_regex

VALUES = ["", "n", "n1", "n12", "xn1", "n1x", "abc", "a%c", "a_c",
          "nn1n", "N1", "ñ1", "n1" * 30]


def batch():
    arr = np.empty(len(VALUES), dtype=object)
    arr[:] = VALUES
    return Batch({"s": arr})


def regex_reference(pattern, negated=False):
    match = _like_to_regex(pattern).match
    rows = [match(v) is not None for v in VALUES]
    if negated:
        rows = [not r for r in rows]
    return rows


class TestClassification:
    @pytest.mark.parametrize("pattern,expected", [
        ("abc", ("exact", "abc")),
        ("", ("exact", "")),
        ("n1%", ("prefix", "n1")),
        ("%", ("prefix", "")),
        ("%n1", ("suffix", "n1")),
        ("%n1%", ("contains", "n1")),
        ("%%", ("contains", "")),
        ("n_1", ("regex", "n_1")),
        ("a%b%c", ("regex", "a%b%c")),
        ("%a_b%", ("regex", "%a_b%")),
        ("_", ("regex", "_")),
    ])
    def test_kind(self, pattern, expected):
        assert _classify_like(pattern) == expected


class TestParity:
    @pytest.mark.parametrize("pattern", [
        "n1", "", "abc", "zzz",          # exact
        "n%", "n1%", "%", "xyz%",        # prefix
        "%1", "%n", "%zzz",              # suffix
        "%n1%", "%%", "%zz%",            # contains
        "n_", "_1", "n%1", "%a_b%",      # regex fallback
    ])
    @pytest.mark.parametrize("negated", [False, True])
    def test_fast_path_matches_regex(self, pattern, negated):
        expr = Like(Col("s"), pattern, negated=negated)
        result = expr.eval(batch())
        assert result.dtype == np.bool_
        assert result.tolist() == regex_reference(pattern, negated)

    def test_empty_batch(self):
        arr = np.empty(0, dtype=object)
        for pattern in ("n1", "n%", "%n", "%n%", "n_"):
            result = Like(Col("s"), pattern).eval(Batch({"s": arr}))
            assert result.tolist() == []

    def test_percent_escaping_not_supported_but_literal_safe(self):
        # regex metacharacters in the pattern are escaped, not compiled
        expr = Like(Col("s"), "a%c")  # '%' wildcard, 'a'/'c' literal
        assert expr.eval(batch()).tolist() == regex_reference("a%c")
        exact = Like(Col("s"), "a.c")  # '.' must not act as regex dot
        assert exact.eval(batch()).tolist() == regex_reference("a.c")


class TestCaching:
    def test_rename_reuses_compiled_pattern(self):
        first = Like(Col("s"), "n1%")
        renamed = first.rename({"s": "t"})
        assert renamed._regex is first._regex  # lru_cache hit
        assert renamed._kind == first._kind == "prefix"
