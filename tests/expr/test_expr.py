"""Unit tests for the expression engine: eval, keys, analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import DATE, FLOAT64, INT64, STRING, Schema
from repro.columnar.batch import Batch
from repro.columnar.types import date_to_days
from repro.errors import ExpressionError
from repro.expr import (AggSpec, And, Arith, Case, Cmp, Col, Func, InList,
                        Like, Lit, NEG_INF, Not, Or, POS_INF, implies,
                        profile_predicate, split_conjuncts)


@pytest.fixture
def batch():
    return Batch({
        "i": np.array([1, 2, 3, 4], dtype=np.int64),
        "f": np.array([1.5, -2.0, 0.0, 4.5]),
        "s": np.array(["apple", "pear", "plum", "melon"], dtype=object),
        "d": np.array([date_to_days(x) for x in
                       ("1995-01-15", "1995-12-31", "1996-06-01",
                        "1998-02-28")], dtype=np.int32),
    })


SCHEMA = Schema(["i", "f", "s", "d"], [INT64, FLOAT64, STRING, DATE])


class TestEval:
    def test_arith_division_is_float(self, batch):
        expr = Arith("/", Col("i"), Lit(2))
        assert expr.dtype(SCHEMA) is FLOAT64
        assert list(expr.eval(batch)) == [0.5, 1.0, 1.5, 2.0]

    def test_string_comparison(self, batch):
        mask = Cmp(">=", Col("s"), Lit("pear")).eval(batch)
        assert list(mask) == [False, True, True, False]

    def test_year_month_functions(self, batch):
        assert list(Func("year", [Col("d")]).eval(batch)) == \
            [1995, 1995, 1996, 1998]
        assert list(Func("month", [Col("d")]).eval(batch)) == [1, 12, 6, 2]
        assert list(Func("yearmonth", [Col("d")]).eval(batch)) == \
            [199501, 199512, 199606, 199802]

    def test_substr_and_startswith(self, batch):
        out = Func("substr", [Col("s"), Lit(1), Lit(2)]).eval(batch)
        assert list(out) == ["ap", "pe", "pl", "me"]
        mask = Func("startswith", [Col("s"), Lit("p")]).eval(batch)
        assert list(mask) == [False, True, True, False]

    def test_bin_function(self, batch):
        out = Func("bin", [Col("i"), Lit(2)]).eval(batch)
        assert list(out) == [0, 1, 1, 2]

    def test_like_wildcards(self, batch):
        assert list(Like(Col("s"), "p%").eval(batch)) == \
            [False, True, True, False]
        assert list(Like(Col("s"), "%l%").eval(batch)) == \
            [True, False, True, True]
        assert list(Like(Col("s"), "p__r").eval(batch)) == \
            [False, True, False, False]
        assert list(Like(Col("s"), "p%", negated=True).eval(batch)) == \
            [True, False, False, True]

    def test_case_promotes_numeric(self, batch):
        expr = Case([(Cmp(">", Col("f"), Lit(0.0)), Col("f"))], Lit(0))
        out = expr.eval(batch)
        assert out.dtype.kind == "f"
        assert list(out) == [1.5, 0.0, 0.0, 4.5]

    def test_case_first_match_wins(self, batch):
        expr = Case([(Cmp(">", Col("i"), Lit(1)), Lit(10)),
                     (Cmp(">", Col("i"), Lit(2)), Lit(20))], Lit(0))
        assert list(expr.eval(batch)) == [0, 10, 10, 10]

    def test_in_list(self, batch):
        assert list(InList(Col("s"), ["plum", "pear"]).eval(batch)) == \
            [False, True, True, False]

    def test_bad_function_arity(self):
        with pytest.raises(ExpressionError):
            Func("year", [Col("a"), Col("b")])
        with pytest.raises(ExpressionError):
            Func("nope", [Col("a")])


class TestCanonicalKeys:
    def test_commutative_equality(self):
        assert Cmp("=", Col("a"), Col("b")).key() == \
            Cmp("=", Col("b"), Col("a")).key()

    def test_inequality_normalization(self):
        assert Cmp("<", Col("a"), Lit(5)).key() == \
            Cmp(">", Lit(5), Col("a")).key()

    def test_and_order_insensitive(self):
        p = Cmp(">", Col("a"), Lit(1))
        q = Cmp("<", Col("b"), Lit(2))
        assert And([p, q]).key() == And([q, p]).key()

    def test_key_respects_mapping(self):
        expr = Cmp(">", Col("a"), Lit(1))
        assert expr.key({"a": "a@q1"}) == \
            Cmp(">", Col("a@q1"), Lit(1)).key()

    def test_skeleton_blanks_columns(self):
        a = Cmp(">", Col("x"), Lit(1)).skeleton()
        b = Cmp(">", Col("y"), Lit(1)).skeleton()
        assert a == b
        assert Col("x").skeleton() == Col("y").skeleton()

    def test_rename(self):
        expr = Arith("+", Col("a"), Col("b"))
        renamed = expr.rename({"a": "x"})
        assert renamed.columns() == frozenset({"x", "b"})

    def test_agg_spec_keys(self):
        a = AggSpec("sum", Col("v"), "s1")
        b = AggSpec("sum", Col("v"), "other_name")
        assert a.key() == b.key()  # names are not part of identity
        assert a.key({"v": "v@g"}) == \
            AggSpec("sum", Col("v@g"), "x").key()


class TestAnalysis:
    def test_split_conjuncts_flattens(self):
        pred = And([Cmp(">", Col("a"), Lit(1)),
                    And([Cmp("<", Col("a"), Lit(9)),
                         Cmp("=", Col("b"), Lit(2))])])
        assert len(split_conjuncts(pred)) == 3

    def test_profile_ranges(self):
        pred = And([Cmp(">=", Col("a"), Lit(1)),
                    Cmp("<", Col("a"), Lit(10)),
                    Cmp("=", Col("b"), Lit(5))])
        profile = profile_predicate(pred)
        a = profile.ranges["a"]
        assert (a.low, a.low_inclusive) == (1, True)
        assert (a.high, a.high_inclusive) == (10, False)
        assert profile.ranges["b"].values == frozenset([5])

    def test_profile_open_ranges(self):
        profile = profile_predicate(Cmp(">", Col("a"), Lit(3)))
        a = profile.ranges["a"]
        assert a.high is POS_INF
        assert a.low == 3 and not a.low_inclusive

    def test_residual_collected(self):
        pred = And([Cmp(">", Col("a"), Col("b")),
                    Cmp(">", Col("a"), Lit(1))])
        profile = profile_predicate(pred)
        assert len(profile.residual) == 1
        assert "a" in profile.ranges


class TestImplication:
    def test_tighter_range_implies_wider(self):
        narrow = And([Cmp(">=", Col("a"), Lit(5)),
                      Cmp("<=", Col("a"), Lit(6))])
        wide = And([Cmp(">=", Col("a"), Lit(0)),
                    Cmp("<=", Col("a"), Lit(10))])
        assert implies(narrow, wide)
        assert not implies(wide, narrow)

    def test_equality_implies_range(self):
        assert implies(Cmp("=", Col("a"), Lit(5)),
                       Cmp(">", Col("a"), Lit(0)))

    def test_in_subset(self):
        assert implies(InList(Col("a"), [1, 2]),
                       InList(Col("a"), [1, 2, 3]))
        assert not implies(InList(Col("a"), [1, 4]),
                           InList(Col("a"), [1, 2, 3]))

    def test_residual_must_match_exactly(self):
        join = Cmp("=", Col("a"), Col("b"))
        with_filter = And([join, Cmp(">", Col("a"), Lit(1))])
        assert implies(with_filter, join)
        assert not implies(Cmp(">", Col("a"), Lit(1)), join)

    def test_strict_vs_inclusive_bounds(self):
        strict = Cmp(">", Col("a"), Lit(5))
        inclusive = Cmp(">=", Col("a"), Lit(5))
        assert implies(strict, inclusive)
        assert not implies(inclusive, strict)

    def test_mapping_applied_to_stronger_side(self):
        narrow = Cmp(">", Col("x"), Lit(5))
        wide = Cmp(">", Col("x@g"), Lit(0))
        assert implies(narrow, wide, mapping={"x": "x@g"})
        assert not implies(narrow, wide)
