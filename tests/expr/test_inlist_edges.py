"""Regression tests: ``InList`` edge cases (empty lists, NOT IN, NaN).

The SQL battery surfaced two broken edges, pinned here at the
expression layer:

* ``x IN ()`` must be all-false and ``x NOT IN ()`` all-true — the
  empty list is a vacuous disjunction/conjunction, so even NaN rows
  pass ``NOT IN ()`` (no comparison ever happens, nothing is unknown);
* ``x NOT IN (v, ...)`` over a float column must *exclude* NaN rows —
  SQL's three-valued logic makes ``NULL NOT IN (...)`` unknown, and
  NaN is this engine's de-facto missing float.

Plus the fingerprint contract: a non-negated ``InList`` keys exactly as
it did before the ``negated`` flag existed, so recycler graph history
(and any persisted fingerprints) survive the extension.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import BOOL, FLOAT64, INT64, STRING, Schema
from repro.columnar.batch import Batch
from repro.expr import Col, InList

SCHEMA = Schema(["i", "f", "s"], [INT64, FLOAT64, STRING])


@pytest.fixture
def batch():
    return Batch({
        "i": np.array([1, 2, 3, 4], dtype=np.int64),
        "f": np.array([1.5, np.nan, 3.5, np.nan]),
        "s": np.array(["a", "b", "a", "c"], dtype=object),
    })


class TestEmptyList:
    def test_in_empty_is_all_false(self, batch):
        for col in ("i", "f", "s"):
            mask = InList(Col(col), ()).eval(batch)
            assert list(mask) == [False] * 4, col

    def test_not_in_empty_is_all_true_even_for_nan(self, batch):
        # vacuous truth: NaN rows included because no comparison ran
        for col in ("i", "f", "s"):
            mask = InList(Col(col), (), negated=True).eval(batch)
            assert list(mask) == [True] * 4, col

    def test_empty_list_dtype_is_bool(self):
        assert InList(Col("i"), ()).dtype(SCHEMA) is BOOL


class TestNotInNan:
    def test_not_in_excludes_nan_rows(self, batch):
        mask = InList(Col("f"), (1.5,), negated=True).eval(batch)
        assert list(mask) == [False, False, True, False]

    def test_not_in_non_matching_value_still_excludes_nan(self, batch):
        mask = InList(Col("f"), (99.0,), negated=True).eval(batch)
        assert list(mask) == [True, False, True, False]

    def test_in_never_matches_nan(self, batch):
        mask = InList(Col("f"), (float("nan"), 1.5)).eval(batch)
        assert list(mask) == [True, False, False, False]

    def test_int_not_in_is_plain_complement(self, batch):
        mask = InList(Col("i"), (2, 4), negated=True).eval(batch)
        assert list(mask) == [True, False, True, False]

    def test_string_not_in(self, batch):
        mask = InList(Col("s"), ("a",), negated=True).eval(batch)
        assert list(mask) == [False, True, False, True]


class TestFingerprints:
    def test_positive_key_is_backward_compatible(self):
        """The pre-``negated`` key format, byte for byte."""
        expr = InList(Col("i"), (3, 1, 2))
        assert expr.key() == ("in", Col("i").key(), (1, 2, 3))

    def test_negated_key_gets_suffix(self):
        expr = InList(Col("i"), (1, 2), negated=True)
        assert expr.key() == ("in", Col("i").key(), (1, 2), "not")

    def test_negation_changes_key(self):
        base = InList(Col("i"), (1, 2))
        assert base.key() != InList(Col("i"), (1, 2), negated=True).key()

    def test_empty_lists_key_distinctly(self):
        assert InList(Col("i"), ()).key() \
            != InList(Col("i"), (), negated=True).key()

    def test_rename_preserves_negation(self, batch):
        expr = InList(Col("x"), (1.5,), negated=True)
        renamed = expr.rename({"x": "f"})
        assert renamed.negated
        assert list(renamed.eval(batch)) == [False, False, True, False]

    def test_repr_mentions_not(self):
        assert "NOT IN" in repr(InList(Col("i"), (1,), negated=True))
        assert "NOT IN" not in repr(InList(Col("i"), (1,)))


class TestSubsumptionOpacity:
    def test_not_in_stays_out_of_range_analysis(self):
        """``NOT IN`` and empty ``IN`` must not be mistaken for range
        constraints by the subsumption analyzer."""
        from repro.expr import profile_predicate
        prof_pos = profile_predicate(InList(Col("i"), (1, 2)))
        prof_neg = profile_predicate(
            InList(Col("i"), (1, 2), negated=True))
        prof_empty = profile_predicate(InList(Col("i"), ()))
        # the positive non-empty list yields a usable column profile;
        # negated/empty forms must be strictly weaker (opaque)
        assert prof_pos != prof_neg
        assert prof_pos != prof_empty
