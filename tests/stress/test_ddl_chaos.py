"""DDL-chaos stress: online schema changes racing replayed query traffic.

Two complementary suites:

* **Deterministic replay** — the seeded-admission interleaver runs a
  16-session workload where stream 0 interleaves real DDL
  (``register_table`` / ``append_rows`` / ``drop_table``+recreate) with
  probe queries on the DDL'd table, while every other stream hammers
  static tables.  Per-stream order is preserved by every admission
  permutation, so the same DDL interleaving replays serially: every
  query's rows must be **byte-identical** to the serial run, with the
  recycler's version-tagged cache racing the DDL for real.

* **Torn-read hunt** (non-deterministic) — a writer thread swaps a
  self-describing table (every row of incarnation *v* carries ``ver ==
  v`` and each incarnation has a distinct row count) under concurrent
  reader sessions.  Snapshot isolation demands each observed result is
  *internally consistent* (``min(ver) == max(ver)``, count matching that
  incarnation — never a mix of old and new rows) and *per-session
  monotone* (a session can never travel back to an older incarnation —
  exactly what a stale cache entry served after DDL would look like).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from interleave import DeterministicInterleaver, serial_reference

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema

N_STREAMS = 16
SEEDS = (7, 1337)

BASE_SCHEMA = Schema(["g", "v"], [INT64, FLOAT64])
CHAOS_SCHEMA = Schema(["ver", "x"], [INT64, FLOAT64])

BASE_QUERIES = [
    "SELECT g, sum(v) AS s FROM base GROUP BY g",
    "SELECT g, count(*) AS c FROM base WHERE v > 0.5 GROUP BY g",
    "SELECT g, min(v) AS lo, max(v) AS hi FROM base GROUP BY g",
    "SELECT sum(v) AS total FROM base WHERE g < 8",
    "SELECT g, avg(v) AS m FROM base WHERE v < 0.25 GROUP BY g",
]

CHAOS_PROBE = ("SELECT min(ver) AS lo, max(ver) AS hi, count(*) AS n,"
               " sum(x) AS sx FROM chaos")


def chaos_table(version: int) -> Table:
    """Incarnation ``version``: every row tagged with it, distinct row
    count, deterministic payload."""
    n = 64 + 16 * version
    rng = np.random.default_rng(1000 + version)
    return Table(CHAOS_SCHEMA, {
        "ver": np.full(n, version, dtype=np.int64),
        "x": rng.uniform(0, 1, n)})


def chaos_rows(version: int) -> int:
    return 64 + 16 * version


def build_db(**config) -> Database:
    rng = np.random.default_rng(42)
    n = 20000
    db = Database(RecyclerConfig(mode="spec", **config))
    db.register_table("base", Table(BASE_SCHEMA, {
        "g": rng.integers(0, 16, n), "v": rng.uniform(0, 1, n)}))
    db.register_table("chaos", chaos_table(1))
    return db


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
def ddl_register(version: int):
    def unit(db, session):
        db.register_table("chaos", chaos_table(version))
        return [("register", version)]
    return unit


def ddl_append(version: int, tag: int):
    """Append more rows of the same incarnation tag (stays
    self-consistent: ``ver`` is uniform across old and new rows)."""
    def unit(db, session):
        extra = Table(CHAOS_SCHEMA, {
            "ver": np.full(8, version, dtype=np.int64),
            "x": np.full(8, float(tag))})
        db.append_rows("chaos", extra)
        return [("append", version, tag)]
    return unit


def ddl_drop_recreate(version: int):
    def unit(db, session):
        db.drop_table("chaos")
        db.register_table("chaos", chaos_table(version))
        return [("recreate", version)]
    return unit


def ddl_streams() -> list[list[object]]:
    """Stream 0 = DDL + probes (session-sequential, so the interleaving
    is identical in serial and concurrent runs); streams 1..N = static
    traffic with heavy overlap."""
    ddl_stream: list[object] = [
        CHAOS_PROBE,
        ddl_register(2),
        CHAOS_PROBE,
        ddl_append(2, tag=1),
        CHAOS_PROBE,
        ddl_drop_recreate(3),
        CHAOS_PROBE,
        ddl_register(4),
        ddl_append(4, tag=2),
        CHAOS_PROBE,
    ]
    streams = [ddl_stream]
    for stream_id in range(1, N_STREAMS):
        queries = [BASE_QUERIES[(stream_id + k) % len(BASE_QUERIES)]
                   for k in range(4)]
        streams.append(queries)
    return streams


@pytest.fixture(scope="module")
def ddl_setup():
    streams = ddl_streams()
    reference_db = build_db()
    reference = serial_reference(reference_db, streams)
    reference_db.close()
    return streams, reference


class TestDdlChaosReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_to_serial(self, ddl_setup, seed):
        streams, reference = ddl_setup
        db = build_db()
        runner = DeterministicInterleaver(db, seed=seed, slots=8)
        result = runner.run(streams)
        assert len(result.rows) == sum(len(s) for s in streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        # the recycler stayed consistent under DDL fire
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        assert len(db.recycler.inflight) == 0
        # no surviving cache entry is behind the live catalog
        live = db.catalog
        for entry in db.recycler.cache.entries():
            tables, functions = live.versions_for(
                entry.node.tables, entry.node.functions)
            assert entry.versions_match(tables, functions), entry.node
        summary = db.summary()["catalog"]
        assert summary["invalidations"] >= 5  # one per DDL unit
        db.close()

    def test_replay_with_background_maintenance(self, ddl_setup):
        """DDL chaos *and* aggressive truncation racing the traffic."""
        streams, reference = ddl_setup
        db = build_db(maintenance_idle_seconds=0.0,
                      maintenance_graph_node_limit=32,
                      truncate_min_idle_events=8)
        stop = threading.Event()
        errors: list[BaseException] = []

        def maintainer():
            try:
                while not stop.is_set():
                    db.maintain()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        chaos = threading.Thread(target=maintainer)
        chaos.start()
        try:
            runner = DeterministicInterleaver(db, seed=SEEDS[0], slots=8)
            result = runner.run(streams)
        finally:
            stop.set()
            chaos.join(timeout=10)
        assert not errors, errors
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        assert len(db.recycler.inflight) == 0
        db.close()


# ----------------------------------------------------------------------
# torn-read hunt
# ----------------------------------------------------------------------
class TestNoTornReads:
    N_READERS = 4
    N_SWAPS = 40

    def test_snapshots_never_mix_incarnations(self):
        db = build_db()
        writer_done = threading.Event()
        errors: list[str] = []
        error_lock = threading.Lock()

        def fail(message: str) -> None:
            with error_lock:
                errors.append(message)

        def writer():
            try:
                for version in range(2, 2 + self.N_SWAPS):
                    db.register_table("chaos", chaos_table(version))
            finally:
                writer_done.set()

        def reader(reader_id: int):
            last_seen = 0
            with db.connect() as session:
                while not (writer_done.is_set() and last_seen
                           >= 2 + self.N_SWAPS - 1):
                    rows = session.sql(CHAOS_PROBE).table.to_rows()
                    (lo, hi, n, _sx) = rows[0]
                    if lo != hi:
                        fail(f"reader {reader_id}: torn read"
                             f" lo={lo} hi={hi}")
                        return
                    if n != chaos_rows(lo):
                        fail(f"reader {reader_id}: incarnation {lo}"
                             f" with {n} rows (expected"
                             f" {chaos_rows(lo)}) — mixed result")
                        return
                    if lo < last_seen:
                        fail(f"reader {reader_id}: travelled back from"
                             f" incarnation {last_seen} to {lo} —"
                             f" stale cache entry served after DDL")
                        return
                    last_seen = lo
                    if writer_done.is_set() and \
                            last_seen >= 2 + self.N_SWAPS - 1:
                        return

        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(self.N_READERS)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=60)
        for thread in threads:
            thread.join(timeout=60)
        assert not writer_thread.is_alive()
        assert all(not t.is_alive() for t in threads)
        assert not errors, errors
        db.recycler.cache.check_invariants()
        db.recycler.graph.check_invariants()
        assert len(db.recycler.inflight) == 0
        db.close()
