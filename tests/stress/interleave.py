"""Deterministic interleaving driver for the stress suite.

Real-thread schedulers admit queries in whatever order the OS wakes
threads, which makes failures impossible to replay.  This driver pins
the *admission order* instead: a seeded RNG draws a permutation of the
workload that respects per-session order (a session is sequential, like
a DB-API connection), and a turnstile makes every run with the same
seed start queries in exactly that order.  Execution still overlaps for
real — the turnstile only serializes query *starts*, and an optional
slot semaphore caps simultaneous executions like the paper's query
slots — so the recycler's striped locks, in-flight blocking, and cache
admissions are exercised by genuine concurrency while the schedule
stays replayable.  Results must be byte-identical to a serial run for
*every* seed; the suite replays several.

DDL-chaos mode: a unit may be a **callable** ``unit(db, session) ->
rows`` instead of SQL — the DDL-chaos suite uses this for
``register_table``/``append_rows``/``drop_table`` operations and their
follow-up probes.  Per-stream order is preserved by every admission
permutation and a session is sequential, so a DDL unit and the queries
that depend on it stay ordered by putting them on one stream, while
every other stream races the DDL for real.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Sequence

from repro.db import Database


def seeded_admission_order(streams: Sequence[Sequence[object]],
                           seed: int) -> list[tuple[int, int]]:
    """A seeded topological shuffle of ``(stream, index)`` units: global
    order is pseudo-random, per-stream order is preserved."""
    rng = random.Random(seed)
    remaining = [len(stream) for stream in streams]
    cursors = [0] * len(streams)
    order: list[tuple[int, int]] = []
    active = [i for i, n in enumerate(remaining) if n]
    while active:
        stream_id = rng.choice(active)
        order.append((stream_id, cursors[stream_id]))
        cursors[stream_id] += 1
        remaining[stream_id] -= 1
        if not remaining[stream_id]:
            active.remove(stream_id)
    return order


@dataclass
class StressRunResult:
    """Per-query rows plus bookkeeping, keyed by ``(stream, index)``."""

    rows: dict[tuple[int, int], list] = field(default_factory=dict)
    admission_order: list[tuple[int, int]] = field(default_factory=list)
    stall_seconds: float = 0.0
    num_reused: int = 0
    num_materialized: int = 0


class DeterministicInterleaver:
    """Run one session per stream with a seeded admission turnstile."""

    def __init__(self, db: Database, seed: int,
                 slots: int | None = None, executor=None) -> None:
        self.db = db
        self.seed = seed
        self.slots = slots
        #: optional ShardRuntime — every stream session dispatches cold
        #: plans to worker processes (process-mode stress replay)
        self.executor = executor

    def run(self, streams: Sequence[Sequence[object]]) -> StressRunResult:
        order = seeded_admission_order(streams, self.seed)
        rank_of = {unit: rank for rank, unit in enumerate(order)}
        result = StressRunResult(admission_order=order)
        turnstile = threading.Condition()
        admitted = [0]  # next rank allowed to start
        slots = threading.BoundedSemaphore(self.slots) \
            if self.slots is not None else None
        result_lock = threading.Lock()
        errors: list[BaseException] = []

        def run_stream(stream_id: int) -> None:
            session = self.db.connect(executor=self.executor)
            try:
                for index, query in enumerate(streams[stream_id]):
                    rank = rank_of[(stream_id, index)]
                    with turnstile:
                        turnstile.wait_for(
                            lambda: admitted[0] >= rank, timeout=120)
                        assert admitted[0] == rank, \
                            f"turnstile out of order at rank {rank}"
                        admitted[0] += 1
                        turnstile.notify_all()
                    unit = getattr(query, "sql", query)
                    if callable(unit):
                        rows = unit(self.db, session)
                        with result_lock:
                            result.rows[(stream_id, index)] = rows
                        continue
                    if slots is not None:
                        with slots:
                            query_result = session.sql(unit)
                    else:
                        query_result = session.sql(unit)
                    record = session.records[-1]
                    with result_lock:
                        result.rows[(stream_id, index)] = \
                            query_result.table.to_rows()
                        result.stall_seconds += record.stall_seconds
                        result.num_reused += record.num_reused
                        result.num_materialized += record.num_materialized
            except BaseException as exc:  # surfaced after join
                with result_lock:
                    errors.append(exc)
                with turnstile:
                    # unblock the turnstile so the run fails fast
                    # instead of timing out rank by rank
                    admitted[0] = len(order)
                    turnstile.notify_all()
            finally:
                session.close()

        threads = [
            threading.Thread(target=run_stream, args=(stream_id,),
                             name=f"stress-stream-{stream_id}")
            for stream_id in range(len(streams))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return result


def serial_reference(db: Database, streams: Sequence[Sequence[object]]
                     ) -> dict[tuple[int, int], list]:
    """Every query's exact rows from a single serial session.

    Streams are drained in order — for DDL-chaos workloads this serial
    schedule applies the same per-stream DDL interleaving the concurrent
    run does (DDL and its dependent queries share a stream)."""
    reference: dict[tuple[int, int], list] = {}
    with db.connect() as session:
        for stream_id, stream in enumerate(streams):
            for index, query in enumerate(stream):
                unit = getattr(query, "sql", query)
                if callable(unit):
                    reference[(stream_id, index)] = unit(db, session)
                else:
                    reference[(stream_id, index)] = \
                        session.sql(unit).table.to_rows()
    return reference
