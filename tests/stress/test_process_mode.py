"""64-session replays through the process-sharded executor.

The acceptance bar for process-sharded execution mirrors the striped-
lock rewrite's: with every session routing cold plans to worker
processes (recycling decisions stay in the parent), a seeded 64-session
replay must be **byte-identical** to a serial single-session run — and
must stay byte-identical while a chaos thread kills workers mid-replay
(death → respawn → requeue is invisible to sessions).
"""

from __future__ import annotations

import pytest

from interleave import DeterministicInterleaver, serial_reference

from repro import Database, RecyclerConfig
from repro.workloads import skyserver, tpch

N_SESSIONS = 64
SEED = 7


def chunk(queries, n_streams):
    per = max(len(queries) // n_streams, 1)
    return [queries[i * per:(i + 1) * per] for i in range(n_streams)]


@pytest.fixture(scope="module")
def sky_setup():
    catalog_rows = 4000
    workload = skyserver.generate_workload(N_SESSIONS * 2)
    streams = chunk(workload, N_SESSIONS)
    reference_db = Database(
        RecyclerConfig(mode="spec"),
        catalog=skyserver.build_catalog(num_rows=catalog_rows))
    reference = serial_reference(reference_db, streams)
    reference_db.close()
    return catalog_rows, streams, reference


class TestSkyServerProcessMode:
    def test_byte_identical_to_serial(self, sky_setup):
        catalog_rows, streams, reference = sky_setup
        db = Database(RecyclerConfig(mode="spec"),
                      catalog=skyserver.build_catalog(num_rows=catalog_rows))
        runtime = db.shard_runtime(4)
        runner = DeterministicInterleaver(db, seed=SEED, slots=16,
                                          executor=runtime)
        result = runner.run(streams)
        assert len(result.rows) == sum(len(s) for s in streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        # both halves of the split actually engaged: cold plans went
        # remote, warm plans stayed local and reused
        assert runtime.stats["remote_queries"] > 0
        assert result.num_reused > 0
        assert len(db.recycler.inflight) == 0
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        db.close()

    def test_byte_identical_under_worker_kill_chaos(self, sky_setup):
        """Kill units interleaved into the replay SIGKILL every live
        worker mid-run; each is chased (same stream, so strictly after)
        by a fresh cold query that must trip over the dead workers.
        Respawn + requeue keeps every result byte-identical."""
        catalog_rows, base_streams, _ = sky_setup
        cell = [None]  # the chaos runtime; None during the reference run

        def kill_all_workers(db, session):
            runtime = cell[0]
            if runtime is not None:
                for worker in list(runtime._workers):
                    worker.process.kill()
                    worker.process.join(timeout=10)
            return []

        # distinct literals keep the probes cold (never reusable)
        probes = [f"SELECT count(*) AS c, min(modelmag_r) AS m"
                  f" FROM photoobj WHERE field > {100 + 7 * i}"
                  for i in range(6)]
        streams = [list(stream) for stream in base_streams]
        for i, probe in enumerate(probes):
            streams[i * 9] = [kill_all_workers, probe] + streams[i * 9]
        reference_db = Database(
            RecyclerConfig(mode="spec"),
            catalog=skyserver.build_catalog(num_rows=catalog_rows))
        reference = serial_reference(reference_db, streams)
        reference_db.close()

        db = Database(RecyclerConfig(mode="spec"),
                      catalog=skyserver.build_catalog(num_rows=catalog_rows))
        cell[0] = runtime = db.shard_runtime(4)
        runner = DeterministicInterleaver(db, seed=SEED, slots=16,
                                          executor=runtime)
        result = runner.run(streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        assert runtime.stats["worker_deaths"] > 0
        assert runtime.stats["requeues"] > 0
        assert len(db.recycler.inflight) == 0
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        db.close()


class TestTpchProcessMode:
    def test_byte_identical_to_serial(self):
        scale = 0.005
        streams = tpch.generate_streams(16, scale_factor=scale,
                                        patterns=[1, 3, 6, 10, 12])
        reference_db = Database(RecyclerConfig(mode="spec"),
                                catalog=tpch.build_catalog(scale_factor=scale))
        reference = serial_reference(reference_db, streams)
        reference_db.close()
        db = Database(RecyclerConfig(mode="spec"),
                      catalog=tpch.build_catalog(scale_factor=scale))
        runtime = db.shard_runtime(2)
        runner = DeterministicInterleaver(db, seed=SEED, slots=8,
                                          executor=runtime)
        result = runner.run(streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        assert runtime.stats["remote_queries"] > 0
        db.close()
