"""Stress-suite fixtures: paper workload mixes at test scale."""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Everything under tests/stress carries the ``stress`` marker so
    CI can shard it (``pytest -m stress``)."""
    for item in items:
        if "tests/stress" in str(item.fspath).replace("\\", "/"):
            item.add_marker(pytest.mark.stress)
