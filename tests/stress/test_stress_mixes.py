"""64-session stress replays: striped recycler vs. serial execution.

The acceptance bar for the striped-lock rewrite: under 64 concurrent
sessions admitting queries in seeded pseudo-random orders — SkyServer's
heavily-overlapping cone mix and a TPC-H pattern mix — every query's
result must be **byte-identical** to a serial single-session run, with
background maintenance racing the traffic.  Deterministic replay: the
seeds below fix the admission schedule (see ``interleave.py``), so a
failure reproduces.
"""

from __future__ import annotations

import threading

import pytest

from interleave import (DeterministicInterleaver, seeded_admission_order,
                        serial_reference)

from repro import Database, RecyclerConfig
from repro.workloads import skyserver, tpch

N_SESSIONS = 64
SEEDS = (7, 1337)


def chunk(queries, n_streams):
    per = max(len(queries) // n_streams, 1)
    return [queries[i * per:(i + 1) * per] for i in range(n_streams)]


@pytest.fixture(scope="module")
def sky_setup():
    catalog_rows = 4000
    workload = skyserver.generate_workload(N_SESSIONS * 2)
    streams = chunk(workload, N_SESSIONS)
    reference_db = Database(
        RecyclerConfig(mode="spec"),
        catalog=skyserver.build_catalog(num_rows=catalog_rows))
    reference = serial_reference(reference_db, streams)
    return catalog_rows, streams, reference


@pytest.fixture(scope="module")
def tpch_setup():
    scale = 0.005
    streams = tpch.generate_streams(N_SESSIONS, scale_factor=scale,
                                    patterns=[1, 3, 6, 10, 12])
    reference_db = Database(RecyclerConfig(mode="spec"),
                            catalog=tpch.build_catalog(scale_factor=scale))
    reference = serial_reference(reference_db, streams)
    return scale, streams, reference


def fresh_sky_db(catalog_rows, **config_kwargs):
    return Database(RecyclerConfig(mode="spec", **config_kwargs),
                    catalog=skyserver.build_catalog(num_rows=catalog_rows))


class TestAdmissionOrder:
    def test_seeded_order_is_reproducible(self):
        streams = [[0, 1, 2], [0, 1], [0]]
        first = seeded_admission_order(streams, seed=42)
        again = seeded_admission_order(streams, seed=42)
        other = seeded_admission_order(streams, seed=43)
        assert first == again
        assert first != other
        # per-stream order preserved in every permutation
        for order in (first, other):
            for stream_id in range(3):
                indexes = [i for s, i in order if s == stream_id]
                assert indexes == sorted(indexes)


class TestSkyServer64Sessions:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_to_serial(self, sky_setup, seed):
        catalog_rows, streams, reference = sky_setup
        db = fresh_sky_db(catalog_rows)
        runner = DeterministicInterleaver(db, seed=seed, slots=16)
        result = runner.run(streams)
        assert len(result.rows) == sum(len(s) for s in streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        # the shared-result machinery engaged under contention
        assert result.num_reused > 0
        assert len(db.recycler.inflight) == 0
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        db.close()

    def test_identical_with_background_maintenance(self, sky_setup):
        """Maintenance racing 64 sessions (aggressive truncation every
        cycle) must not change a single byte."""
        catalog_rows, streams, reference = sky_setup
        db = fresh_sky_db(catalog_rows,
                          maintenance_idle_seconds=0.0,
                          maintenance_graph_node_limit=32,
                          truncate_min_idle_events=8)
        stop = threading.Event()
        errors: list[BaseException] = []

        def maintainer():
            try:
                while not stop.is_set():
                    db.maintain()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        chaos = threading.Thread(target=maintainer)
        chaos.start()
        try:
            runner = DeterministicInterleaver(db, seed=SEEDS[0], slots=16)
            result = runner.run(streams)
        finally:
            stop.set()
            chaos.join(timeout=10)
        assert not errors, errors
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        assert len(db.recycler.inflight) == 0
        db.close()


class TestTpch64Sessions:
    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_byte_identical_to_serial(self, tpch_setup, seed):
        scale, streams, reference = tpch_setup
        db = Database(RecyclerConfig(mode="spec"),
                      catalog=tpch.build_catalog(scale_factor=scale))
        runner = DeterministicInterleaver(db, seed=seed, slots=16)
        result = runner.run(streams)
        assert len(result.rows) == sum(len(s) for s in streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        assert result.num_reused > 0
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        assert len(db.recycler.inflight) == 0
        db.close()

    def test_coarse_baseline_identical(self, tpch_setup):
        """lock_stripes=1 (the PR 1 coarse lock) must agree byte-for-
        byte with the striped default — same workload, same seed."""
        scale, streams, reference = tpch_setup
        db = Database(RecyclerConfig(mode="spec", lock_stripes=1),
                      catalog=tpch.build_catalog(scale_factor=scale))
        runner = DeterministicInterleaver(db, seed=SEEDS[0], slots=16)
        result = runner.run(streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        db.close()
