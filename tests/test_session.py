"""Tests for the session/connection API (db.connect / db.pool)."""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro import Database, QueryCancelled, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64
from repro.session import SessionError


@pytest.fixture
def db():
    rng = np.random.default_rng(11)
    n = 20000
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    return db


QUERY = "SELECT g, sum(v) AS s FROM t WHERE v > 0.5 GROUP BY g"


class TestSession:
    def test_connect_and_query(self, db):
        with db.connect() as session:
            result = session.sql(QUERY, label="first")
            assert result.table.num_rows > 0
            assert len(session.records) == 1
            assert session.records[0].label == "first"
        assert session.closed
        with pytest.raises(SessionError):
            session.sql(QUERY)

    def test_sessions_share_the_recycler(self, db):
        with db.connect() as one, db.connect() as two:
            assert one.session_id != two.session_id
            first = one.sql(QUERY)
            second = two.sql(QUERY)
            assert second.table.to_rows() == first.table.to_rows()
            assert two.records[-1].num_reused >= 1
            # per-session logs stay separate; the recycler log merges
            assert len(one.records) == len(two.records) == 1
            assert db.summary()["queries"] == 2

    def test_session_summary(self, db):
        with db.connect() as session:
            session.sql(QUERY)
            session.sql(QUERY)
            summary = session.summary()
        assert summary["queries"] == 2
        assert summary["num_reused"] == 1
        assert summary["total_cost"] > 0

    def test_plain_db_sql_still_works(self, db):
        assert db.sql(QUERY).table.num_rows > 0


class TestSessionPool:
    def test_run_preserves_order(self, db):
        queries = [f"SELECT g, sum(v) AS s FROM t WHERE v > 0.{d}"
                   f" GROUP BY g" for d in (1, 2, 3)] * 2
        expected = [db.sql(sql).table.to_rows() for sql in queries]
        with db.pool(workers=3) as pool:
            results = pool.run(queries)
        assert [r.table.to_rows() for r in results] == expected

    def test_submit_future(self, db):
        with db.pool(workers=2) as pool:
            future = pool.submit(QUERY, label="bg")
            assert future.result().table.num_rows > 0

    def test_pool_summary_merges_sessions(self, db):
        with db.pool(workers=2) as pool:
            pool.run([QUERY] * 6)
            summary = pool.summary()
        assert summary["queries"] == 6
        assert 1 <= summary["sessions"] <= 2
        assert sum(s["queries"] for s in summary["per_session"]) == 6
        assert summary["recycler"]["queries"] == 6

    def test_closed_pool_rejects_work(self, db):
        pool = db.pool(workers=1)
        pool.close()
        with pytest.raises(SessionError):
            pool.submit(QUERY)

    def test_invalid_worker_count(self, db):
        with pytest.raises(SessionError):
            db.pool(workers=0)

    def test_plan_objects_accepted(self, db):
        plan = db.plan(QUERY)
        with db.pool(workers=2) as pool:
            results = pool.run([plan, QUERY])
        assert results[0].table.to_rows() == results[1].table.to_rows()


class TestPoolShutdownMidQuery:
    """Pool shutdown while queries are queued or executing: records
    still merge, stall-second accounting stays consistent, and nothing
    is left registered in the in-flight registry."""

    def queries(self, n):
        return [f"SELECT g, sum(v) AS s FROM t WHERE v > 0.{1 + i % 8}"
                f" GROUP BY g" for i in range(n)]

    def test_close_mid_queue_merges_records(self, db):
        pool = db.pool(workers=2)
        futures = [pool.submit(sql) for sql in self.queries(10)]
        # close immediately: in-flight and queued work drains (wait=True)
        pool.close(wait=True)
        results = [f.result() for f in futures]
        assert len(results) == 10
        summary = pool.summary()
        assert summary["queries"] == 10
        per_session = sum(s["queries"] for s in summary["per_session"])
        assert per_session == 10
        assert summary["stall_seconds"] == pytest.approx(
            sum(s["stall_seconds"] for s in summary["per_session"]))
        assert len(db.recycler.inflight) == 0

    def test_cancel_pending_drops_queue_keeps_accounting(self, db):
        pool = db.pool(workers=1)
        futures = [pool.submit(sql) for sql in self.queries(8)]
        pool.close(wait=True, cancel_pending=True)
        # three outcomes now: never started (CancelledError), finished
        # before the cancel landed, or aborted mid-execution
        cancelled = [f for f in futures if f.cancelled()]
        started = [f for f in futures if not f.cancelled()]
        completed = [f for f in started if f.exception() is None]
        aborted = [f for f in started if f.exception() is not None]
        assert len(cancelled) + len(completed) + len(aborted) == 8
        for future in cancelled:
            with pytest.raises(CancelledError):
                future.result()
        for future in aborted:
            assert isinstance(future.exception(), QueryCancelled)
        # every completed query is fully recorded, with its stall time;
        # aborted queries leave no record
        summary = pool.summary()
        assert summary["queries"] == len(completed)
        records = [r for s in pool.sessions() for r in s.records]
        assert len(records) == len(completed)
        assert all(r.stall_seconds >= 0.0 for r in records)
        # a cancelled shutdown leaves no in-flight registrations behind
        assert len(db.recycler.inflight) == 0

    def test_cancelled_session_query_aborts_or_completes(self, db):
        expected = db.sql(QUERY).table.to_rows()
        session = db.connect()
        started = threading.Event()
        outcome = []

        def run():
            started.set()
            try:
                outcome.append(("ok", session.sql(QUERY).table.to_rows()))
            except QueryCancelled:
                outcome.append(("cancelled", None))

        thread = threading.Thread(target=run)
        thread.start()
        assert started.wait(timeout=5)
        session.cancel()  # races the query: either order must be safe
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert outcome
        kind, rows = outcome[0]
        if kind == "ok":  # the query won the race and finished
            assert rows == expected
            assert len(session.records) == 1
        else:  # aborted mid-execution: no record, no side effects
            assert len(session.records) == 0
        assert len(db.recycler.inflight) == 0
        session.close()

    def test_cancel_without_active_query(self, db):
        with db.connect() as session:
            assert session.cancel() is False

    def test_stall_accounting_merges_after_shutdown(self, db):
        # overlapping identical queries force in-flight sharing, so some
        # session blocks; its stall seconds must survive the shutdown
        with db.pool(workers=4) as pool:
            pool.run([QUERY] * 12)
            summary = pool.summary()
        assert summary["queries"] == 12
        total = sum(r.stall_seconds
                    for s in pool.sessions() for r in s.records)
        assert summary["stall_seconds"] == pytest.approx(total)
        assert summary["recycler"]["total_stall_seconds"] == \
            pytest.approx(total)
        assert len(db.recycler.inflight) == 0
