"""Tests for the session/connection API (db.connect / db.pool)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64
from repro.session import SessionError


@pytest.fixture
def db():
    rng = np.random.default_rng(11)
    n = 20000
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    return db


QUERY = "SELECT g, sum(v) AS s FROM t WHERE v > 0.5 GROUP BY g"


class TestSession:
    def test_connect_and_query(self, db):
        with db.connect() as session:
            result = session.sql(QUERY, label="first")
            assert result.table.num_rows > 0
            assert len(session.records) == 1
            assert session.records[0].label == "first"
        assert session.closed
        with pytest.raises(SessionError):
            session.sql(QUERY)

    def test_sessions_share_the_recycler(self, db):
        with db.connect() as one, db.connect() as two:
            assert one.session_id != two.session_id
            first = one.sql(QUERY)
            second = two.sql(QUERY)
            assert second.table.to_rows() == first.table.to_rows()
            assert two.records[-1].num_reused >= 1
            # per-session logs stay separate; the recycler log merges
            assert len(one.records) == len(two.records) == 1
            assert db.summary()["queries"] == 2

    def test_session_summary(self, db):
        with db.connect() as session:
            session.sql(QUERY)
            session.sql(QUERY)
            summary = session.summary()
        assert summary["queries"] == 2
        assert summary["num_reused"] == 1
        assert summary["total_cost"] > 0

    def test_plain_db_sql_still_works(self, db):
        assert db.sql(QUERY).table.num_rows > 0


class TestSessionPool:
    def test_run_preserves_order(self, db):
        queries = [f"SELECT g, sum(v) AS s FROM t WHERE v > 0.{d}"
                   f" GROUP BY g" for d in (1, 2, 3)] * 2
        expected = [db.sql(sql).table.to_rows() for sql in queries]
        with db.pool(workers=3) as pool:
            results = pool.run(queries)
        assert [r.table.to_rows() for r in results] == expected

    def test_submit_future(self, db):
        with db.pool(workers=2) as pool:
            future = pool.submit(QUERY, label="bg")
            assert future.result().table.num_rows > 0

    def test_pool_summary_merges_sessions(self, db):
        with db.pool(workers=2) as pool:
            pool.run([QUERY] * 6)
            summary = pool.summary()
        assert summary["queries"] == 6
        assert 1 <= summary["sessions"] <= 2
        assert sum(s["queries"] for s in summary["per_session"]) == 6
        assert summary["recycler"]["queries"] == 6

    def test_closed_pool_rejects_work(self, db):
        pool = db.pool(workers=1)
        pool.close()
        with pytest.raises(SessionError):
            pool.submit(QUERY)

    def test_invalid_worker_count(self, db):
        with pytest.raises(SessionError):
            db.pool(workers=0)

    def test_plan_objects_accepted(self, db):
        plan = db.plan(QUERY)
        with db.pool(workers=2) as pool:
            results = pool.run([plan, QUERY])
        assert results[0].table.to_rows() == results[1].table.to_rows()
