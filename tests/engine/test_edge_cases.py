"""Engine edge cases: empty inputs, tiny vectors, degenerate shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import Catalog, FLOAT64, INT64, STRING, Table
from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.plan import q


@pytest.fixture
def empty_catalog():
    catalog = Catalog()
    catalog.register_table("empty", Table.from_rows(
        ["k", "v", "s"], [INT64, FLOAT64, STRING], []))
    catalog.register_table("one", Table.from_rows(
        ["k", "v"], [INT64, FLOAT64], [(1, 2.0)]))
    return catalog


class TestEmptyInputs:
    def test_scan_empty(self, empty_catalog):
        result = execute_plan(q.scan("empty", ["k"]).build(),
                              empty_catalog)
        assert result.table.num_rows == 0

    def test_filter_empty(self, empty_catalog):
        plan = (q.scan("empty", ["k", "v"])
                 .filter(Cmp(">", Col("v"), Lit(0.0)))
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_group_by_empty_is_empty(self, empty_catalog):
        plan = (q.scan("empty", ["k", "v"])
                 .aggregate(keys=["k"], aggs=[("sum", Col("v"), "s")])
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_join_empty_build_side(self, empty_catalog):
        plan = (q.scan("one", ["k", "v"])
                 .join(q.scan("empty", ["k", "s"])
                        .project([("k2", Col("k")), "s"]),
                       on=[("k", "k2")])
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_anti_join_empty_build_keeps_all(self, empty_catalog):
        plan = (q.scan("one", ["k", "v"])
                 .anti_join(q.scan("empty", ["k", "s"])
                             .project([("k2", Col("k")), "s"]),
                            on=[("k", "k2")])
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 1

    def test_join_empty_probe_side(self, empty_catalog):
        plan = (q.scan("empty", ["k", "v"])
                 .join(q.scan("one", ["k", "v"])
                        .project([("k2", Col("k")), ("v2", Col("v"))]),
                       on=[("k", "k2")])
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_topn_empty(self, empty_catalog):
        plan = (q.scan("empty", ["k", "v"])
                 .top_n([("v", False)], limit=5)
                 .build())
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_sort_empty(self, empty_catalog):
        plan = q.scan("empty", ["k"]).sort(["k"]).build()
        assert execute_plan(plan, empty_catalog).table.num_rows == 0

    def test_distinct_empty(self, empty_catalog):
        plan = q.scan("empty", ["s"]).distinct().build()
        assert execute_plan(plan, empty_catalog).table.num_rows == 0


class TestDegenerateShapes:
    def test_vector_size_one(self, sales_catalog):
        plan = (q.scan("sales", ["product", "quantity"])
                 .aggregate(keys=["product"],
                            aggs=[("sum", Col("quantity"), "t")])
                 .build())
        small = execute_plan(plan, sales_catalog, vector_size=1)
        normal = execute_plan(plan, sales_catalog)
        assert small.table.sorted_rows() == normal.table.sorted_rows()

    def test_limit_zero(self, sales_catalog):
        plan = q.scan("sales", ["sale_id"]).limit(0).build()
        assert execute_plan(plan, sales_catalog).table.num_rows == 0

    def test_offset_past_end(self, sales_catalog):
        plan = q.scan("sales", ["sale_id"]).limit(5, offset=100).build()
        assert execute_plan(plan, sales_catalog).table.num_rows == 0

    def test_topn_limit_exceeds_input(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id"])
                 .top_n([("sale_id", True)], limit=1000)
                 .build())
        assert execute_plan(plan, sales_catalog).table.num_rows == 8

    def test_semi_join_against_aggregate(self, empty_catalog):
        a = (q.scan("one", ["k", "v"])
              .aggregate(keys=[("k2", Col("k"))],
                         aggs=[("sum", Col("v"), "sv")]))
        plan = (q.scan("one", ["k", "v"])
                 .semi_join(a, on=[("k", "k2")],
                            extra=Cmp("<=", Col("v"), Col("sv")))
                 .build())
        result = execute_plan(plan, empty_catalog)
        assert result.table.num_rows == 1

    def test_all_rows_one_group(self, wide_catalog):
        plan = (q.scan("wide", ["flag", "val"])
                 .filter(Cmp("=", Col("flag"), Lit("even")))
                 .aggregate(keys=["flag"],
                            aggs=[("count_star", None, "n")])
                 .build())
        result = execute_plan(plan, wide_catalog)
        assert result.table.num_rows == 1
        assert result.table.column("n")[0] == 2500

    def test_duplicate_key_join_explosion_guarded(self, empty_catalog):
        # 1-row table joined to itself on a constant-free key: 1x1
        one = q.scan("one", ["k"]).project([("k2", Col("k"))])
        plan = q.scan("one", ["k"]).join(one, on=[("k", "k2")]).build()
        result = execute_plan(plan, empty_catalog)
        assert result.table.num_rows == 1


class TestRecyclerWithEmptyResults:
    def test_empty_result_cached_and_reused(self, empty_catalog):
        from repro.recycler import Recycler, RecyclerConfig
        recycler = Recycler(empty_catalog, RecyclerConfig(
            mode="spec", speculation_min_cost=0.0))
        plan = (q.scan("empty", ["k", "v"])
                 .aggregate(keys=["k"], aggs=[("sum", Col("v"), "s")])
                 .build())
        first = recycler.execute(plan)
        assert first.table.num_rows == 0
        second = recycler.execute(
            (q.scan("empty", ["k", "v"])
              .aggregate(keys=["k"], aggs=[("sum", Col("v"), "s")])
              .build()))
        assert second.table.num_rows == 0
