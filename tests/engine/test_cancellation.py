"""Cooperative cancellation at the engine layer.

Deterministic, single-threaded: a counting predicate trips the query's
:class:`~repro.engine.cancellation.CancellationToken` after a chosen
number of batches, so the tests can assert the *exact* batch the abort
lands on — in particular that a cancelled run executes strictly fewer
batches than the uncancelled run (the PR's acceptance criterion).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import (CancellationToken, MODE_MATERIALIZE,
                          StoreRequest, execute_plan)
from repro.errors import QueryCancelled, QueryTimeout
from repro.plan.logical import Join, Limit, Scan, Select, Sort

#: 5000-row ``wide`` fixture table / 250 = 20 batches per full run
VECTOR = 250
FULL_BATCHES = 20


class CountingPredicate:
    """Always-true filter predicate that counts per-batch evaluations
    and can trip a cancellation token at a chosen call."""

    def __init__(self, token: CancellationToken | None = None,
                 cancel_at: int | None = None,
                 sleep: float = 0.0) -> None:
        self.calls = 0
        self.token = token
        self.cancel_at = cancel_at
        self.sleep = sleep

    def eval(self, batch) -> np.ndarray:
        self.calls += 1
        if self.sleep:
            time.sleep(self.sleep)
        if self.cancel_at is not None and self.calls >= self.cancel_at:
            self.token.cancel()
        return np.ones(len(batch), dtype=bool)


def filtered_scan(predicate) -> Select:
    return Select(Scan("wide", ["k", "grp", "val"]), predicate)


class TestCancellationToken:
    def test_cancel_trips_check(self):
        token = CancellationToken()
        token.check()  # live token passes
        assert not token.aborted
        token.cancel()
        assert token.cancelled and token.aborted
        with pytest.raises(QueryCancelled):
            token.check()

    def test_deadline_expiry(self):
        token = CancellationToken(timeout=0.0)
        assert token.expired and token.aborted and not token.cancelled
        with pytest.raises(QueryTimeout):
            token.check()
        assert CancellationToken(timeout=60.0).remaining() > 0

    def test_earlier_of_deadline_and_timeout_wins(self):
        past = time.monotonic() - 1.0
        assert CancellationToken(deadline=past, timeout=60.0).expired
        assert CancellationToken(deadline=time.monotonic() + 60.0,
                                 timeout=0.0).expired

    def test_bound_timeout(self):
        assert CancellationToken().bound_timeout(5.0) == 5.0
        assert CancellationToken().bound_timeout(None) is None
        token = CancellationToken(timeout=1.0)
        assert token.bound_timeout(None) <= 1.0
        assert token.bound_timeout(30.0) <= 1.0
        assert token.bound_timeout(0.1) <= 0.1


class TestExecutorAbort:
    def test_cancel_stops_within_one_batch(self, wide_catalog):
        # uncancelled baseline: every batch is evaluated
        baseline = CountingPredicate()
        result = execute_plan(filtered_scan(baseline), wide_catalog,
                              vector_size=VECTOR)
        assert baseline.calls == FULL_BATCHES
        assert result.table.num_rows == 5000

        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=3)
        with pytest.raises(QueryCancelled):
            execute_plan(filtered_scan(predicate), wide_catalog,
                         vector_size=VECTOR, token=token)
        # the batch that tripped the token was the last one executed:
        # strictly fewer batches than the uncancelled run
        assert predicate.calls == 3
        assert predicate.calls < baseline.calls

    def test_cancel_mid_blocking_sort(self, wide_catalog):
        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=4)
        plan = Sort(filtered_scan(predicate), [("val", True)])
        with pytest.raises(QueryCancelled):
            execute_plan(plan, wide_catalog, vector_size=VECTOR,
                         token=token)
        assert predicate.calls == 4 < FULL_BATCHES

    def test_cancel_mid_join_build(self, wide_catalog):
        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=2)
        plan = Join(Scan("wide", ["k"]),
                    Select(Scan("wide", ["grp", "val"]), predicate),
                    "inner", ["k"], ["grp"])
        with pytest.raises(QueryCancelled):
            execute_plan(plan, wide_catalog, vector_size=VECTOR,
                         token=token)
        # the build side aborts before the probe side is ever pulled
        assert predicate.calls == 2 < FULL_BATCHES

    def test_expired_deadline_stops_before_first_batch(self, wide_catalog):
        predicate = CountingPredicate()
        with pytest.raises(QueryTimeout):
            execute_plan(filtered_scan(predicate), wide_catalog,
                         vector_size=VECTOR,
                         token=CancellationToken(timeout=0.0))
        assert predicate.calls == 0 < FULL_BATCHES

    def test_deadline_expires_mid_run(self, wide_catalog):
        # ~20 ms per batch against a 50 ms deadline: expires after a few
        # batches, far from the 20-batch full run even under CI jitter
        predicate = CountingPredicate(sleep=0.02)
        with pytest.raises(QueryTimeout):
            execute_plan(filtered_scan(predicate), wide_catalog,
                         vector_size=VECTOR,
                         token=CancellationToken(timeout=0.05))
        assert 0 < predicate.calls < FULL_BATCHES


class TestStoreAbort:
    """An aborted producer must never publish, and must release its
    in-flight registration via ``on_abort``."""

    def run_with_store(self, catalog, predicate, token=None):
        completed: list[object] = []
        aborted: list[object] = []
        plan = filtered_scan(predicate)
        request = StoreRequest(
            mode=MODE_MATERIALIZE, tag="node",
            on_complete=lambda table, stats, tag: completed.append(
                (tag, table.num_rows)),
            on_abort=aborted.append)
        stores = {id(plan): request}
        result = execute_plan(plan, catalog, stores=stores,
                              vector_size=VECTOR, token=token)
        return result, completed, aborted

    def test_completed_store_publishes_once(self, wide_catalog):
        _, completed, aborted = self.run_with_store(
            wide_catalog, CountingPredicate())
        assert completed == [("node", 5000)]
        assert aborted == []

    def test_cancelled_store_aborts_instead_of_draining(self, wide_catalog):
        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=3)
        with pytest.raises(QueryCancelled):
            self.run_with_store(wide_catalog, predicate, token=token)
        # teardown did NOT drain the child to feed the cache
        assert predicate.calls == 3 < FULL_BATCHES

    def test_abort_during_open_still_fires_on_abort(self, wide_catalog):
        # a deadline can expire before the first batch (e.g. while a
        # table function runs in _open): the tree must still be closed
        # so the store releases its registration
        completed: list[object] = []
        aborted: list[object] = []
        plan = filtered_scan(CountingPredicate())
        request = StoreRequest(
            mode=MODE_MATERIALIZE, tag="node",
            on_complete=lambda table, stats, tag: completed.append(tag),
            on_abort=aborted.append)
        with pytest.raises(QueryTimeout):
            execute_plan(plan, wide_catalog, stores={id(plan): request},
                         vector_size=VECTOR,
                         token=CancellationToken(timeout=0.0))
        assert completed == []
        assert aborted == ["node"]

    def test_cancelled_store_fires_on_abort(self, wide_catalog):
        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=3)
        completed: list[object] = []
        aborted: list[object] = []
        plan = filtered_scan(predicate)
        request = StoreRequest(
            mode=MODE_MATERIALIZE, tag="node",
            on_complete=lambda table, stats, tag: completed.append(tag),
            on_abort=aborted.append)
        with pytest.raises(QueryCancelled):
            execute_plan(plan, wide_catalog, stores={id(plan): request},
                         vector_size=VECTOR, token=token)
        assert completed == []
        assert aborted == ["node"]

    def test_abort_during_close_drain_keeps_finished_result(
            self, wide_catalog):
        # a Limit stops pulling after one batch; the store below it
        # then drains its child at close time to feed the cache.  A
        # token tripped during that drain must abort the *store*, not
        # the query — the answer is already complete.
        token = CancellationToken()
        predicate = CountingPredicate(token, cancel_at=2)
        completed: list[object] = []
        aborted: list[object] = []
        inner = filtered_scan(predicate)
        request = StoreRequest(
            mode=MODE_MATERIALIZE, tag="node",
            on_complete=lambda table, stats, tag: completed.append(tag),
            on_abort=aborted.append)
        plan = Limit(inner, limit=VECTOR)
        result = execute_plan(plan, wide_catalog,
                              stores={id(inner): request},
                              vector_size=VECTOR, token=token)
        # the query's own result survived the mid-drain abort...
        assert result.table.num_rows == VECTOR
        # ...while the store gave up instead of publishing a partial
        # (or deadline-busting) materialization
        assert completed == []
        assert aborted == ["node"]
