"""_BuildIndex parity: the packed radix path vs. a brute-force oracle.

The vectorized index must produce *exactly* the matches — and in
exactly the order — of the per-row dict it replaced: probe-major, build
matches in build order.  The oracle below is that dict, re-implemented
in ten lines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.batch import Batch
from repro.engine import join as join_mod
from repro.engine.join import _BuildIndex


def oracle_probe(build: Batch, probe_arrays, keys):
    """Per-row dict lookup: the pre-vectorization reference semantics."""
    index: dict = {}
    build_arrays = [build.column(k) for k in keys]
    for row in range(len(build)):
        key = tuple(arr[row] for arr in build_arrays)
        index.setdefault(key, []).append(row)
    probe_pos, build_pos = [], []
    for row in range(len(probe_arrays[0])):
        key = tuple(arr[row] for arr in probe_arrays)
        for match in index.get(key, ()):
            probe_pos.append(row)
            build_pos.append(match)
    return probe_pos, build_pos


def assert_parity(build, probe_arrays, keys):
    probe_pos, build_pos = _BuildIndex(build, keys).probe(probe_arrays)
    expect_probe, expect_build = oracle_probe(build, probe_arrays, keys)
    assert probe_pos.tolist() == expect_probe
    assert build_pos.tolist() == expect_build


class TestSingleKey:
    def test_int_duplicates_preserve_build_order(self):
        build = Batch({"k": np.array([3, 1, 3, 2, 3], dtype=np.int64)})
        assert_parity(build, [np.array([3, 9, 1], dtype=np.int64)], ["k"])

    def test_string_key_goes_through_packing(self):
        build = Batch({"k": np.array(["b", "a", "b", "c"], dtype=object)})
        probe = [np.array(["b", "z", "a", "b"], dtype=object)]
        assert_parity(build, probe, ["k"])

    def test_float_key_and_nan_never_matches(self):
        build = Batch({"k": np.array([1.5, np.nan, 2.5])})
        probe = [np.array([np.nan, 1.5, 2.5, 3.5])]
        probe_pos, build_pos = _BuildIndex(build, ["k"]).probe(probe)
        # NaN != NaN: probe row 0 finds nothing, like dict lookups of
        # fresh float objects never did
        assert probe_pos.tolist() == [1, 2]
        assert build_pos.tolist() == [0, 2]

    def test_empty_build_side(self):
        build = Batch({"k": np.array([], dtype=np.int64)})
        probe_pos, build_pos = _BuildIndex(build, ["k"]).probe(
            [np.array([1, 2], dtype=np.int64)])
        assert len(probe_pos) == 0 and len(build_pos) == 0

    def test_empty_string_build_side(self):
        build = Batch({"k": np.array([], dtype=object)})
        probe_pos, _ = _BuildIndex(build, ["k"]).probe(
            [np.array(["x"], dtype=object)])
        assert len(probe_pos) == 0


class TestMultiKey:
    def test_two_int_keys(self):
        rng = np.random.default_rng(11)
        build = Batch({"a": rng.integers(0, 5, 40),
                       "b": rng.integers(0, 5, 40)})
        probe = [rng.integers(0, 6, 25), rng.integers(0, 6, 25)]
        assert_parity(build, probe, ["a", "b"])

    def test_mixed_int_string_keys(self):
        rng = np.random.default_rng(12)
        names = np.array(["x", "y", "z"], dtype=object)
        build = Batch({"a": rng.integers(0, 4, 30),
                       "s": names[rng.integers(0, 3, 30)]})
        probe_names = np.array(["x", "y", "w"], dtype=object)
        probe = [rng.integers(0, 5, 20),
                 probe_names[rng.integers(0, 3, 20)]]
        assert_parity(build, probe, ["a", "s"])

    def test_three_keys(self):
        rng = np.random.default_rng(13)
        build = Batch({"a": rng.integers(0, 3, 50),
                       "b": rng.integers(0, 3, 50),
                       "c": rng.integers(0, 3, 50)})
        probe = [rng.integers(0, 4, 30) for _ in range(3)]
        assert_parity(build, probe, ["a", "b", "c"])

    def test_no_cross_column_aliasing(self):
        # (1, 2) must not match (2, 1): packing is injective
        build = Batch({"a": np.array([1, 2], dtype=np.int64),
                       "b": np.array([2, 1], dtype=np.int64)})
        probe = [np.array([2], dtype=np.int64),
                 np.array([1], dtype=np.int64)]
        probe_pos, build_pos = _BuildIndex(build, ["a", "b"]).probe(probe)
        assert probe_pos.tolist() == [0]
        assert build_pos.tolist() == [1]


class TestRedensify:
    def test_forced_redensify_keeps_parity(self, monkeypatch):
        """With the radix limit squashed to 1 every column boundary
        re-densifies; results must not change."""
        monkeypatch.setattr(join_mod, "_RADIX_LIMIT", 1)
        rng = np.random.default_rng(21)
        build = Batch({"a": rng.integers(0, 7, 60),
                       "b": rng.integers(0, 7, 60),
                       "c": rng.integers(0, 7, 60)})
        probe = [rng.integers(0, 8, 40) for _ in range(3)]
        assert_parity(build, probe, ["a", "b", "c"])
        index = _BuildIndex(build, ["a", "b", "c"])
        assert any(p is not None for p in index._redensify)

    def test_default_limit_avoids_redensify_for_small_keys(self):
        rng = np.random.default_rng(22)
        build = Batch({"a": rng.integers(0, 7, 60),
                       "b": rng.integers(0, 7, 60)})
        index = _BuildIndex(build, ["a", "b"])
        assert index._redensify == [None]


@pytest.mark.parametrize("seed", range(5))
def test_randomized_parity(seed):
    rng = np.random.default_rng(seed)
    n_build, n_probe = rng.integers(0, 80), rng.integers(0, 80)
    names = np.array([f"s{i}" for i in range(6)], dtype=object)
    build = Batch({"a": rng.integers(0, 6, n_build),
                   "s": names[rng.integers(0, 6, n_build)],
                   "f": rng.integers(0, 4, n_build).astype(np.float64)})
    probe = [rng.integers(0, 7, n_probe),
             names[rng.integers(0, 6, n_probe)],
             rng.integers(0, 5, n_probe).astype(np.float64)]
    assert_parity(build, probe, ["a", "s", "f"])
