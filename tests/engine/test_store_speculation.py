"""Unit tests for the store operator: modes, speculation, draining."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import Catalog, INT64, Table
from repro.engine import (MODE_MATERIALIZE, MODE_SPECULATE, StoreRequest,
                          execute_plan)
from repro.expr import Cmp, Col, Lit
from repro.plan import q


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register_table("t", Table(
        Table.from_rows(["x"], [INT64], []).schema,
        {"x": np.arange(20000, dtype=np.int64)}))
    return catalog


def agg_plan():
    return (q.scan("t", ["x"])
             .aggregate(keys=[], aggs=[("sum", Col("x"), "s")])
             .build())


class TestMaterializeMode:
    def test_on_complete_receives_full_result(self, catalog):
        captured = {}

        def on_complete(table, stats, tag):
            captured["table"] = table
            captured["stats"] = stats
            captured["tag"] = tag

        plan = agg_plan()
        request = StoreRequest(mode=MODE_MATERIALIZE, tag="marker",
                               on_complete=on_complete)
        execute_plan(plan, catalog, stores={id(plan): request})
        assert captured["tag"] == "marker"
        assert captured["table"].num_rows == 1
        assert captured["stats"].rows == 1
        assert captured["stats"].measured_cost > 0

    def test_store_overhead_charged(self, catalog):
        plan = agg_plan()
        bare = execute_plan(agg_plan(), catalog)
        request = StoreRequest(mode=MODE_MATERIALIZE,
                               on_complete=lambda *a: None)
        stored = execute_plan(plan, catalog, stores={id(plan): request})
        assert stored.stats.total_cost > bare.stats.total_cost
        assert stored.stats.store_overhead > 0

    def test_results_flow_through_unchanged(self, catalog):
        plan = agg_plan()
        request = StoreRequest(mode=MODE_MATERIALIZE,
                               on_complete=lambda *a: None)
        stored = execute_plan(plan, catalog, stores={id(plan): request})
        bare = execute_plan(agg_plan(), catalog)
        assert stored.table.to_rows() == bare.table.to_rows()


class TestSpeculation:
    def test_accepting_decision_materializes(self, catalog):
        captured = {}
        request = StoreRequest(
            mode=MODE_SPECULATE,
            decide=lambda est, tag: True,
            on_complete=lambda table, stats, tag:
                captured.update(rows=stats.rows))
        plan = agg_plan()
        execute_plan(plan, catalog, stores={id(plan): request})
        assert captured["rows"] == 1

    def test_rejecting_decision_aborts(self, catalog):
        aborted = []
        request = StoreRequest(
            mode=MODE_SPECULATE,
            decide=lambda est, tag: False,
            on_complete=lambda *a: pytest.fail("must not complete"),
            on_abort=lambda tag: aborted.append(tag),
            tag="x")
        # put the store below a filter so the stream is long enough for a
        # mid-stream decision
        inner = q.scan("t", ["x"]).build()
        plan = (q.wrap(inner)
                 .filter(Cmp(">=", Col("x"), Lit(0)))
                 .build())
        execute_plan(plan, catalog, stores={id(inner): request})
        assert aborted == ["x"]

    def test_estimates_extrapolate_size(self, catalog):
        estimates = []

        def decide(est, tag):
            estimates.append(est)
            return False

        inner = q.scan("t", ["x"]).build()
        plan = (q.wrap(inner)
                 .filter(Cmp(">=", Col("x"), Lit(0)))
                 .build())
        request = StoreRequest(mode=MODE_SPECULATE, decide=decide,
                               min_progress=0.05)
        execute_plan(plan, catalog, stores={id(inner): request})
        assert len(estimates) == 1
        est = estimates[0]
        # 20000 rows * 8 bytes = 160 KB total; extrapolation within 2x
        assert 80_000 < est.est_size_bytes < 320_000
        assert 10_000 < est.est_rows < 40_000

    def test_blocking_child_cost_not_overextrapolated(self, catalog):
        estimates = []

        def decide(est, tag):
            estimates.append(est)
            return False

        plan = agg_plan()
        request = StoreRequest(mode=MODE_SPECULATE, decide=decide)
        result = execute_plan(plan, catalog, stores={id(plan): request})
        # the aggregate emits one row; its cost was fully accrued, so the
        # estimate must be near the true cost, not divided by progress
        assert estimates[0].est_cost <= result.stats.total_cost * 1.1

    def test_buffer_budget_forces_decision(self, catalog):
        estimates = []

        def decide(est, tag):
            estimates.append(est)
            return False

        inner = q.scan("t", ["x"]).build()
        plan = (q.wrap(inner)
                 .filter(Cmp(">=", Col("x"), Lit(0)))
                 .build())
        request = StoreRequest(mode=MODE_SPECULATE, decide=decide,
                               min_progress=2.0,  # never by progress
                               buffer_budget_bytes=16 * 1024)
        execute_plan(plan, catalog, stores={id(inner): request})
        assert len(estimates) == 1  # decision forced by the budget


class TestDrainOnClose:
    def test_limit_above_store_still_materializes_fully(self, catalog):
        """The proactive top-N shape: Limit stops pulling early, but a
        materializing store owes the complete result."""
        captured = {}
        inner = (q.scan("t", ["x"])
                  .top_n([("x", False)], limit=500)
                  .build())
        plan = q.wrap(inner).limit(10).build()
        request = StoreRequest(
            mode=MODE_MATERIALIZE,
            on_complete=lambda table, stats, tag:
                captured.update(rows=table.num_rows))
        result = execute_plan(plan, catalog, stores={id(inner): request})
        assert result.table.num_rows == 10
        assert captured["rows"] == 500  # drained to completion

    def test_undecided_speculation_decides_at_close(self, catalog):
        decisions = []
        inner = (q.scan("t", ["x"])
                  .top_n([("x", False)], limit=500)
                  .build())
        plan = q.wrap(inner).limit(10).build()
        request = StoreRequest(
            mode=MODE_SPECULATE,
            decide=lambda est, tag: decisions.append(est) or True,
            on_complete=lambda table, stats, tag:
                decisions.append(table.num_rows))
        execute_plan(plan, catalog, stores={id(inner): request})
        assert decisions[-1] == 500
