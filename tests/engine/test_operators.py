"""Unit tests for the pipelined engine's physical operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import INT64, Table
from repro.engine import execute_plan
from repro.expr import Arith, Cmp, Col, Func, InList, Like, Lit
from repro.plan import q, validate_plan


def run(plan, catalog, **kw):
    return execute_plan(plan, catalog, **kw)


class TestScan:
    def test_scan_projects_columns(self, sales_catalog):
        plan = q.scan("sales", ["sale_id", "product"]).build()
        result = run(plan, sales_catalog)
        assert result.table.schema.names == ["sale_id", "product"]
        assert result.table.num_rows == 8

    def test_scan_small_vectors(self, sales_catalog):
        plan = q.scan("sales", ["sale_id"]).build()
        result = run(plan, sales_catalog, vector_size=3)
        assert result.table.num_rows == 8
        assert list(result.table.column("sale_id")) == list(range(1, 9))

    def test_scan_charges_cost(self, sales_catalog):
        plan = q.scan("sales", ["sale_id"]).build()
        result = run(plan, sales_catalog)
        assert result.stats.total_cost == pytest.approx(8.0)


class TestFilter:
    def test_simple_predicate(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "quantity"])
                 .filter(Cmp(">", Col("quantity"), Lit(4)))
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("sale_id")) == [3, 5, 7, 8]

    def test_date_range(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "sold_on"])
                 .filter(Cmp("<", Col("sold_on"), Lit.date("2023-02-01")))
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("sale_id")) == [1, 2]

    def test_in_list(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "product"])
                 .filter(InList(Col("product"), ["plum", "pear"]))
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("sale_id")) == [2, 4, 6, 7, 8]

    def test_like(self, sales_catalog):
        plan = (q.scan("sales", ["product"])
                 .filter(Like(Col("product"), "p%"))
                 .distinct()
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("product")) == ["pear", "plum"]

    def test_all_rows_filtered(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id"])
                 .filter(Cmp(">", Col("sale_id"), Lit(100)))
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 0


class TestProject:
    def test_computed_column(self, sales_catalog):
        plan = (q.scan("sales", ["quantity", "price"])
                 .project([("revenue",
                            Arith("*", Col("quantity"), Col("price")))])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.column("revenue")[0] == pytest.approx(4.5)

    def test_year_function(self, sales_catalog):
        plan = (q.scan("sales", ["sold_on"])
                 .project([("yr", Func("year", [Col("sold_on")]))])
                 .distinct()
                 .build())
        result = run(plan, sales_catalog)
        assert list(result.table.column("yr")) == [2023]


class TestAggregate:
    def test_group_by_sum(self, sales_catalog):
        plan = (q.scan("sales", ["product", "quantity"])
                 .aggregate(keys=["product"],
                            aggs=[("sum", Col("quantity"), "total")])
                 .build())
        result = run(plan, sales_catalog)
        rows = dict(zip(result.table.column("product"),
                        result.table.column("total")))
        assert rows == {"apple": 15, "pear": 13, "plum": 8}

    def test_scalar_aggregate(self, sales_catalog):
        plan = (q.scan("sales", ["price"])
                 .aggregate(keys=[],
                            aggs=[("min", Col("price"), "lo"),
                                  ("max", Col("price"), "hi"),
                                  ("count", Col("price"), "n")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 1
        assert result.table.column("lo")[0] == pytest.approx(1.4)
        assert result.table.column("hi")[0] == pytest.approx(3.0)
        assert result.table.column("n")[0] == 8

    def test_scalar_aggregate_on_empty_input(self, sales_catalog):
        plan = (q.scan("sales", ["price"])
                 .filter(Cmp(">", Col("price"), Lit(100.0)))
                 .aggregate(keys=[], aggs=[("sum", Col("price"), "s"),
                                           ("count_star", None, "n")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 1
        assert result.table.column("s")[0] == 0
        assert result.table.column("n")[0] == 0

    def test_avg(self, sales_catalog):
        plan = (q.scan("sales", ["quantity"])
                 .aggregate(keys=[], aggs=[("avg", Col("quantity"), "a")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.column("a")[0] == pytest.approx(36 / 8)

    def test_group_by_expression(self, sales_catalog):
        plan = (q.scan("sales", ["sold_on", "quantity"])
                 .aggregate(keys=[("m", Func("month", [Col("sold_on")]))],
                            aggs=[("sum", Col("quantity"), "total")])
                 .build())
        result = run(plan, sales_catalog)
        rows = dict(zip(result.table.column("m"),
                        result.table.column("total")))
        assert rows == {1: 4, 2: 7, 3: 11, 4: 14}

    def test_count_star(self, wide_catalog):
        plan = (q.scan("wide", ["grp"])
                 .aggregate(keys=["grp"],
                            aggs=[("count_star", None, "n")])
                 .build())
        result = run(plan, wide_catalog)
        assert int(np.sum(result.table.column("n"))) == 5000

    def test_string_min_max(self, sales_catalog):
        plan = (q.scan("sales", ["product"])
                 .aggregate(keys=[], aggs=[("min", Col("product"), "lo"),
                                           ("max", Col("product"), "hi")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.column("lo")[0] == "apple"
        assert result.table.column("hi")[0] == "plum"


class TestJoin:
    def test_inner_join(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "store_id"])
                 .join(q.scan("stores", ["store_id", "city"])
                        .project([("s_id", Col("store_id")), "city"]),
                       on=[("store_id", "s_id")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 8
        row = dict(zip(result.table.column("sale_id"),
                       result.table.column("city")))
        assert row[1] == "Edinburgh"
        assert row[3] == "London"

    def test_semi_join(self, sales_catalog):
        north = (q.scan("stores", ["store_id", "region"])
                  .filter(Cmp("=", Col("region"), Lit("north")))
                  .project([("s_id", Col("store_id"))]))
        plan = (q.scan("sales", ["sale_id", "store_id"])
                 .semi_join(north, on=[("store_id", "s_id")])
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("sale_id")) == [1, 2, 5, 6, 7]

    def test_anti_join(self, sales_catalog):
        north = (q.scan("stores", ["store_id", "region"])
                  .filter(Cmp("=", Col("region"), Lit("north")))
                  .project([("s_id", Col("store_id"))]))
        plan = (q.scan("sales", ["sale_id", "store_id"])
                 .anti_join(north, on=[("store_id", "s_id")])
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("sale_id")) == [3, 4, 8]

    def test_left_join_pads_defaults(self, sales_catalog):
        # Join stores against sales of plums only; Glasgow has none.
        plums = (q.scan("sales", ["store_id", "product"])
                  .filter(Cmp("=", Col("product"), Lit("plum")))
                  .project([("p_store", Col("store_id")), "product"]))
        plan = (q.scan("stores", ["store_id", "city"])
                 .join(plums, on=[("store_id", "p_store")], kind="left")
                 .build())
        result = run(plan, sales_catalog)
        by_city = {}
        for city, product in zip(result.table.column("city"),
                                 result.table.column("product")):
            by_city.setdefault(city, []).append(product)
        assert by_city["Edinburgh"] == ["plum"]
        assert by_city["Glasgow"] == [""]  # padded default

    def test_join_with_extra_predicate(self, sales_catalog):
        # sales joined to sales of the same product with larger quantity
        other = (q.scan("sales", ["product", "quantity"])
                  .project([("o_product", Col("product")),
                            ("o_quantity", Col("quantity"))]))
        plan = (q.scan("sales", ["sale_id", "product", "quantity"])
                 .semi_join(other, on=[("product", "o_product")],
                            extra=Cmp("<", Col("quantity"),
                                      Col("o_quantity")))
                 .build())
        result = run(plan, sales_catalog)
        # sales that are NOT the max quantity of their product
        assert sorted(result.table.column("sale_id")) == [1, 2, 3, 4, 6]

    def test_join_duplicate_expansion(self, sales_catalog):
        # every sale joins back to all sales of the same store
        other = (q.scan("sales", ["store_id"])
                  .project([("o_store", Col("store_id"))]))
        plan = (q.scan("sales", ["sale_id", "store_id"])
                 .join(other, on=[("store_id", "o_store")])
                 .build())
        result = run(plan, sales_catalog)
        # stores have 3, 3, 2 sales -> 9 + 9 + 4 = 22 pairs
        assert result.table.num_rows == 22

    def test_string_key_join(self, sales_catalog):
        other = (q.scan("sales", ["product", "quantity"])
                  .aggregate(keys=["product"],
                             aggs=[("sum", Col("quantity"), "total")])
                  .project([("p2", Col("product")), "total"]))
        plan = (q.scan("sales", ["sale_id", "product"])
                 .join(other, on=[("product", "p2")])
                 .build())
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 8
        totals = dict(zip(result.table.column("product"),
                          result.table.column("total")))
        assert totals["apple"] == 15


class TestTopNSortLimit:
    def test_topn_ascending(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "price"])
                 .top_n([("price", True)], limit=3)
                 .build())
        result = run(plan, sales_catalog)
        assert list(result.table.column("price")) == \
            pytest.approx([1.4, 1.5, 1.6])

    def test_topn_descending_with_offset(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "quantity"])
                 .top_n([("quantity", False)], limit=2, offset=1)
                 .build())
        result = run(plan, sales_catalog)
        assert list(result.table.column("quantity")) == [7, 6]

    def test_topn_compaction_matches_sort(self, wide_catalog):
        top = (q.scan("wide", ["k", "val"])
                .top_n([("val", False)], limit=10)
                .build())
        full = (q.scan("wide", ["k", "val"])
                 .sort([("val", False)])
                 .limit(10)
                 .build())
        top_result = run(top, wide_catalog, vector_size=256)
        full_result = run(full, wide_catalog, vector_size=256)
        assert list(top_result.table.column("k")) == \
            list(full_result.table.column("k"))

    def test_sort_multi_key(self, sales_catalog):
        plan = (q.scan("sales", ["store_id", "quantity"])
                 .sort([("store_id", True), ("quantity", False)])
                 .build())
        result = run(plan, sales_catalog)
        rows = list(zip(result.table.column("store_id"),
                        result.table.column("quantity")))
        assert rows == [(1, 6), (1, 3), (1, 1), (2, 8), (2, 5), (2, 2),
                        (3, 7), (3, 4)]

    def test_sort_string_descending(self, sales_catalog):
        plan = (q.scan("sales", ["product"])
                 .distinct()
                 .sort([("product", False)])
                 .build())
        result = run(plan, sales_catalog)
        assert list(result.table.column("product")) == \
            ["plum", "pear", "apple"]

    def test_limit_offset(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id"])
                 .limit(3, offset=2)
                 .build())
        result = run(plan, sales_catalog, vector_size=2)
        assert list(result.table.column("sale_id")) == [3, 4, 5]


class TestUnionDistinct:
    def test_union_all(self, sales_catalog):
        north = (q.scan("stores", ["store_id", "region"])
                  .filter(Cmp("=", Col("region"), Lit("north"))))
        south = (q.scan("stores", ["store_id", "region"])
                  .filter(Cmp("=", Col("region"), Lit("south"))))
        plan = north.union_all(south).build()
        result = run(plan, sales_catalog)
        assert result.table.num_rows == 3

    def test_union_all_renames_positionally(self, sales_catalog):
        a = (q.scan("sales", ["quantity"])
              .project([("x", Col("quantity"))]))
        b = (q.scan("sales", ["sale_id"])
              .project([("y", Col("sale_id"))]))
        plan = a.union_all(b).build()
        result = run(plan, sales_catalog)
        assert result.table.schema.names == ["x"]
        assert result.table.num_rows == 16

    def test_distinct(self, sales_catalog):
        plan = (q.scan("sales", ["store_id"])
                 .distinct()
                 .build())
        result = run(plan, sales_catalog)
        assert sorted(result.table.column("store_id")) == [1, 2, 3]


class TestTableFunction:
    def test_table_function_scan(self, sales_catalog):
        from repro.columnar.table import Schema

        def make_numbers(n):
            return Table.from_rows(["n"], [INT64],
                                   [(i,) for i in range(int(n))])

        sales_catalog.register_function(
            "numbers", make_numbers, Schema(["n"], [INT64]),
            invocation_cost=50.0)
        plan = q.table_function("numbers", [5]).build()
        result = run(plan, sales_catalog)
        assert list(result.table.column("n")) == [0, 1, 2, 3, 4]
        assert result.stats.total_cost == pytest.approx(50.0 + 5.0)


class TestValidation:
    def test_missing_column_rejected(self, sales_catalog):
        from repro.errors import PlanError, SchemaError

        plan = (q.scan("sales", ["sale_id"])
                 .filter(Cmp(">", Col("quantity"), Lit(1)))
                 .build())
        with pytest.raises((PlanError, SchemaError)):
            validate_plan(plan, sales_catalog)

    def test_join_collision_rejected(self, sales_catalog):
        from repro.errors import PlanError

        plan = (q.scan("sales", ["sale_id", "store_id"])
                 .join(q.scan("stores", ["store_id", "city"]),
                       on=[("store_id", "store_id")])
                 .build())
        with pytest.raises(PlanError):
            validate_plan(plan, sales_catalog)

    def test_valid_plan_passes(self, sales_catalog):
        plan = (q.scan("sales", ["sale_id", "quantity"])
                 .filter(Cmp(">", Col("quantity"), Lit(1)))
                 .build())
        schema = validate_plan(plan, sales_catalog)
        assert schema.names == ["sale_id", "quantity"]
