"""Process-sharded execution: correctness, fallback, chaos, lifecycle.

These are tier-1 tests, so they stay small: two workers over a few
thousand rows.  The 64-session replays live in
``tests/stress/test_process_mode.py``.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro import Database, RecyclerConfig
from repro.columnar import types as t
from repro.columnar.table import Schema, Table
from repro.engine.shard import ShardRuntime
from repro.errors import QueryTimeout


def _make_table(num_rows: int = 4000, seed: int = 3) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        Schema(["g", "v", "name"], [t.INT64, t.FLOAT64, t.STRING]),
        {"g": rng.integers(0, 40, num_rows),
         "v": rng.random(num_rows),
         "name": np.array([f"n{i % 31}" for i in range(num_rows)],
                          dtype=object)})


QUERIES = [
    "SELECT g, sum(v) AS sv FROM t GROUP BY g ORDER BY g",
    "SELECT g, count(*) AS c FROM t WHERE v > 0.5 GROUP BY g ORDER BY g",
    "SELECT count(*) AS c FROM t WHERE name LIKE 'n1%'",
]


@pytest.fixture(scope="module")
def shard_db():
    """One database + 2-worker runtime shared by this module (spawn
    startup is the expensive part); tests that mutate state (kill
    workers, close runtimes) build their own."""
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", _make_table())
    runtime = db.shard_runtime(2)
    yield db, runtime
    db.close()


@pytest.fixture()
def reference():
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", _make_table())
    rows = {q: db.sql(q).table.to_rows() for q in QUERIES}
    db.close()
    return rows


class TestRemoteCorrectness:
    def test_remote_results_byte_identical(self, shard_db, reference):
        db, runtime = shard_db
        session = db.connect(executor=runtime)
        before = runtime.stats["remote_queries"]
        for query in QUERIES:
            assert session.sql(query).table.to_rows() == reference[query]
        assert runtime.stats["remote_queries"] > before

    def test_warm_queries_fall_back_to_local_reuse(self, shard_db):
        db, runtime = shard_db
        session = db.connect(executor=runtime)
        query = "SELECT g, max(v) AS mv FROM t GROUP BY g ORDER BY g"
        first = session.sql(query)
        fallbacks = runtime.stats["local_fallbacks"]
        second = session.sql(query)
        # the repeat reused the recycler cache (a warm plan), which is
        # ineligible for remote execution by design
        assert second.record.num_reused > 0
        assert runtime.stats["local_fallbacks"] > fallbacks
        assert second.table.to_rows() == first.table.to_rows()

    def test_remote_populates_recycler_cache(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table())
        runtime = db.shard_runtime(1)
        remote_session = db.connect(executor=runtime)
        plain_session = db.connect()
        query = QUERIES[0]
        remote_session.sql(query)
        # a *different, thread-mode* session reuses what the worker
        # process produced: admission stayed in the parent
        result = plain_session.sql(query)
        assert result.record.num_reused > 0
        db.close()

    def test_timeout_type_survives_remote_execution(self, shard_db):
        db, runtime = shard_db
        session = db.connect(executor=runtime)
        with pytest.raises(QueryTimeout):
            session.sql("SELECT g, sum(v) AS sv FROM t GROUP BY g",
                        timeout=0.0)


class TestFallback:
    def test_ddl_after_share_runs_locally(self, shard_db):
        db, runtime = shard_db
        db.register_table("t2", _make_table(100, seed=9))
        session = db.connect(executor=runtime)
        fallbacks = runtime.stats["local_fallbacks"]
        result = session.sql(
            "SELECT count(*) AS c FROM t2 WHERE v >= 0.0")
        assert result.table.to_rows() == [(100,)]
        assert runtime.stats["local_fallbacks"] > fallbacks

    def test_closed_runtime_falls_back(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table(500))
        runtime = db.shard_runtime(1)
        session = db.connect(executor=runtime)
        runtime.close()
        result = session.sql(QUERIES[0])  # session stays usable
        assert result.table.num_rows > 0
        db.close()


class TestWorkerDeath:
    def test_kill_respawn_requeue(self, reference):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table())
        runtime = db.shard_runtime(1)
        session = db.connect(executor=runtime)
        assert session.sql(QUERIES[0]).table.to_rows() \
            == reference[QUERIES[0]]
        for worker in list(runtime._workers):
            worker.process.kill()
            worker.process.join()
        # the next *cold* query hits the dead worker, which respawns
        # and requeues transparently
        assert session.sql(QUERIES[1]).table.to_rows() \
            == reference[QUERIES[1]]
        assert runtime.stats["worker_deaths"] >= 1
        assert runtime.stats["requeues"] >= 1
        db.close()


class TestTransport:
    def test_oversized_result_spills(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table(3000))
        # a ring this small cannot hold a full result: spill path
        runtime = ShardRuntime(db, 1, ring_bytes=4096)
        db._shard_runtimes.append(runtime)
        session = db.connect(executor=runtime)
        result = session.sql("SELECT g, v, name FROM t WHERE v >= 0.0")
        assert result.table.num_rows == 3000
        assert runtime.stats["spills"] >= 1
        db.close()
        # spill segments were one-shot: nothing with this ring's name
        # prefix survives in /dev/shm
        assert not glob.glob("/dev/shm/*o[0-9]*x[0-9]*")


class TestLifecycle:
    def test_close_unlinks_every_segment(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table(500))
        runtime = db.shard_runtime(2)
        session = db.connect(executor=runtime)
        session.sql(QUERIES[0])
        names = [segment.name for segment in runtime._segments]
        names += [worker.ring.name for worker in runtime._workers]
        assert names
        db.close()
        assert runtime.closed
        from repro.columnar import shm
        for name in names:
            with pytest.raises(FileNotFoundError):
                shm.attach_segment(name)
        db.close()  # idempotent

    def test_pool_process_mode_end_to_end(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", _make_table(1500))
        with db.pool(workers=2, mode="processes") as pool:
            results = pool.run(QUERIES)
            assert all(r.table.num_rows > 0 for r in results)
            assert pool._shard_runtime.stats["remote_queries"] > 0
        assert pool._shard_runtime.closed  # pool close owns the runtime
        db.close()

    def test_pool_mode_validated(self):
        db = Database(RecyclerConfig(mode="spec"))
        with pytest.raises(ValueError):
            db.pool(workers=2, mode="fibers")
        db.close()
