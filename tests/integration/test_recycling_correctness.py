"""Integration: recycling must never change query results.

Runs every TPC-H pattern repeatedly under every recycler mode and checks
the results equal the recycling-off execution — the library's core
safety property (reuse, subsumption and proactive rewriting are pure
optimizations).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.recycler import Recycler, RecyclerConfig
from repro.sql import sql_to_plan
from repro.workloads.tpch import (ALL_QUERY_IDS, ParameterGenerator,
                                  build_catalog, query_sql)

SCALE = 0.002


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(scale_factor=SCALE)


def rows_approximately_equal(got, want) -> bool:
    if len(got) != len(want):
        return False
    for got_row, want_row in zip(got, want):
        if len(got_row) != len(want_row):
            return False
        for g, w in zip(got_row, want_row):
            if isinstance(g, (float, np.floating)):
                if not np.isclose(float(g), float(w), rtol=1e-9,
                                  atol=1e-6):
                    return False
            elif g != w:
                return False
    return True


@pytest.mark.parametrize("mode", ["hist", "spec", "pa"])
@pytest.mark.parametrize("pattern", ALL_QUERY_IDS)
def test_pattern_stable_under_recycling(catalog, mode, pattern):
    rng = np.random.default_rng(1234 + pattern)
    generator = ParameterGenerator(rng, SCALE)
    params = generator.params_for(pattern)
    sql = query_sql(pattern, params)
    expected = execute_plan(sql_to_plan(sql, catalog),
                            catalog).table.sorted_rows()
    recycler = Recycler(catalog, RecyclerConfig(
        mode=mode, proactive_benefit_steered=False))
    for repeat in range(3):
        result = recycler.execute(sql_to_plan(sql, catalog))
        got = result.table.sorted_rows()
        assert rows_approximately_equal(got, expected), \
            f"Q{pattern} mode={mode} repeat={repeat}"


def test_interleaved_workload_correctness(catalog):
    """A mixed stream with repeated patterns: spec mode vs off mode."""
    rng = np.random.default_rng(99)
    generator = ParameterGenerator(rng, SCALE)
    queries = []
    for pattern in (1, 3, 6, 6, 1, 14, 3, 6, 1, 15, 15):
        params = generator.params_for(pattern)
        queries.append((pattern, query_sql(pattern, params)))
    recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
    for pattern, sql in queries:
        expected = execute_plan(sql_to_plan(sql, catalog),
                                catalog).table.sorted_rows()
        got = recycler.execute(
            sql_to_plan(sql, catalog)).table.sorted_rows()
        assert rows_approximately_equal(got, expected), f"Q{pattern}"


def test_cache_pressure_does_not_corrupt(catalog):
    """A tiny cache forces constant eviction; results must stay right."""
    recycler = Recycler(catalog, RecyclerConfig(
        mode="spec", cache_capacity=64 * 1024))
    rng = np.random.default_rng(7)
    generator = ParameterGenerator(rng, SCALE)
    for _ in range(12):
        pattern = int(rng.choice([1, 6, 14, 15]))
        sql = query_sql(pattern, generator.params_for(pattern))
        expected = execute_plan(sql_to_plan(sql, catalog),
                                catalog).table.sorted_rows()
        got = recycler.execute(
            sql_to_plan(sql, catalog)).table.sorted_rows()
        assert rows_approximately_equal(got, expected)
        recycler.cache.check_invariants()
        recycler.graph.check_invariants()


def test_updates_invalidate_then_recover(catalog):
    """After invalidating lineitem, cached results are gone but fresh
    executions still return correct answers and re-populate the cache."""
    recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
    sql = query_sql(6, {"year": 1995, "discount": 0.05, "quantity": 24})
    first = recycler.execute(sql_to_plan(sql, catalog))
    assert recycler.invalidate_table("lineitem") >= 1
    second = recycler.execute(sql_to_plan(sql, catalog))
    assert second.table.sorted_rows() == first.table.sorted_rows()
    third = recycler.execute(sql_to_plan(sql, catalog))
    assert third.stats.num_reused >= 1
