"""Catalog versioning, snapshots, and NaN-safe statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import FLOAT64, INT64, STRING, Schema, Table
from repro.columnar.catalog import BinningSpec, Catalog
from repro.errors import CatalogError, SchemaError


def make_table(values=(1, 2, 3)) -> Table:
    schema = Schema(["g", "v"], [INT64, FLOAT64])
    return Table(schema, {"g": np.array(values, dtype=np.int64),
                          "v": np.array([float(x) for x in values])})


class TestVersions:
    def test_register_bumps_version(self):
        catalog = Catalog()
        assert catalog.table_version("t") == 0
        catalog.register_table("t", make_table())
        assert catalog.table_version("t") == 1
        catalog.register_table("t", make_table((4, 5)))
        assert catalog.table_version("t") == 2
        assert catalog.ddl_clock == 2

    def test_drop_bumps_and_survives(self):
        catalog = Catalog()
        catalog.register_table("t", make_table())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert catalog.table_version("t") == 2
        # re-creation is newer than anything computed before the drop
        catalog.register_table("t", make_table())
        assert catalog.table_version("t") == 3

    def test_drop_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("nope")

    def test_function_versions(self):
        catalog = Catalog()
        schema = Schema(["x"], [INT64])
        fn = lambda: Table(schema, {"x": np.array([1])})  # noqa: E731
        assert catalog.function_version("f") == 0
        catalog.register_function("f", fn, schema)
        assert catalog.function_version("f") == 1
        catalog.register_function("f", fn, schema)
        assert catalog.function_version("f") == 2

    def test_versions_for(self):
        catalog = Catalog()
        catalog.register_table("t", make_table())
        tables, functions = catalog.versions_for(["t", "u"], ["f"])
        assert tables == {"t": 1, "u": 0}
        assert functions == {"f": 0}


class TestSnapshots:
    def test_snapshot_is_immutable_view(self):
        catalog = Catalog()
        catalog.register_table("t", make_table((1, 2, 3)))
        snap = catalog.snapshot()
        old_table = snap.table("t")
        catalog.register_table("t", make_table((9,)))
        # the snapshot still reads the old incarnation, at its version
        assert snap.table("t") is old_table
        assert snap.table_version("t") == 1
        assert catalog.table_version("t") == 2

    def test_snapshot_survives_drop(self):
        catalog = Catalog()
        catalog.register_table("t", make_table())
        snap = catalog.snapshot()
        catalog.drop_table("t")
        assert snap.has_table("t")
        assert not catalog.has_table("t")

    def test_register_binning_is_copy_on_write(self):
        catalog = Catalog()
        schema = Schema(["d", "v"], [INT64, FLOAT64])
        catalog.register_table("t", Table(
            schema, {"d": np.arange(10), "v": np.arange(10.0)}))
        snap = catalog.snapshot()
        catalog.register_binning("t", BinningSpec("d", "width", width=5))
        # the pre-DDL snapshot's entry was not mutated in place …
        assert snap.binning_for("t", "d") is None
        assert catalog.binning_for("t", "d") is not None
        # … and a binning spec does not invalidate data (no version bump)
        assert snap.table_version("t") == catalog.table_version("t")


class TestAppendRows:
    def test_append_table_and_rows(self):
        catalog = Catalog()
        catalog.register_table("t", make_table((1, 2)))
        snap = catalog.snapshot()
        catalog.append_rows("t", [(3, 3.0)])
        catalog.append_rows("t", make_table((4,)))
        assert catalog.table("t").num_rows == 4
        assert catalog.table_version("t") == 3
        # stats were refreshed for the merged table
        assert catalog.distinct_count("t", "g") == 4
        # snapshot keeps the pre-append rows
        assert snap.table("t").num_rows == 2

    def test_append_schema_mismatch(self):
        catalog = Catalog()
        catalog.register_table("t", make_table())
        bad = Table(Schema(["x"], [INT64]), {"x": np.array([1])})
        with pytest.raises(SchemaError):
            catalog.append_rows("t", bad)

    def test_append_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().append_rows("nope", [(1, 1.0)])

    def test_concurrent_appends_serialize_without_loss(self):
        """Racing appends re-merge optimistically instead of failing
        spuriously; every appended row survives."""
        import threading

        catalog = Catalog()
        catalog.register_table("t", make_table(()))
        per_thread, n_threads = 25, 4
        errors: list[BaseException] = []

        def appender(tid: int) -> None:
            try:
                for i in range(per_thread):
                    catalog.append_rows("t", [(tid, float(i))],
                                        compute_stats=False)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=appender, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors
        assert catalog.table("t").num_rows == per_thread * n_threads
        assert catalog.table_version("t") == 1 + per_thread * n_threads


class TestNanStats:
    def test_nan_dropped_from_float_stats(self):
        catalog = Catalog()
        schema = Schema(["v"], [FLOAT64])
        values = np.array([1.0, np.nan, 2.0, np.nan, np.nan, 2.0])
        catalog.register_table("t", Table(schema, {"v": values}))
        # NaNs used to count as distinct each (5 here) and min/max could
        # be NaN, corrupting the proactive threshold.
        assert catalog.distinct_count("t", "v") == 2
        assert catalog.column_range("t", "v") == (1.0, 2.0)

    def test_all_nan_column(self):
        catalog = Catalog()
        schema = Schema(["v"], [FLOAT64])
        catalog.register_table(
            "t", Table(schema, {"v": np.array([np.nan, np.nan])}))
        assert catalog.distinct_count("t", "v") == 0
        assert catalog.column_range("t", "v") is None

    def test_string_and_int_stats_unchanged(self):
        catalog = Catalog()
        schema = Schema(["s", "i"], [STRING, INT64])
        catalog.register_table("t", Table(
            schema, {"s": np.array(["b", "a", "b"]),
                     "i": np.array([3, 1, 3])}))
        assert catalog.distinct_count("t", "s") == 2
        assert catalog.column_range("t", "s") == ("a", "b")
        assert catalog.distinct_count("t", "i") == 2
        assert catalog.column_range("t", "i") == (1, 3)
