"""Shared-memory table codec: round-trip properties and lifecycle.

The codec (``repro.columnar.shm``) is the data plane of process-sharded
execution — every registered table and every result batch crosses a
process boundary through it, so a round-trip must reproduce the table
*byte-identically* for every dtype, including empty tables and unicode
strings, and zero-copy decodes must alias the underlying buffer (that
is the whole point of sharing).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar import shm
from repro.columnar import types as t
from repro.columnar.table import Schema, Table
from repro.errors import SchemaError

_DTYPES = (t.INT64, t.FLOAT64, t.BOOL, t.STRING, t.DATE)


def _column_strategy(dtype, nrows):
    if dtype is t.INT64:
        elems = st.integers(-2**62, 2**62)
    elif dtype is t.FLOAT64:
        elems = st.floats(allow_nan=False, width=64)
    elif dtype is t.BOOL:
        elems = st.booleans()
    elif dtype is t.DATE:
        elems = st.integers(-10**6, 10**6)
    else:
        elems = st.text(max_size=12)  # unicode incl. surrogate-free BMP
    return st.lists(elems, min_size=nrows, max_size=nrows)


@st.composite
def table_strategy(draw):
    ncols = draw(st.integers(1, 4))
    nrows = draw(st.integers(0, 50))  # 0: empty batches must round-trip
    names = [f"c{i}" for i in range(ncols)]
    dtypes = [draw(st.sampled_from(_DTYPES)) for _ in range(ncols)]
    columns = {}
    for name, dtype in zip(names, dtypes):
        values = draw(_column_strategy(dtype, nrows))
        if dtype is t.STRING:
            arr = np.empty(nrows, dtype=object)
            arr[:] = values
        else:
            arr = np.asarray(values, dtype=dtype.numpy_dtype)
        columns[name] = arr
    return Table(Schema(names, dtypes), columns)


class TestRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(table=table_strategy())
    def test_buffer_round_trip_is_identical(self, table):
        buf = bytearray(shm.encoded_nbytes(table))
        end = shm.encode_table(table, buf)
        assert end == len(buf)  # encoded_nbytes is exact, not a bound
        decoded, consumed = shm.decode_table(buf)
        assert consumed == end
        assert decoded.schema == table.schema
        assert decoded.to_rows() == table.to_rows()

    @settings(max_examples=30, deadline=None)
    @given(table=table_strategy())
    def test_segment_round_trip(self, table):
        segment = shm.share_table(table)
        try:
            decoded, attached = shm.attach_table(segment.name)
            assert decoded.to_rows() == table.to_rows()
            shm.close_segment(attached)
        finally:
            shm.close_segment(segment, unlink=True)

    def test_two_tables_packed_back_to_back(self):
        first = Table(Schema(["a"], [t.INT64]),
                      {"a": np.arange(5, dtype=np.int64)})
        second = Table(Schema(["s"], [t.STRING]),
                       {"s": np.array(["x", "yy"], dtype=object)})
        buf = bytearray(shm.encoded_nbytes(first)
                        + shm.encoded_nbytes(second))
        mid = shm.encode_table(first, buf)
        end = shm.encode_table(second, buf, offset=mid)
        assert end == len(buf)
        one, pos = shm.decode_table(buf)
        two, _ = shm.decode_table(buf, offset=pos)
        assert one.to_rows() == first.to_rows()
        assert two.to_rows() == second.to_rows()


class TestZeroCopy:
    def test_fixed_width_decode_views_the_buffer(self):
        table = Table(Schema(["a", "b"], [t.INT64, t.FLOAT64]),
                      {"a": np.arange(100, dtype=np.int64),
                       "b": np.linspace(0, 1, 100)})
        buf = bytearray(shm.encoded_nbytes(table))
        shm.encode_table(table, buf)
        view, _ = shm.decode_table(buf, copy=False)
        for name in ("a", "b"):
            column = view.column(name)
            assert not column.flags.owndata  # a view, not a copy
        # aliasing is real: flip a buffer byte, the column sees it
        # (header 24B, then "a" name + "int64" dtype sections, 16B each)
        before = view.column("a")[0]
        buf[24 + 16 + 16] ^= 0xFF  # first payload byte of column "a"
        assert view.column("a")[0] != before

    def test_copy_decode_owns_its_data(self):
        table = Table(Schema(["a"], [t.INT64]),
                      {"a": np.arange(10, dtype=np.int64)})
        buf = bytearray(shm.encoded_nbytes(table))
        shm.encode_table(table, buf)
        copied, _ = shm.decode_table(buf, copy=True)
        buf[24 + 16 + 16] ^= 0xFF
        assert copied.column("a")[0] == 0  # unaffected by buffer edits


class TestLifecycle:
    def test_bad_magic_rejected(self):
        with pytest.raises(SchemaError):
            shm.decode_table(b"\0" * 64)

    def test_unlinked_segment_name_is_gone(self):
        table = Table(Schema(["a"], [t.INT64]),
                      {"a": np.arange(3, dtype=np.int64)})
        segment = shm.share_table(table)
        name = segment.name
        shm.close_segment(segment, unlink=True)
        with pytest.raises(FileNotFoundError):
            shm.attach_segment(name)

    def test_close_segment_is_idempotent(self):
        table = Table(Schema(["a"], [t.INT64]),
                      {"a": np.arange(3, dtype=np.int64)})
        segment = shm.share_table(table)
        shm.close_segment(segment, unlink=True)
        shm.close_segment(segment, unlink=True)  # no raise
