"""Incremental append statistics: exact equivalence with full recompute.

``Catalog.append_rows`` merges the delta batch's NaN-aware
min/max/uniques into the existing ``ColumnStats`` instead of rescanning
the merged table; a staleness counter forces a periodic full recompute.
The property test drives random append sequences over a mixed-type
table and demands the incremental stats equal a from-scratch
``_compute_stats`` of the final table, byte for byte.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema, STRING
from repro.columnar.catalog import Catalog, _compute_stats

SCHEMA = Schema(["i", "f", "s"], [INT64, FLOAT64, STRING])


def make_table(ints, floats, strings) -> Table:
    return Table(SCHEMA, {
        "i": np.array(ints, dtype=np.int64),
        "f": np.array(floats, dtype=np.float64),
        "s": np.array(strings, dtype=object),
    })


ROW = st.tuples(
    st.integers(-5, 5),
    st.one_of(st.just(float("nan")),
              st.floats(-4, 4, allow_nan=False).map(
                  lambda x: round(x, 2))),
    st.sampled_from(["a", "b", "c", "dd", "e"]),
)
BATCH = st.lists(ROW, min_size=0, max_size=6)


def batch_table(rows) -> Table:
    if not rows:
        return make_table([], [], [])
    ints, floats, strings = zip(*rows)
    return make_table(list(ints), list(floats), list(strings))


class TestIncrementalEqualsFull:
    @settings(max_examples=60, deadline=None)
    @given(base=BATCH, batches=st.lists(BATCH, min_size=1, max_size=8))
    def test_random_append_sequences(self, base, batches):
        catalog = Catalog(stats_refresh_appends=1_000_000)  # never full
        catalog.register_table("t", batch_table(base))
        for rows in batches:
            catalog.append_rows("t", batch_table(rows))
        entry = catalog.table_entry("t")
        expected = _compute_stats(entry.table)
        # ColumnStats equality ignores the retained uniques payload:
        # this compares the visible statistics (distinct/min/max).
        assert entry.column_stats == expected
        # registration retained uniques, so every append merged —
        # no append ever paid for a full rescan
        assert catalog.stats_counters["incremental_merges"] == \
            len(batches)
        assert catalog.stats_counters["full_recomputes"] == 0

    def test_nan_aware_merge(self):
        catalog = Catalog()
        catalog.register_table("t", make_table(
            [1, 2], [1.0, np.nan], ["a", "b"]))
        catalog.append_rows("t", make_table(
            [3], [np.nan], ["c"]))
        catalog.append_rows("t", make_table(
            [1], [2.5], ["a"]))
        assert catalog.distinct_count("t", "f") == 2
        assert catalog.column_range("t", "f") == (1.0, 2.5)
        assert catalog.distinct_count("t", "i") == 3
        assert catalog.distinct_count("t", "s") == 3
        assert catalog.stats_counters["incremental_merges"] == 2

    def test_all_nan_prefix_then_values(self):
        catalog = Catalog()
        catalog.register_table("t", make_table(
            [], [], []))
        catalog.append_rows("t", make_table([7], [np.nan], ["z"]))
        assert catalog.column_range("t", "f") is None
        catalog.append_rows("t", make_table([8], [0.5], ["z"]))
        assert catalog.column_range("t", "f") == (0.5, 0.5)
        assert catalog.distinct_count("t", "i") == 2


class TestStaleness:
    def test_periodic_full_recompute(self):
        catalog = Catalog(stats_refresh_appends=3)
        catalog.register_table("t", make_table([1], [1.0], ["a"]))
        for k in range(1, 7):
            catalog.append_rows("t", make_table([k], [float(k)], ["a"]))
        # appends 1,2 merge; 3 recomputes (counter back to 0); 4,5
        # merge; 6 recomputes
        assert catalog.stats_counters["incremental_merges"] == 4
        assert catalog.stats_counters["full_recomputes"] == 2
        assert catalog.table_entry("t").stats_appends == 0
        assert catalog.distinct_count("t", "i") == 6

    def test_no_prior_stats_forces_full_pass(self):
        catalog = Catalog()
        catalog.register_table("t", make_table([1], [1.0], ["a"]),
                               compute_stats=False)
        catalog.append_rows("t", make_table([2], [2.0], ["b"]))
        assert catalog.stats_counters["full_recomputes"] == 1
        assert catalog.distinct_count("t", "i") == 2
        # the full pass retained uniques, so the next append merges
        catalog.append_rows("t", make_table([3], [3.0], ["c"]))
        assert catalog.stats_counters["incremental_merges"] == 1

    def test_compute_stats_false_appends_stay_statless(self):
        catalog = Catalog()
        catalog.register_table("t", make_table([1], [1.0], ["a"]),
                               compute_stats=False)
        catalog.append_rows("t", make_table([2], [2.0], ["b"]),
                            compute_stats=False)
        assert catalog.table_entry("t").column_stats == {}
        assert catalog.stats_counters == {"incremental_merges": 0,
                                          "full_recomputes": 0}

    def test_refresh_appends_validation(self):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            Catalog(stats_refresh_appends=0)
        with pytest.raises(CatalogError):
            Catalog(stats_uniques_limit=0)

    def test_uniques_cardinality_cap(self):
        """A high-cardinality column drops its retained set (bounded
        stat memory) and its appends fall back to the full recompute;
        visible statistics stay exact either way."""
        catalog = Catalog(stats_uniques_limit=4)
        catalog.register_table("t", make_table(
            [1, 2, 3, 4, 5], [1.0] * 5, ["a"] * 5))
        entry = catalog.table_entry("t")
        assert entry.column_stats["i"].uniques is None      # 5 > 4
        assert entry.column_stats["i"].distinct_count == 5  # still exact
        assert entry.column_stats["s"].uniques is not None  # 1 <= 4
        catalog.append_rows("t", make_table([6], [2.0], ["b"]))
        assert catalog.stats_counters["full_recomputes"] == 1
        assert catalog.distinct_count("t", "i") == 6
        assert catalog.column_range("t", "i") == (1, 6)


class TestFacadeCounter:
    def test_summary_reports_incremental_merges(self):
        db = Database(RecyclerConfig(mode="spec"))
        db.register_table("t", make_table([1, 2], [1.0, 2.0], ["a", "b"]))
        db.append_rows("t", [(3, 3.0, "c")])
        db.append_rows("t", [(4, 4.0, "d")])
        stats = db.summary()["maintenance"]
        assert stats["stats_incremental_merges"] == 2
        assert db.catalog.distinct_count("t", "i") == 4
        db.close()
