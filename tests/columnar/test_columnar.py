"""Unit tests for the columnar substrate: types, batches, tables, catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import (BOOL, BinningSpec, Catalog, DATE, FLOAT64,
                            INT64, STRING, Schema, Table, concat_batches,
                            date_to_days, days_to_iso, infer_type,
                            type_from_name, years_of)
from repro.columnar.batch import Batch
from repro.columnar import types as t
from repro.errors import CatalogError, SchemaError, TypeError_


class TestTypes:
    def test_lookup_by_name(self):
        assert type_from_name("int64") is INT64
        assert type_from_name("DATE") is DATE
        with pytest.raises(TypeError_):
            type_from_name("decimal")

    def test_infer_type(self):
        assert infer_type(np.zeros(3, dtype=np.int64)) is INT64
        assert infer_type(np.zeros(3, dtype=np.int32)) is DATE
        assert infer_type(np.zeros(3, dtype=np.float64)) is FLOAT64
        assert infer_type(np.zeros(3, dtype=bool)) is BOOL
        assert infer_type(np.array(["a"], dtype=object)) is STRING

    def test_date_round_trip(self):
        days = date_to_days("1998-12-01")
        assert days_to_iso(days) == "1998-12-01"
        assert date_to_days("1970-01-01") == 0

    def test_years_of(self):
        days = np.array([date_to_days("1995-06-15"),
                         date_to_days("1998-01-01")])
        assert list(years_of(days)) == [1995, 1998]

    def test_first_day_of_year(self):
        assert days_to_iso(t.first_day_of_year(1996)) == "1996-01-01"

    def test_string_nbytes_counts_payload(self):
        arr = np.array(["ab", "cdef"], dtype=object)
        assert t.array_nbytes(arr, STRING) == 6


class TestBatch:
    def test_ragged_batch_rejected(self):
        with pytest.raises(SchemaError):
            Batch({"a": np.arange(3), "b": np.arange(4)})

    def test_filter_take_slice(self):
        batch = Batch({"a": np.arange(5, dtype=np.int64)})
        assert list(batch.filter(
            np.array([True, False, True, False, True])).column("a")) == \
            [0, 2, 4]
        assert list(batch.take(np.array([3, 1])).column("a")) == [3, 1]
        assert list(batch.slice(1, 3).column("a")) == [1, 2]

    def test_rename_and_select(self):
        batch = Batch({"a": np.arange(2), "b": np.arange(2)})
        renamed = batch.rename({"a": "x"})
        assert renamed.names == ["x", "b"]
        assert renamed.select(["b"]).names == ["b"]

    def test_concat_layout_mismatch(self):
        a = Batch({"x": np.arange(2)})
        b = Batch({"y": np.arange(2)})
        with pytest.raises(SchemaError):
            concat_batches([a, b])

    def test_concat_skips_empty(self):
        a = Batch({"x": np.arange(2, dtype=np.int64)})
        empty = Batch({"x": np.zeros(0, dtype=np.int64)})
        merged = concat_batches([empty, a, empty])
        assert len(merged) == 2


class TestSchemaTable:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"], [INT64, INT64])

    def test_schema_select_rename_concat(self):
        schema = Schema(["a", "b"], [INT64, STRING])
        assert schema.select(["b"]).names == ["b"]
        assert schema.rename({"a": "x"}).names == ["x", "b"]
        combined = schema.concat(Schema(["c"], [FLOAT64]))
        assert combined.names == ["a", "b", "c"]

    def test_table_coerces_dtypes(self):
        table = Table(Schema(["d"], [DATE]),
                      {"d": np.array([1, 2, 3], dtype=np.int64)})
        assert table.column("d").dtype == np.int32

    def test_table_batches_round_trip(self):
        table = Table.from_rows(["x"], [INT64],
                                [(i,) for i in range(10)])
        batches = table.to_batches(vector_size=3)
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        rebuilt = Table.from_batches(table.schema, batches)
        assert rebuilt.to_rows() == table.to_rows()

    def test_empty_table(self):
        table = Table.empty(Schema(["x", "s"], [INT64, STRING]))
        assert table.num_rows == 0
        assert table.to_batches() == []
        assert table.nbytes() == 0

    def test_sorted_rows_is_order_insensitive(self):
        a = Table.from_rows(["x"], [INT64], [(2,), (1,)])
        b = Table.from_rows(["x"], [INT64], [(1,), (2,)])
        assert a.sorted_rows() == b.sorted_rows()


class TestCatalog:
    def test_register_and_stats(self):
        catalog = Catalog()
        catalog.register_table("t", Table.from_rows(
            ["g", "v"], [INT64, FLOAT64],
            [(1, 1.0), (1, 2.0), (2, 3.0)]))
        assert catalog.distinct_count("t", "g") == 2
        assert catalog.column_range("t", "v") == (1.0, 3.0)

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_binning_spec_validation(self):
        with pytest.raises(CatalogError):
            BinningSpec("c", "nonsense")
        with pytest.raises(CatalogError):
            BinningSpec("c", "width", width=0)
        assert BinningSpec("c", "width", width=10).width == 10

    def test_function_schema_enforced(self):
        catalog = Catalog()
        schema = Schema(["n"], [INT64])

        def bad():
            return Table.from_rows(["wrong"], [INT64], [(1,)])

        catalog.register_function("f", bad, schema)
        with pytest.raises(CatalogError):
            catalog.call_function("f", [])

    def test_replace_table_recomputes_stats(self):
        catalog = Catalog()
        catalog.register_table("t", Table.from_rows(
            ["x"], [INT64], [(1,)]))
        catalog.register_table("t", Table.from_rows(
            ["x"], [INT64], [(1,), (2,), (3,)]))
        assert catalog.distinct_count("t", "x") == 3
