"""Tests for the operator-at-a-time baseline engine and its recycler."""

from __future__ import annotations

from repro.engine import execute_plan
from repro.expr import Cmp, Col, Lit
from repro.mat import MatRecycler, MaterializingEngine
from repro.plan import q


def agg_plan():
    return (q.scan("sales", ["product", "quantity"])
             .filter(Cmp(">", Col("quantity"), Lit(1)))
             .aggregate(keys=["product"],
                        aggs=[("sum", Col("quantity"), "total")])
             .build())


class TestEngineEquivalence:
    def test_same_results_as_pipelined(self, sales_catalog):
        engine = MaterializingEngine(sales_catalog)
        for plan in [
            agg_plan(),
            q.scan("sales", ["sale_id", "price"])
             .top_n([("price", False)], limit=3).build(),
            q.scan("sales", ["sale_id", "store_id"])
             .join(q.scan("stores", ["store_id", "city"])
                    .project([("s_id", Col("store_id")), "city"]),
                   on=[("store_id", "s_id")]).build(),
        ]:
            expected = execute_plan(plan, sales_catalog).table
            got = engine.execute(plan).table
            assert got.sorted_rows() == expected.sorted_rows()

    def test_materialization_overhead_charged(self, sales_catalog):
        pipelined = execute_plan(agg_plan(), sales_catalog)
        mat = MaterializingEngine(sales_catalog).execute(agg_plan())
        # Operator-at-a-time is strictly more expensive: it writes and
        # re-reads every intermediate.
        assert mat.total_cost > pipelined.stats.total_cost

    def test_counts_nodes(self, sales_catalog):
        result = MaterializingEngine(sales_catalog).execute(agg_plan())
        assert result.nodes_executed == 3
        assert result.nodes_reused == 0


class TestMatRecycler:
    def test_full_rerun_is_fully_reused(self, sales_catalog):
        recycler = MatRecycler(capacity=None)
        engine = MaterializingEngine(sales_catalog, recycler)
        first = engine.execute(agg_plan())
        second = engine.execute(agg_plan())
        assert second.nodes_reused == 1   # topmost fingerprint hit
        assert second.nodes_executed == 0
        assert second.total_cost < 0.1 * first.total_cost

    def test_admits_every_intermediate(self, sales_catalog):
        recycler = MatRecycler(capacity=None)
        engine = MaterializingEngine(sales_catalog, recycler)
        engine.execute(agg_plan())
        # scan + select + aggregate all cached (the paper's point: the
        # baseline must keep all intermediates leading to a result).
        assert len(recycler) == 3

    def test_partial_subtree_reuse(self, sales_catalog):
        recycler = MatRecycler(capacity=None)
        engine = MaterializingEngine(sales_catalog, recycler)
        engine.execute(agg_plan())
        other = (q.scan("sales", ["product", "quantity"])
                  .filter(Cmp(">", Col("quantity"), Lit(1)))
                  .aggregate(keys=["product"],
                             aggs=[("max", Col("quantity"), "mx")])
                  .build())
        result = engine.execute(other)
        assert result.nodes_reused == 1     # the shared select subtree
        assert result.nodes_executed == 1   # only the new aggregate

    def test_capacity_eviction(self, sales_catalog):
        recycler = MatRecycler(capacity=600)
        engine = MaterializingEngine(sales_catalog, recycler)
        engine.execute(agg_plan())
        assert recycler.used <= 600

    def test_flush(self, sales_catalog):
        recycler = MatRecycler(capacity=None)
        engine = MaterializingEngine(sales_catalog, recycler)
        engine.execute(agg_plan())
        assert recycler.flush() == 3
        result = engine.execute(agg_plan())
        assert result.nodes_reused == 0

    def test_alias_differences_do_not_match(self, sales_catalog):
        # The baseline matches on raw fingerprints: a different output
        # alias prevents reuse (the pipelined recycler's name mappings
        # handle this; the baseline's lighter matching does not).
        recycler = MatRecycler(capacity=None)
        engine = MaterializingEngine(sales_catalog, recycler)
        engine.execute(agg_plan())
        renamed = (q.scan("sales", ["product", "quantity"])
                    .filter(Cmp(">", Col("quantity"), Lit(1)))
                    .aggregate(keys=["product"],
                               aggs=[("sum", Col("quantity"), "other")])
                    .build())
        result = engine.execute(renamed)
        assert result.nodes_reused == 1   # shared select, not the agg
