"""Online DDL under concurrent sessions: the stale-publish race, closed.

The deterministic primitive (pattern from
``tests/test_cancellation_sessions.py``): a gated table function parks a
*producer* query mid-execution at a known point — after its catalog
snapshot is pinned and its store registrations are planted, before it
scans the base table to completion.  DDL is then applied while the
producer is parked, the gate opens, and the assertions check exactly
what the producer published and what later queries observe.

The headline pair:

* ``test_old_ordering_serves_stale_entry`` reproduces the seed bug — an
  invalidate-*then*-swap without a version bump lets the parked producer
  publish its old-table result *after* the invalidation sweep, and the
  recycler then serves that permanently stale entry to new queries;
* ``test_new_ordering_rejects_stale_publish`` shows the fix — swap and
  version bump first, invalidation second, and version-tagged admission
  rejects the producer's late publication, so a new query recomputes
  from the new table.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, Schema
from repro.columnar.catalog import TableEntry, _compute_stats
from repro.errors import CatalogError

T_SCHEMA = Schema(["g", "v"], [INT64, FLOAT64])
B_SCHEMA = Schema(["bg"], [INT64])
#: joins t against the gated function, so the root store depends on
#: both the base table and the blocker
QUERY = ("SELECT g, sum(v) AS sv FROM t, blocker()"
         " WHERE g = bg GROUP BY g")


def group_table(seed: int, n: int = 20000) -> Table:
    rng = np.random.default_rng(seed)
    return Table(T_SCHEMA, {"g": rng.integers(0, 8, n),
                            "v": rng.uniform(0, 1, n)})


class GatedFunction:
    """Table function whose first ``gate_calls`` invocations block."""

    def __init__(self, gate_calls: int = 1,
                 safety_timeout: float = 30.0) -> None:
        self.table = Table(B_SCHEMA, {"bg": np.arange(8)})
        self.gate_calls = gate_calls
        self.safety_timeout = safety_timeout
        self.started = threading.Event()
        self.go = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> Table:
        with self._lock:
            self.calls += 1
            gated = self.calls <= self.gate_calls
        if gated:
            self.started.set()
            self.go.wait(self.safety_timeout)
        return self.table


def make_db(table: Table, gated: bool = True,
            **config) -> tuple[Database, GatedFunction]:
    db = Database(RecyclerConfig(mode="spec", **config))
    db.register_table("t", table)
    gate = GatedFunction(gate_calls=1 if gated else 0)
    db.register_function("blocker", gate, B_SCHEMA,
                         invocation_cost=50_000.0)
    return db, gate


def expected_rows(table: Table) -> list:
    db, _ = make_db(table, gated=False)
    rows = db.sql(QUERY).table.to_rows()
    db.close()
    return rows


OLD_TABLE = group_table(seed=23)
NEW_TABLE = group_table(seed=99, n=10000)


@pytest.fixture(scope="module")
def old_rows():
    return expected_rows(OLD_TABLE)


@pytest.fixture(scope="module")
def new_rows():
    return expected_rows(NEW_TABLE)


def park_producer(db, gate):
    """Start QUERY on its own session/thread; returns (thread, box)
    once the producer is parked inside the gated function."""
    box: list[object] = []

    def produce():
        with db.connect() as session:
            try:
                box.append(session.sql(QUERY).table.to_rows())
            except BaseException as exc:  # surfaced by the test
                box.append(exc)

    thread = threading.Thread(target=produce)
    thread.start()
    assert gate.started.wait(10)
    return thread, box


class TestStalePublishRace:
    def test_premise_producer_result_is_cached(self, old_rows):
        """Baseline: without DDL, the parked producer's result is
        admitted and a repeat query reuses it — the very mechanism the
        race corrupts."""
        db, gate = make_db(OLD_TABLE)
        producer, box = park_producer(db, gate)
        gate.go.set()
        producer.join(timeout=15)
        assert box == [old_rows]
        again = db.sql(QUERY)
        assert again.table.to_rows() == old_rows
        assert again.record.num_reused >= 1
        db.close()

    def test_old_ordering_serves_stale_entry(self, old_rows, new_rows):
        """Seed-bug reproduction: invalidate *before* swapping, with no
        version bump (exactly what ``register_table`` used to do) —
        the parked producer publishes its old-table result after the
        sweep and the recycler serves it forever."""
        db, gate = make_db(OLD_TABLE)
        producer, box = park_producer(db, gate)
        # --- the old ordering: sweep first … ---
        db.recycler.invalidate_table("t")
        # … then swap the table without bumping the version (emulating
        # the pre-versioning catalog).
        entry = TableEntry(name="t", table=NEW_TABLE)
        entry.column_stats = _compute_stats(NEW_TABLE)
        db.catalog._tables["t"] = entry
        gate.go.set()
        producer.join(timeout=15)
        assert not producer.is_alive()
        assert box == [old_rows]
        # the live catalog holds the new table …
        assert db.catalog.table("t") is NEW_TABLE
        # … yet the stale entry is served: the race, demonstrated.
        stale = db.sql(QUERY)
        assert stale.record.num_reused >= 1
        assert stale.table.to_rows() == old_rows
        assert stale.table.to_rows() != new_rows
        db.close()

    def test_new_ordering_rejects_stale_publish(self, old_rows,
                                                new_rows):
        """The fix: ``Database.register_table`` swaps + bumps first,
        invalidates second, and version-tagged admission rejects the
        parked producer's late publication — a new query recomputes
        from the new table."""
        db, gate = make_db(OLD_TABLE)
        producer, box = park_producer(db, gate)
        db.register_table("t", NEW_TABLE)
        gate.go.set()
        producer.join(timeout=15)
        assert not producer.is_alive()
        # snapshot isolation: the producer still answers from the table
        # incarnation it pinned, never a mix
        assert box == [old_rows]
        # its publication was version-rejected, so the fresh query
        # recomputes from the new table
        fresh = db.sql(QUERY)
        assert fresh.table.to_rows() == new_rows
        summary = db.summary()["catalog"]
        assert summary["version_rejected"] >= 1
        assert summary["inflight_aborted"] >= 1
        assert len(db.recycler.inflight) == 0
        db.close()

    def test_ddl_wakes_stalled_consumer(self, old_rows):
        """A consumer blocked on the parked producer's in-flight node is
        woken by the DDL's producer abort (not the huge safety timeout)
        and recomputes against its own pre-DDL snapshot."""
        db, gate = make_db(OLD_TABLE, inflight_wait_timeout=120.0)
        producer, produced = park_producer(db, gate)
        consumed: list[object] = []

        def consume():
            with db.connect() as consumer:
                consumed.append(consumer.sql(QUERY).table.to_rows())

        consumer = threading.Thread(target=consume)
        consumer.start()
        time.sleep(0.3)  # let the consumer reach its in-flight stall
        began = time.monotonic()
        db.register_table("t", NEW_TABLE)
        gate.go.set()
        consumer.join(timeout=15)
        assert not consumer.is_alive()
        assert time.monotonic() - began < 10.0
        # the consumer pinned its snapshot before the DDL: it owes (and
        # delivers) the old-table answer, recomputed, not the
        # producer's result and not a mixed one
        assert consumed == [old_rows]
        producer.join(timeout=15)
        assert produced == [old_rows]
        assert len(db.recycler.inflight) == 0
        db.close()


class TestOnlineDdlApi:
    def test_drop_table_mid_flight(self, old_rows):
        db, gate = make_db(OLD_TABLE)
        producer, box = park_producer(db, gate)
        db.drop_table("t")
        gate.go.set()
        producer.join(timeout=15)
        # the in-flight query completes against its snapshot
        assert box == [old_rows]
        # new statements fail to bind; nothing stale is cached
        with pytest.raises(CatalogError):
            db.sql(QUERY)
        assert all("t" not in e.node.tables
                   for e in db.recycler.cache.entries())
        db.close()

    def test_append_rows_invalidates(self):
        table = Table(T_SCHEMA, {"g": np.array([0, 1]),
                                 "v": np.array([1.0, 2.0])})
        db, _ = make_db(table, gated=False)
        q = "SELECT g, sum(v) AS sv FROM t GROUP BY g"
        assert db.sql(q).table.sorted_rows() == [(0, 1.0), (1, 2.0)]
        db.append_rows("t", [(0, 5.0)])
        assert db.catalog.table_version("t") == 2
        assert db.sql(q).table.sorted_rows() == [(0, 6.0), (1, 2.0)]
        db.close()

    def test_register_function_invalidates(self):
        """Re-registering a table function evicts its cached dependents
        (used to be silently skipped, unlike ``register_table`` —
        ``Recycler.invalidate_function`` existed but was never called,
        leaving version-dead entries squatting in the cache)."""
        db, _ = make_db(OLD_TABLE, gated=False)
        q = "SELECT sum(bg) AS s FROM blocker()"
        assert db.sql(q).table.to_rows() == [(28,)]
        cached_before = len(db.recycler.cache)
        assert cached_before >= 1  # premise: the result was cached
        small = Table(B_SCHEMA, {"bg": np.arange(3)})
        db.register_function("blocker", lambda: small, B_SCHEMA,
                             invocation_cost=50_000.0)
        # dependents are gone from the cache, not just unreachable
        assert all("blocker" not in e.node.functions
                   for e in db.recycler.cache.entries())
        assert db.sql(q).table.to_rows() == [(3,)]
        summary = db.summary()["catalog"]
        assert summary["invalidations"] >= 1
        assert summary["entries_evicted"] >= cached_before
        db.close()

    def test_prebuilt_plan_rejects_retyped_table(self):
        """A prebuilt plan memoizes its schemas; replacing the table
        with same-named, differently-typed columns must fail validation
        (not execute against stale types)."""
        from repro.columnar import STRING
        from repro.errors import PlanError

        db, _ = make_db(OLD_TABLE, gated=False)
        plan = db.plan("SELECT g, sum(v) AS sv FROM t GROUP BY g")
        retyped = Table(Schema(["g", "v"], [INT64, STRING]),
                        {"g": np.array([1]), "v": np.array(["a"])})
        db.register_table("t", retyped)
        with pytest.raises(PlanError):
            db.execute(plan)
        db.close()

    def test_session_execute_rejects_retyped_table(self):
        """``Session.execute`` must validate a prebuilt plan against a
        freshly pinned snapshot, exactly like ``Database.execute``."""
        from repro.columnar import STRING
        from repro.errors import PlanError

        db, _ = make_db(OLD_TABLE, gated=False)
        plan = db.plan("SELECT g, sum(v) AS sv FROM t GROUP BY g")
        with db.connect() as session:
            assert session.execute(plan).table.num_rows == 8
            retyped = Table(Schema(["g", "v"], [INT64, STRING]),
                            {"g": np.array([1]), "v": np.array(["a"])})
            db.register_table("t", retyped)
            with pytest.raises(PlanError):
                session.execute(plan)
        db.close()

    def test_prebuilt_plan_rejects_retyped_function(self):
        from repro.errors import PlanError

        db, _ = make_db(OLD_TABLE, gated=False)
        plan = db.plan("SELECT sum(bg) AS s FROM blocker()")
        other = Schema(["bg", "extra"], [INT64, INT64])
        table = Table(other, {"bg": np.arange(3),
                              "extra": np.arange(3)})
        db.register_function("blocker", lambda: table, other)
        with pytest.raises(PlanError):
            db.execute(plan)
        db.close()

    def test_summary_catalog_counters(self):
        db, _ = make_db(OLD_TABLE, gated=False)
        summary = db.summary()["catalog"]
        assert summary["tables"] == 1
        assert summary["functions"] == 1
        assert summary["ddl_clock"] == 2  # table + function registration
        before = summary["invalidations"]
        db.register_table("t", NEW_TABLE)
        db.drop_table("t")
        summary = db.summary()["catalog"]
        assert summary["tables"] == 0
        assert summary["ddl_clock"] == 4
        assert summary["invalidations"] == before + 2
        db.close()
