"""Shared fixtures: small catalogs and tables used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import (Catalog, DATE, FLOAT64, INT64, STRING, Table,
                            date_to_days)


@pytest.fixture
def sales_catalog() -> Catalog:
    """A tiny sales schema: ``sales`` fact + ``stores`` dimension."""
    catalog = Catalog()
    sales = Table.from_rows(
        ["sale_id", "store_id", "product", "quantity", "price", "sold_on"],
        [INT64, INT64, STRING, INT64, FLOAT64, DATE],
        [
            (1, 1, "apple", 3, 1.5, date_to_days("2023-01-05")),
            (2, 1, "pear", 1, 2.0, date_to_days("2023-01-07")),
            (3, 2, "apple", 5, 1.4, date_to_days("2023-02-11")),
            (4, 2, "plum", 2, 3.0, date_to_days("2023-02-14")),
            (5, 3, "apple", 7, 1.6, date_to_days("2023-03-02")),
            (6, 3, "pear", 4, 2.1, date_to_days("2023-03-09")),
            (7, 1, "plum", 6, 2.9, date_to_days("2023-04-21")),
            (8, 2, "pear", 8, 2.2, date_to_days("2023-04-25")),
        ])
    stores = Table.from_rows(
        ["store_id", "city", "region"],
        [INT64, STRING, STRING],
        [
            (1, "Edinburgh", "north"),
            (2, "London", "south"),
            (3, "Glasgow", "north"),
        ])
    catalog.register_table("sales", sales)
    catalog.register_table("stores", stores)
    return catalog


@pytest.fixture
def wide_catalog() -> Catalog:
    """A larger synthetic table for exercising multi-batch pipelines."""
    rng = np.random.default_rng(7)
    n = 5000
    catalog = Catalog()
    table = Table(
        schema=Table.from_rows(
            ["k", "grp", "val", "flag"],
            [INT64, INT64, FLOAT64, STRING], []).schema,
        columns={
            "k": np.arange(n, dtype=np.int64),
            "grp": rng.integers(0, 25, n),
            "val": rng.normal(100.0, 15.0, n),
            "flag": np.array(
                [("even" if i % 2 == 0 else "odd") for i in range(n)],
                dtype=object),
        })
    catalog.register_table("wide", table)
    return catalog
