"""Tests for the TPC-H substrate: dbgen, queries, qgen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.sql import sql_to_plan
from repro.plan import validate_plan
from repro.workloads.tpch import (ALL_QUERY_IDS, ParameterGenerator,
                                  build_catalog, generate,
                                  generate_stream, generate_streams,
                                  query_sql, row_counts)

SCALE = 0.002


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(scale_factor=SCALE)


class TestDbgen:
    def test_all_tables_present(self, catalog):
        assert set(catalog.table_names()) == {
            "region", "nation", "supplier", "part", "partsupp",
            "customer", "orders", "lineitem"}

    def test_row_counts_proportional(self):
        counts = row_counts(0.01)
        assert counts["lineitem"] == 60000
        assert counts["orders"] == 15000
        assert counts["region"] == 5
        assert counts["nation"] == 25

    def test_deterministic(self):
        a = generate(scale_factor=SCALE, seed=1)
        b = generate(scale_factor=SCALE, seed=1)
        assert (a["lineitem"].column("l_quantity")
                == b["lineitem"].column("l_quantity")).all()
        c = generate(scale_factor=SCALE, seed=2)
        # different seed -> different data (sizes differ via the random
        # lines-per-order draw, or values differ)
        a_prices = a["lineitem"].column("l_extendedprice")
        c_prices = c["lineitem"].column("l_extendedprice")
        assert len(a_prices) != len(c_prices) or \
            not (a_prices == c_prices).all()

    def test_referential_integrity(self, catalog):
        lineitem = catalog.table("lineitem")
        orders = catalog.table("orders")
        assert set(np.unique(lineitem.column("l_orderkey"))) <= \
            set(orders.column("o_orderkey"))
        assert lineitem.column("l_partkey").max() <= \
            catalog.table("part").num_rows
        nations = catalog.table("nation")
        assert set(np.unique(nations.column("n_regionkey"))) <= \
            set(range(5))

    def test_date_ordering_invariants(self, catalog):
        lineitem = catalog.table("lineitem")
        assert (lineitem.column("l_receiptdate")
                > lineitem.column("l_shipdate")).all()

    def test_value_domains(self, catalog):
        lineitem = catalog.table("lineitem")
        assert set(np.unique(lineitem.column("l_returnflag"))) <= \
            {"R", "A", "N"}
        part = catalog.table("part")
        assert part.column("p_size").min() >= 1
        assert part.column("p_size").max() <= 50
        brands = set(part.column("p_brand"))
        assert all(b.startswith("Brand#") for b in brands)

    def test_binnings_registered(self, catalog):
        assert catalog.binning_for("lineitem", "l_shipdate") is not None
        assert catalog.binning_for("orders", "o_orderdate") is not None


class TestQueries:
    @pytest.mark.parametrize("pattern", ALL_QUERY_IDS)
    def test_every_pattern_binds_and_runs(self, catalog, pattern):
        rng = np.random.default_rng(77)
        params = ParameterGenerator(rng, SCALE).params_for(pattern)
        sql = query_sql(pattern, params)
        plan = sql_to_plan(sql, catalog)
        validate_plan(plan, catalog)
        result = execute_plan(plan, catalog)
        assert result.stats.total_cost > 0

    def test_q1_is_deterministic(self, catalog):
        sql = query_sql(1, {"delta": 90})
        a = execute_plan(sql_to_plan(sql, catalog), catalog).table
        b = execute_plan(sql_to_plan(sql, catalog), catalog).table
        assert a.to_rows() == b.to_rows()

    def test_q1_aggregates_check_out(self, catalog):
        from repro.columnar import date_to_days
        sql = query_sql(1, {"delta": 90})
        table = execute_plan(sql_to_plan(sql, catalog), catalog).table
        lineitem = catalog.table("lineitem")
        cutoff = date_to_days("1998-12-01") - 90
        mask = lineitem.column("l_shipdate") <= cutoff
        assert int(np.sum(table.column("count_order"))) == int(mask.sum())
        expected_qty = float(lineitem.column("l_quantity")[mask].sum())
        assert float(np.sum(table.column("sum_qty"))) == \
            pytest.approx(expected_qty)

    def test_q6_matches_numpy_reference(self, catalog):
        from repro.columnar import date_to_days
        params = {"year": 1994, "discount": 0.06, "quantity": 24}
        sql = query_sql(6, params)
        table = execute_plan(sql_to_plan(sql, catalog), catalog).table
        li = catalog.table("lineitem")
        lo = date_to_days("1994-01-01")
        hi = date_to_days("1995-01-01")
        mask = ((li.column("l_shipdate") >= lo)
                & (li.column("l_shipdate") < hi)
                & (li.column("l_discount") >= 0.05)
                & (li.column("l_discount") <= 0.07)
                & (li.column("l_quantity") < 24))
        expected = float((li.column("l_extendedprice")[mask]
                          * li.column("l_discount")[mask]).sum())
        assert float(table.column("revenue")[0]) == pytest.approx(expected)

    def test_q4_semi_join_reference(self, catalog):
        from repro.columnar import date_to_days
        sql = query_sql(4, {"date": "1994-01-01"})
        table = execute_plan(sql_to_plan(sql, catalog), catalog).table
        orders = catalog.table("orders")
        lineitem = catalog.table("lineitem")
        lo = date_to_days("1994-01-01")
        hi = date_to_days("1994-04-01")
        late = set(lineitem.column("l_orderkey")[
            lineitem.column("l_commitdate")
            < lineitem.column("l_receiptdate")])
        window = ((orders.column("o_orderdate") >= lo)
                  & (orders.column("o_orderdate") < hi))
        expected = sum(1 for key, inside in
                       zip(orders.column("o_orderkey"), window)
                       if inside and key in late)
        assert int(np.sum(table.column("order_count"))) == expected


class TestQgen:
    def test_stream_contains_all_patterns(self):
        stream = generate_stream(0, SCALE)
        assert sorted(q.pattern for q in stream) == ALL_QUERY_IDS

    def test_streams_are_deterministic(self):
        a = generate_stream(3, SCALE)
        b = generate_stream(3, SCALE)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_streams_differ(self):
        a = generate_stream(0, SCALE)
        b = generate_stream(1, SCALE)
        assert [q.pattern for q in a] != [q.pattern for q in b] or \
            [q.sql for q in a] != [q.sql for q in b]

    def test_parameter_domains(self):
        rng = np.random.default_rng(5)
        generator = ParameterGenerator(rng, SCALE)
        for _ in range(50):
            p1 = generator.params_for(1)
            assert 60 <= p1["delta"] <= 120
            p6 = generator.params_for(6)
            assert 0.02 <= p6["discount"] <= 0.09
            assert p6["quantity"] in (24, 25)
            p16 = generator.params_for(16)
            assert len(p16["sizes"]) == 8
            assert len(set(p16["sizes"])) == 8

    def test_sharing_potential_grows_with_streams(self):
        # With many streams, identical (pattern, params) pairs appear —
        # the root cause of the paper's sharing potential.
        streams = generate_streams(48, SCALE)
        texts = [q.sql for s in streams for q in s]
        assert len(set(texts)) < len(texts)
