"""Workload-suite fixtures.

The time-series workload reuses the stress suite's deterministic
interleaver; pytest only puts each test file's own directory on
``sys.path`` (no ``__init__.py`` packages here), so add ``tests/stress``
explicitly.
"""

from __future__ import annotations

import sys
from pathlib import Path

_STRESS_DIR = Path(__file__).resolve().parent.parent / "stress"
if str(_STRESS_DIR) not in sys.path:
    sys.path.insert(0, str(_STRESS_DIR))
