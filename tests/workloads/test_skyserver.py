"""Tests for the synthetic SkyServer substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import execute_plan
from repro.recycler import Recycler, RecyclerConfig
from repro.sql import sql_to_plan
from repro.workloads.skyserver import (CANONICAL_CONE, build_catalog,
                                       generate_photoobj,
                                       generate_workload, make_cone_search,
                                       primary_pattern)


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(num_rows=12000)


class TestData:
    def test_photoobj_shape(self):
        table = generate_photoobj(5000)
        assert table.num_rows == 5000
        assert len(np.unique(table.column("objid"))) == 5000

    def test_cone_search_correctness(self):
        table = generate_photoobj(5000)
        search = make_cone_search(table)
        result = search(*CANONICAL_CONE)
        assert result.num_rows > 0
        # every returned object is within the radius
        assert (result.column("distance") <= CANONICAL_CONE[2]).all()
        # ordered nearest-first
        distances = result.column("distance")
        assert (np.diff(distances) >= 0).all()

    def test_cone_search_excludes_far_objects(self):
        table = generate_photoobj(5000)
        search = make_cone_search(table)
        narrow = search(195, 2.5, 0.1)
        wide = search(195, 2.5, 0.5)
        assert narrow.num_rows < wide.num_rows
        assert set(narrow.column("objid")) <= set(wide.column("objid"))

    def test_function_is_expensive(self, catalog):
        entry = catalog.function_entry("fgetnearbyobjeq")
        assert entry.invocation_cost > 10000


class TestWorkload:
    def test_workload_size_and_mix(self):
        workload = generate_workload(100)
        assert len(workload) == 100
        labels = {q.label for q in workload}
        assert "primary" in labels
        primary_share = sum(1 for q in workload
                            if q.label == "primary") / 100
        assert 0.4 < primary_share < 0.8

    def test_workload_is_deterministic(self):
        a = generate_workload(50, seed=9)
        b = generate_workload(50, seed=9)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_primary_pattern_runs(self, catalog):
        plan = sql_to_plan(primary_pattern(), catalog)
        result = execute_plan(plan, catalog)
        assert result.table.num_rows == 10
        assert "objid" in result.table.schema.names

    def test_recycling_collapses_repeat_cost(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        first = recycler.execute(
            sql_to_plan(primary_pattern(), catalog))
        second = recycler.execute(
            sql_to_plan(primary_pattern(), catalog))
        assert second.stats.total_cost < 0.01 * first.stats.total_cost
        assert second.table.to_rows() == first.table.to_rows()

    def test_function_result_shared_across_variants(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        recycler.execute(sql_to_plan(primary_pattern(), catalog))
        from repro.workloads.skyserver.queries import \
            type_histogram_variant
        variant = recycler.execute(
            sql_to_plan(type_histogram_variant(), catalog))
        # different query, same cone: the function result is reused
        assert variant.stats.num_reused >= 1
        entry = recycler.catalog.function_entry("fgetnearbyobjeq")
        assert variant.stats.total_cost < entry.invocation_cost

    def test_tiny_cache_footprint(self, catalog):
        # The paper: the recycler needs only a few hundred KB for this
        # workload (vs 1.5 GB for keep-everything recycling).
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        for query in generate_workload(30):
            recycler.execute(sql_to_plan(query.sql, catalog))
        assert recycler.cache.used < 512 * 1024
