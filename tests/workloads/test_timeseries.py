"""Append-heavy time-series workload: ingest racing query traffic.

Two angles on the same workload module:

* **Sustained ingest, one session** — appends interleaved with range /
  aggregate queries must always see exactly the rows appended so far
  (expectations recomputed per step from the deterministic feed), the
  appended table's cached results must never be served across an
  append, and statistics maintenance must take the incremental-merge
  path rather than rescanning the table on every batch.

* **Concurrent replay** — the seeded-admission interleaver runs the
  ingest stream against 6 query streams; every query's rows must be
  byte-identical to a serial replay of the same streams on a fresh
  database, while the recycler's invariants hold under the version
  churn.
"""

from __future__ import annotations

import pytest

from interleave import DeterministicInterleaver, serial_reference

from repro import Database, RecyclerConfig
from repro.workloads import timeseries as ts

SEEDS = (11, 4242)


def build_db(**config) -> Database:
    return Database(RecyclerConfig(mode="spec", **config),
                    catalog=ts.build_catalog())


# ----------------------------------------------------------------------
# sustained single-session ingest
# ----------------------------------------------------------------------
class TestSustainedIngest:
    def test_queries_track_ingest_exactly(self):
        db = build_db()
        total = 2048
        batch = 128
        with db.connect() as session:
            for i in range(12):
                db.append_rows(
                    "metrics", ts._batch(total, batch, 9090 + i))
                total += batch
                count = session.sql(
                    "SELECT count(*) AS n FROM metrics")
                assert count.table.to_rows() == [(total,)]
                window = session.sql(ts.range_scan(total - batch, total))
                # every batch covers all sensors uniformly
                assert window.table.num_rows == ts.NUM_SENSORS
                rollup = session.sql(ts.sensor_rollup())
                per_sensor = {row[0]: row[1]
                              for row in rollup.table.to_rows()}
                assert sum(per_sensor.values()) == total
        db.close()

    def test_appended_table_results_never_stale(self):
        """A result over ``metrics`` cached before an append must not be
        reused after it — ``num_reused`` stays 0 across every batch."""
        db = build_db()
        total = 2048
        sql = ts.sensor_rollup()
        with db.connect() as session:
            session.sql(sql)
            for i in range(6):
                db.append_rows(
                    "metrics", ts._batch(total, 64, 7000 + i))
                total += 64
                result = session.sql(sql)
                assert session.records[-1].num_reused == 0
                counted = sum(r[1] for r in result.table.to_rows())
                assert counted == total
            # no append between these two: now reuse is allowed again
            session.sql(sql)
            assert session.records[-1].num_reused > 0
        db.close()

    def test_static_dimension_keeps_recycling(self):
        """Ingest on ``metrics`` must not evict results that only touch
        the static ``sensors`` dimension."""
        # the 8-row dimension query costs ~20 units; drop the store
        # floor so it is admissible at all
        db = build_db(min_store_cost=0.0)
        sql = "SELECT site, count(*) AS n FROM sensors GROUP BY site"
        with db.connect() as session:
            # history mode stores on the second sighting; warm twice so
            # the loop's executions can reuse
            session.sql(sql)
            session.sql(sql)
            for i in range(4):
                db.append_rows("metrics", ts._batch(5000 + 64 * i, 64,
                                                    8000 + i))
                session.sql(sql)
                assert session.records[-1].num_reused > 0
        db.close()

    def test_incremental_stats_engage(self):
        db = build_db()
        before = dict(db.catalog.stats_counters)
        total = 2048
        for i in range(6):
            db.append_rows("metrics", ts._batch(total, 64, 6000 + i))
            total += 64
        after = db.catalog.stats_counters
        merges = after["incremental_merges"] - before["incremental_merges"]
        assert merges > 0
        # maintenance surface reports the same counter
        assert db.summary()["maintenance"][
            "stats_incremental_merges"] == after["incremental_merges"]
        db.close()


# ----------------------------------------------------------------------
# concurrent replay vs serial reference
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replay_setup():
    streams = ts.generate_streams()
    reference_db = build_db()
    reference = serial_reference(reference_db, streams)
    reference_db.close()
    return streams, reference


class TestIngestReplay:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_byte_identical_to_serial(self, replay_setup, seed):
        streams, reference = replay_setup
        db = build_db()
        runner = DeterministicInterleaver(db, seed=seed, slots=8)
        result = runner.run(streams)
        assert len(result.rows) == sum(len(s) for s in streams)
        for key, rows in result.rows.items():
            assert rows == reference[key], key
        # ingest really ran and stats stayed on the cheap path
        assert db.catalog.stats_counters["incremental_merges"] > 0
        db.recycler.graph.check_invariants()
        db.recycler.cache.check_invariants()
        assert len(db.recycler.inflight) == 0
        # surviving cache entries are all at the live catalog version
        live = db.catalog
        for entry in db.recycler.cache.entries():
            tables, functions = live.versions_for(
                entry.node.tables, entry.node.functions)
            assert entry.versions_match(tables, functions), entry.node
        db.close()

    def test_shared_query_traffic_recycles(self, replay_setup):
        """The static query mix overlaps across streams — even under
        ingest some results must actually be reused."""
        streams, _ = replay_setup
        db = build_db()
        runner = DeterministicInterleaver(db, seed=77, slots=8)
        result = runner.run(streams)
        assert result.num_reused > 0
        db.close()
