"""Unit tests for the canonicalizing plan optimizer.

The first class reproduces the three recycler-miss bugs this pass was
built to close (stacked filters vs. one AND, ``1`` vs. ``1.0``
literals, identity projections) at the fingerprint level; the
cache-level halves of those regressions live in
``tests/recycler/test_canonical_match.py``.  The remaining classes
exercise each strategy in isolation, including the cases a strategy
must *not* touch.
"""

from __future__ import annotations

import pytest

from repro.columnar import Catalog, INT64, STRING, Table
from repro.expr import nodes as e
from repro.plan import PlanOptimizer, plan_fingerprint, q
from repro.plan.logical import (Join, Limit, Project, Scan, Select, Sort,
                                TopN, UnionAll)


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_table("t", Table.from_rows(
        ["a", "b", "s"], [INT64, INT64, STRING],
        [(i, 2 * i, "x" if i % 2 else "y") for i in range(10)]))
    catalog.register_table("u", Table.from_rows(
        ["c", "d"], [INT64, INT64],
        [(i, 3 * i) for i in range(10)]))
    return catalog


@pytest.fixture
def view(catalog):
    return catalog.snapshot()


def optimize(plan, view):
    return PlanOptimizer().optimize(plan, view)


def same_fingerprint(p1, p2, view) -> bool:
    o1, _ = optimize(p1, view)
    o2, _ = optimize(p2, view)
    return plan_fingerprint(o1) == plan_fingerprint(o2)


def gt(column: str, value) -> e.Expr:
    return e.Cmp(">", e.Col(column), e.Lit(value))


def lt(column: str, value) -> e.Expr:
    return e.Cmp("<", e.Col(column), e.Lit(value))


class TestReproducedMisses:
    """The three miss bugs from the issue, fixed at fingerprint level."""

    def test_stacked_filters_match_single_and(self, view):
        stacked = (q.scan("t", ["a", "b"]).filter(gt("a", 1))
                    .filter(lt("b", 5)).build())
        merged = (q.scan("t", ["a", "b"])
                   .filter(e.And([gt("a", 1), lt("b", 5)])).build())
        assert plan_fingerprint(stacked) != plan_fingerprint(merged)
        assert same_fingerprint(stacked, merged, view)

    def test_int_and_integral_float_literals_match(self, view):
        as_int = q.scan("t", ["a"]).filter(gt("a", 1)).build()
        as_float = q.scan("t", ["a"]).filter(gt("a", 1.0)).build()
        assert plan_fingerprint(as_int) != plan_fingerprint(as_float)
        assert same_fingerprint(as_int, as_float, view)

    def test_identity_project_matches_bare_plan(self, view):
        bare = q.scan("t", ["a", "b"]).filter(gt("a", 3)).build()
        wrapped = (q.scan("t", ["a", "b"]).filter(gt("a", 3))
                    .project(["a", "b"]).build())
        assert plan_fingerprint(bare) != plan_fingerprint(wrapped)
        assert same_fingerprint(bare, wrapped, view)


class TestNormalizeLiterals:
    def test_rewrites_cmp_literal(self, view):
        plan = q.scan("t", ["a"]).filter(gt("a", 4.0)).build()
        optimized, counts = optimize(plan, view)
        assert counts["normalize_literals"] == 1
        assert optimized.predicate.right.value == 4
        assert isinstance(optimized.predicate.right.value, int)

    def test_non_integral_float_untouched(self, view):
        plan = q.scan("t", ["a"]).filter(gt("a", 4.5)).build()
        optimized, counts = optimize(plan, view)
        assert "normalize_literals" not in counts
        assert optimized is plan

    def test_literal_inside_arithmetic_untouched(self, view):
        # x + 1.0 changes the expression's dtype; only direct Cmp
        # operands are normalized.
        pred = e.Cmp(">", e.Arith("+", e.Col("a"), e.Lit(1.0)),
                     e.Lit(3))
        plan = q.scan("t", ["a"]).filter(pred).build()
        optimized, counts = optimize(plan, view)
        assert "normalize_literals" not in counts
        assert optimized is plan

    def test_normalizes_inside_boolean_skeleton(self, view):
        pred = e.Or([e.Not(gt("a", 2.0)), lt("b", 7.0)])
        plan = q.scan("t", ["a", "b"]).filter(pred).build()
        merged = (q.scan("t", ["a", "b"])
                   .filter(e.Or([e.Not(gt("a", 2)), lt("b", 7)]))
                   .build())
        assert same_fingerprint(plan, merged, view)

    def test_join_extra_normalized(self, view):
        left = q.scan("t", ["a", "b"])
        right = q.scan("u", ["c", "d"])
        with_float = left.join(right, on=[("a", "c")],
                               extra=gt("d", 5.0)).build()
        with_int = (q.scan("t", ["a", "b"])
                     .join(q.scan("u", ["c", "d"]), on=[("a", "c")],
                           extra=gt("d", 5)).build())
        assert same_fingerprint(with_float, with_int, view)


class TestMergeSelects:
    def test_conjunct_order_is_irrelevant(self, view):
        ab = (q.scan("t", ["a", "b"]).filter(gt("a", 1))
               .filter(lt("b", 5)).build())
        ba = (q.scan("t", ["a", "b"]).filter(lt("b", 5))
               .filter(gt("a", 1)).build())
        assert same_fingerprint(ab, ba, view)

    def test_triple_stack_collapses(self, view):
        plan = (q.scan("t", ["a", "b"]).filter(gt("a", 1))
                 .filter(lt("b", 8)).filter(gt("b", 2)).build())
        optimized, counts = optimize(plan, view)
        assert counts["merge_selects"] == 2
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Scan)
        assert len(optimized.predicate.args) == 3


class TestElideIdentityProject:
    def test_reordering_project_kept(self, view):
        plan = (q.scan("t", ["a", "b"]).project(["b", "a"]).build())
        optimized, counts = optimize(plan, view)
        assert "elide_identity_project" not in counts
        assert optimized is plan

    def test_renaming_project_kept(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .project([("a2", e.Col("a")), ("b", e.Col("b"))])
                 .build())
        optimized, _ = optimize(plan, view)
        assert isinstance(optimized, Project)

    def test_nested_identity_projects_all_elided(self, view):
        plan = (q.scan("t", ["a", "b"]).project(["a", "b"])
                 .project(["a", "b"]).build())
        optimized, counts = optimize(plan, view)
        assert counts["elide_identity_project"] == 2
        assert isinstance(optimized, Scan)


class TestPushdownProject:
    def test_filter_moves_below_pass_through_project(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .project([("a2", e.Col("a")), ("b", e.Col("b"))])
                 .filter(e.Cmp(">", e.Col("a2"), e.Lit(3)))
                 .build())
        optimized, counts = optimize(plan, view)
        assert counts["pushdown_project"] == 1
        assert isinstance(optimized, Project)
        assert isinstance(optimized.child, Select)
        # the predicate was rewritten through the rename
        assert optimized.child.predicate.columns() == {"a"}

    def test_filter_on_computed_column_stays(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .project([("ab", e.Arith("+", e.Col("a"), e.Col("b")))])
                 .filter(e.Cmp(">", e.Col("ab"), e.Lit(3)))
                 .build())
        optimized, counts = optimize(plan, view)
        assert "pushdown_project" not in counts
        assert isinstance(optimized, Select)


class TestPushdownJoin:
    def _join(self, kind="inner"):
        return q.scan("t", ["a", "b"]).join(
            q.scan("u", ["c", "d"]), on=[("a", "c")], kind=kind)

    def test_left_and_right_conjuncts_move_inner(self, view):
        plan = self._join().filter(
            e.And([gt("b", 1), lt("d", 9)])).build()
        optimized, counts = optimize(plan, view)
        assert counts["pushdown_join"] == 1
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)
        assert isinstance(optimized.right, Select)

    def test_right_conjunct_stays_for_left_join(self, view):
        plan = self._join("left").filter(lt("d", 9)).build()
        optimized, counts = optimize(plan, view)
        assert "pushdown_join" not in counts
        assert isinstance(optimized, Select)

    def test_left_conjunct_moves_for_left_join(self, view):
        plan = self._join("left").filter(gt("b", 1)).build()
        optimized, _ = optimize(plan, view)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Select)

    def test_matches_prepushed_shape(self, view):
        above = self._join().filter(gt("b", 1)).build()
        below = (q.scan("t", ["a", "b"]).filter(gt("b", 1))
                  .join(q.scan("u", ["c", "d"]), on=[("a", "c")])
                  .build())
        assert same_fingerprint(above, below, view)

    def test_multi_side_conjunct_stays(self, view):
        plan = self._join().filter(
            e.Cmp(">", e.Col("b"), e.Col("d"))).build()
        optimized, counts = optimize(plan, view)
        assert "pushdown_join" not in counts
        assert isinstance(optimized, Select)


class TestLimits:
    def test_limit_limit_collapses(self, view):
        plan = q.scan("t", ["a"]).limit(7).limit(3).build()
        optimized, counts = optimize(plan, view)
        assert counts["collapse_limits"] == 1
        assert isinstance(optimized, Limit)
        assert isinstance(optimized.child, Scan)
        assert (optimized.limit, optimized.offset) == (3, 0)

    def test_limit_offset_composition(self, view):
        plan = q.scan("t", ["a"]).limit(7, 1).limit(9, 4).build()
        optimized, _ = optimize(plan, view)
        # inner yields rows 1..7; outer skips 4 of those, keeps 3.
        assert (optimized.limit, optimized.offset) == (3, 5)

    def test_limit_sort_fuses_to_topn(self, view):
        plan = q.scan("t", ["a"]).sort(["a"]).limit(5).build()
        topn = q.scan("t", ["a"]).top_n(["a"], 5).build()
        optimized, counts = optimize(plan, view)
        assert counts["fuse_limit_sort"] == 1
        assert isinstance(optimized, TopN)
        assert plan_fingerprint(optimized) == plan_fingerprint(topn)

    def test_limit_topn_collapses(self, view):
        plan = q.scan("t", ["a"]).top_n(["a"], 7).limit(3).build()
        optimized, _ = optimize(plan, view)
        assert isinstance(optimized, TopN)
        assert (optimized.limit, optimized.offset) == (3, 0)

    def test_empty_limit_drops_sort(self, view):
        plan = q.scan("t", ["a"]).sort(["a"]).limit(0).build()
        optimized, _ = optimize(plan, view)
        assert isinstance(optimized, Limit)
        assert optimized.limit == 0
        assert isinstance(optimized.child, Scan)

    def test_plain_sort_untouched(self, view):
        plan = q.scan("t", ["a"]).sort(["a"]).build()
        optimized, _ = optimize(plan, view)
        assert isinstance(optimized, Sort)


class TestDeterministicOrdering:
    def test_join_key_pair_order_is_canonical(self, view):
        ab = q.scan("t", ["a", "b"]).join(
            q.scan("u", ["c", "d"]),
            on=[("a", "c"), ("b", "d")]).build()
        ba = q.scan("t", ["a", "b"]).join(
            q.scan("u", ["c", "d"]),
            on=[("b", "d"), ("a", "c")]).build()
        assert plan_fingerprint(ab) != plan_fingerprint(ba)
        assert same_fingerprint(ab, ba, view)

    def test_union_input_order_is_canonical(self, view):
        p1 = q.scan("t", ["a", "b"]).filter(gt("a", 1))
        p2 = q.scan("t", ["a", "b"]).filter(gt("a", 7))
        u12 = p1.union_all(p2).build()
        u21 = (q.scan("t", ["a", "b"]).filter(gt("a", 7))
                .union_all(q.scan("t", ["a", "b"]).filter(gt("a", 1)))
                .build())
        assert same_fingerprint(u12, u21, view)

    def test_union_with_distinct_schemas_untouched(self, view):
        u = q.scan("t", ["a", "b"]).union_all(
            q.scan("u", ["c", "d"])).build()
        optimized, counts = optimize(u, view)
        assert "order_union_inputs" not in counts
        assert isinstance(optimized, UnionAll)
        assert optimized is u


class TestSplitSargableSelect:
    def test_mixed_predicate_splits_over_leaf(self, view):
        residual = e.Cmp("<", e.Col("a"), e.Col("b"))
        plan = (q.scan("t", ["a", "b"])
                 .filter(e.And([gt("a", 2), residual])).build())
        optimized, counts = optimize(plan, view)
        assert counts["split_sargable_select"] == 1
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Select)
        assert optimized.predicate.key() == residual.key()
        assert optimized.child.predicate.key() == gt("a", 2).key()

    def test_residual_variants_share_the_sargable_node(self, view):
        base = q.scan("t", ["a", "b"]).filter(gt("a", 2)).build()
        mixed = (q.scan("t", ["a", "b"])
                  .filter(e.And([gt("a", 2),
                                 e.Cmp("<", e.Col("a"), e.Col("b"))]))
                  .build())
        o_base, _ = optimize(base, view)
        o_mixed, _ = optimize(mixed, view)
        assert plan_fingerprint(o_mixed.child) == \
            plan_fingerprint(o_base)

    def test_pure_sargable_not_split(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .filter(e.And([gt("a", 2), lt("b", 9)])).build())
        optimized, counts = optimize(plan, view)
        assert "split_sargable_select" not in counts
        assert isinstance(optimized.child, Scan)


class TestFixpoint:
    def test_idempotent(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .filter(gt("a", 1.0)).filter(lt("b", 5))
                 .project(["a", "b"]).sort(["a"]).limit(4).build())
        once, counts = optimize(plan, view)
        assert counts
        twice, recounts = optimize(once, view)
        assert twice is once
        assert not recounts

    def test_canonical_plan_keeps_identity(self, view):
        plan = (q.scan("t", ["a", "b"])
                 .filter(e.And([gt("a", 1), lt("b", 5)])).build())
        optimized, counts = optimize(plan, view)
        assert optimized is plan
        assert not counts
