"""Shape battery: table-driven must-share / must-not-share pairs.

One row per equivalence (or non-equivalence) of plan shapes.  The
MUST_SHARE rows cover every optimizer strategy: with the pass on, both
shapes in a row canonicalize to one fingerprint.  The MUST_NOT_SHARE
rows are the soundness half — semantically different plans must keep
distinct fingerprints both with the optimizer *on* (no over-merging)
and *off* (raw binding never collided and still must not).
"""

from __future__ import annotations

import pytest

from repro.columnar import Catalog, INT64, STRING, Table
from repro.expr import And, Arith, Cmp, Col, Lit, Or
from repro.plan import PlanOptimizer, plan_fingerprint, q
from repro.plan.logical import Select


@pytest.fixture(scope="module")
def view():
    catalog = Catalog()
    catalog.register_table("t", Table.from_rows(
        ["a", "b", "s"], [INT64, INT64, STRING],
        [(i, 2 * i, "x" if i % 2 else "y") for i in range(10)]))
    catalog.register_table("u", Table.from_rows(
        ["c", "d"], [INT64, INT64],
        [(i, 3 * i) for i in range(10)]))
    return catalog.snapshot()


def scan_t():
    return q.scan("t", ["a", "b"])


def join_tu(kind="inner", on=(("a", "c"),)):
    return scan_t().join(q.scan("u", ["c", "d"]), on=list(on),
                         kind=kind)


def gt(column, value):
    return Cmp(">", Col(column), Lit(value))


# each row: (id, build_left, build_right)
MUST_SHARE = [
    ("merge-selects: stacked filters vs one AND",
     lambda: scan_t().filter(gt("a", 1)).filter(gt("b", 2)).build(),
     lambda: scan_t().filter(And([gt("a", 1), gt("b", 2)])).build()),
    ("normalize-literals: 1 vs 1.0",
     lambda: scan_t().filter(gt("a", 1)).build(),
     lambda: scan_t().filter(gt("a", 1.0)).build()),
    ("elide-identity-project: wrapped vs bare",
     lambda: scan_t().filter(gt("a", 1)).project(["a", "b"]).build(),
     lambda: scan_t().filter(gt("a", 1)).build()),
    ("pushdown-project: filter above vs below a rename",
     lambda: (scan_t().project([("a2", Col("a")), ("b", Col("b"))])
              .filter(Cmp(">", Col("a2"), Lit(1))).build()),
     lambda: (scan_t().filter(gt("a", 1))
              .project([("a2", Col("a")), ("b", Col("b"))]).build())),
    ("pushdown-join: left filter above vs below the join",
     lambda: join_tu().filter(gt("b", 1)).build(),
     lambda: (scan_t().filter(gt("b", 1))
              .join(q.scan("u", ["c", "d"]), on=[("a", "c")]).build())),
    ("collapse-limits: limit over limit vs composed limit",
     lambda: scan_t().limit(7).limit(3).build(),
     lambda: scan_t().limit(3).build()),
    ("fuse-limit-sort: sort+limit vs topn",
     lambda: scan_t().sort(["a"]).limit(5).build(),
     lambda: scan_t().top_n(["a"], 5).build()),
    ("order-join-keys: key pair order",
     lambda: join_tu(on=(("a", "c"), ("b", "d"))).build(),
     lambda: join_tu(on=(("b", "d"), ("a", "c"))).build()),
    ("order-union-inputs: input order",
     lambda: (scan_t().filter(gt("a", 1))
              .union_all(scan_t().filter(gt("a", 7))).build()),
     lambda: (scan_t().filter(gt("a", 7))
              .union_all(scan_t().filter(gt("a", 1))).build())),
    ("order-scan-columns: scan spelling under an aggregate",
     lambda: (scan_t().filter(gt("a", 1))
              .aggregate(keys=["a"], aggs=[("sum", Col("b"), "sb")])
              .build()),
     lambda: (q.scan("t", ["b", "a"]).filter(gt("a", 1))
              .aggregate(keys=["a"], aggs=[("sum", Col("b"), "sb")])
              .build())),
    ("split-sargable: mixed AND vs pre-split stack",
     lambda: (scan_t()
              .filter(And([gt("a", 2),
                           Cmp("<", Col("a"), Col("b"))])).build()),
     lambda: Select(scan_t().filter(gt("a", 2)).build(),
                    Cmp("<", Col("a"), Col("b")))),
    ("composed: float literal + stack + identity project",
     lambda: (scan_t().filter(gt("a", 1.0)).filter(gt("b", 2))
              .project(["a", "b"]).build()),
     lambda: scan_t().filter(And([gt("b", 2), gt("a", 1)])).build()),
]

MUST_NOT_SHARE = [
    ("different literal values",
     lambda: scan_t().filter(gt("a", 1)).build(),
     lambda: scan_t().filter(gt("a", 2)).build()),
    ("> vs >=",
     lambda: scan_t().filter(gt("a", 1)).build(),
     lambda: scan_t().filter(Cmp(">=", Col("a"), Lit(1))).build()),
    ("non-integral float is a different predicate",
     lambda: scan_t().filter(gt("a", 1)).build(),
     lambda: scan_t().filter(gt("a", 1.5)).build()),
    ("arithmetic literal dtype is significant",
     lambda: (scan_t().project(
         [("x", Arith("+", Col("a"), Lit(1)))]).build()),
     lambda: (scan_t().project(
         [("x", Arith("+", Col("a"), Lit(1.0)))]).build())),
    ("renaming project is not identity",
     lambda: scan_t().project([("a2", Col("a")), ("b", Col("b"))])
     .build(),
     lambda: scan_t().build()),
    ("reordering project is not identity",
     lambda: scan_t().project(["b", "a"]).build(),
     lambda: scan_t().build()),
    ("root-visible scan order is significant",
     lambda: scan_t().build(),
     lambda: q.scan("t", ["b", "a"]).build()),
    ("different limits",
     lambda: scan_t().limit(3).build(),
     lambda: scan_t().limit(4).build()),
    ("different offsets",
     lambda: scan_t().limit(3, 1).build(),
     lambda: scan_t().limit(3, 2).build()),
    ("sort direction matters",
     lambda: scan_t().top_n([("a", True)], 5).build(),
     lambda: scan_t().top_n([("a", False)], 5).build()),
    ("join kind matters",
     lambda: join_tu("inner").build(),
     lambda: join_tu("left").build()),
    ("filters on different columns",
     lambda: scan_t().filter(gt("a", 1)).build(),
     lambda: scan_t().filter(gt("b", 1)).build()),
    ("AND is not OR",
     lambda: scan_t().filter(And([gt("a", 1), gt("b", 2)])).build(),
     lambda: scan_t().filter(Or([gt("a", 1), gt("b", 2)])).build()),
]


def _fingerprints(build_left, build_right, view, optimize: bool):
    left, right = build_left(), build_right()
    if optimize:
        optimizer = PlanOptimizer()
        left, _ = optimizer.optimize(left, view)
        right, _ = optimizer.optimize(right, view)
    return plan_fingerprint(left), plan_fingerprint(right)


@pytest.mark.parametrize("label,build_left,build_right", MUST_SHARE,
                         ids=[row[0] for row in MUST_SHARE])
def test_must_share_with_optimizer(label, build_left, build_right,
                                   view):
    left, right = _fingerprints(build_left, build_right, view,
                                optimize=True)
    assert left == right


@pytest.mark.parametrize("optimize", [True, False],
                         ids=["optimizer-on", "optimizer-off"])
@pytest.mark.parametrize("label,build_left,build_right",
                         MUST_NOT_SHARE,
                         ids=[row[0] for row in MUST_NOT_SHARE])
def test_must_not_share(label, build_left, build_right, view,
                        optimize):
    left, right = _fingerprints(build_left, build_right, view,
                                optimize=optimize)
    assert left != right
