"""Tests for the public Database facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, STRING, Schema
from repro.errors import PlanError, SqlError


@pytest.fixture
def db():
    database = Database(RecyclerConfig(mode="spec"))
    rng = np.random.default_rng(1)
    n = 5000
    database.register_table("events", Table(
        Table.from_rows(["kind", "value"], [STRING, FLOAT64], []).schema,
        {
            "kind": rng.choice(np.array(["a", "b", "c"], dtype=object),
                               n),
            "value": rng.uniform(0, 10, n),
        }))
    return database


class TestFacade:
    def test_sql_round_trip(self, db):
        result = db.sql("SELECT kind, count(*) AS n FROM events"
                        " GROUP BY kind ORDER BY kind")
        assert list(result.table.column("kind")) == ["a", "b", "c"]

    def test_repeat_reuses(self, db):
        sql = "SELECT kind, sum(value) AS s FROM events GROUP BY kind"
        db.sql(sql)
        again = db.sql(sql)
        assert again.stats.num_reused == 1

    def test_explain(self, db):
        text = db.explain("SELECT kind FROM events WHERE value > 5.0")
        assert "scan(events" in text
        assert "select" in text

    def test_invalid_sql_raises(self, db):
        with pytest.raises(SqlError):
            db.sql("SELECT missing_column FROM events")

    def test_execute_validates_plans(self, db):
        from repro.expr import Cmp, Col, Lit
        from repro.plan import q
        bad = (q.scan("events", ["kind"])
                .filter(Cmp(">", Col("value"), Lit(1.0)))
                .build())
        with pytest.raises(PlanError):
            db.execute(bad)

    def test_register_function(self, db):
        def numbers(n):
            return Table.from_rows(["n"], [INT64],
                                   [(i,) for i in range(int(n))])

        db.register_function("numbers", numbers, Schema(["n"], [INT64]))
        result = db.sql("SELECT n FROM numbers(4) t WHERE n > 1")
        assert list(result.table.column("n")) == [2, 3]

    def test_replacing_table_invalidates_cache(self, db):
        sql = "SELECT sum(value) AS s FROM events"
        first = db.sql(sql)
        db.register_table("events", Table(
            Table.from_rows(["kind", "value"],
                            [STRING, FLOAT64], []).schema,
            {"kind": np.array(["z"], dtype=object),
             "value": np.array([42.0])}))
        fresh = db.sql(sql)
        assert fresh.table.column("s")[0] == pytest.approx(42.0)
        assert fresh.table.column("s")[0] != \
            pytest.approx(float(first.table.column("s")[0]))

    def test_summary_counters(self, db):
        db.sql("SELECT count(*) AS n FROM events")
        db.sql("SELECT count(*) AS n FROM events")
        summary = db.summary()
        assert summary["queries"] == 2
        assert summary["cache"].reuses >= 1

    def test_flush_cache(self, db):
        db.sql("SELECT kind, max(value) AS m FROM events GROUP BY kind")
        assert db.flush_cache() >= 1
        assert db.summary()["cache_entries"] == 0
