"""Schema evolution: ``alter_table_add_column`` / ``rename_column``.

The acceptance bar: a query executed after a schema change must never
be served a result materialized before it.  The two DDL ops stress
different halves of the versioning scheme:

* ``add_column`` is additive — old plans still validate against the
  new schema, so only the **version** bumps: recycler graph history
  survives (``num_matched`` keeps counting), but every cached result
  over the table is version-dead (``num_reused`` restarts at 0);
* ``rename_column`` invalidates old bindings — the **incarnation**
  bumps too, old-name SQL now fails to bind, and rebound plans build
  fresh graph state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, RecyclerConfig, Table
from repro.columnar import Catalog, FLOAT64, INT64, STRING
from repro.errors import SchemaError, SqlError


def build_db(rows: int = 5000) -> Database:
    rng = np.random.default_rng(99)
    catalog = Catalog()
    catalog.register_table("t", Table.from_rows(
        ["k", "grp", "val"], [INT64, INT64, FLOAT64],
        [(int(i), int(i % 7), float(v)) for i, v in
         enumerate(rng.uniform(0, 1, rows))]))
    return Database(RecyclerConfig(mode="spec"), catalog=catalog)


ROLLUP = "SELECT grp, count(*) AS n, sum(val) AS s FROM t GROUP BY grp"


def warm(session, sql: str) -> None:
    """Execute twice: history mode materializes on the second
    sighting, so the third execution can reuse."""
    session.sql(sql)
    session.sql(sql)


class TestAddColumn:
    def test_default_fill_and_stats(self):
        db = build_db(rows=10)
        db.alter_table_add_column("t", "tag", STRING)
        db.alter_table_add_column("t", "w", FLOAT64, default=1.5)
        entry = db.catalog.table_entry("t")
        assert list(entry.table.column("tag")) == [""] * 10
        assert list(entry.table.column("w")) == [1.5] * 10
        # stats were extended to the new columns, not dropped
        assert "w" in entry.column_stats
        result = db.sql("SELECT k, tag, w FROM t WHERE w > 1.0")
        assert result.table.num_rows == 10
        db.close()

    def test_duplicate_column_rejected(self):
        db = build_db(rows=4)
        with pytest.raises(SchemaError):
            db.alter_table_add_column("t", "val", FLOAT64)
        db.close()

    def test_version_bumps_incarnation_does_not(self):
        db = build_db(rows=4)
        version = db.catalog.table_version("t")
        incarnation = db.catalog.table_incarnation("t")
        db.alter_table_add_column("t", "extra", INT64)
        assert db.catalog.table_version("t") == version + 1
        assert db.catalog.table_incarnation("t") == incarnation
        db.close()

    def test_pre_evolution_results_never_served(self):
        db = build_db()
        with db.connect() as session:
            warm(session, ROLLUP)
            session.sql(ROLLUP)
            assert session.records[-1].num_reused > 0
            before = session.sql(ROLLUP).table.to_rows()

            db.alter_table_add_column("t", "extra", FLOAT64, default=2.0)

            after = session.sql(ROLLUP)
            record = session.records[-1]
            # the cached rollup predates the DDL: recomputed, not served
            assert record.num_reused == 0
            # additive DDL: identical rows, freshly computed
            assert after.table.to_rows() == before
            # graph history survives an additive change
            assert record.num_matched > 0

            # the re-warmed result is reusable again post-DDL
            session.sql(ROLLUP)
            session.sql(ROLLUP)
            assert session.records[-1].num_reused > 0
        db.close()

    def test_new_column_joins_old_data(self):
        db = build_db(rows=6)
        db.alter_table_add_column("t", "flag", INT64, default=1)
        result = db.sql("SELECT sum(flag) AS f FROM t WHERE k >= 0")
        assert result.table.to_rows() == [(6,)]
        db.close()


class TestRenameColumn:
    def test_rename_rebinds_and_old_name_fails(self):
        db = build_db(rows=8)
        assert db.sql("SELECT sum(val) AS s FROM t").table.num_rows == 1
        db.rename_column("t", "val", "value")
        with pytest.raises(SqlError):
            db.sql("SELECT sum(val) AS s FROM t")
        result = db.sql("SELECT sum(value) AS s FROM t")
        assert result.table.num_rows == 1
        db.close()

    def test_missing_or_colliding_names_rejected(self):
        db = build_db(rows=4)
        with pytest.raises(SchemaError):
            db.rename_column("t", "nope", "x")
        with pytest.raises(SchemaError):
            db.rename_column("t", "val", "grp")
        db.close()

    def test_incarnation_bumps(self):
        db = build_db(rows=4)
        version = db.catalog.table_version("t")
        incarnation = db.catalog.table_incarnation("t")
        db.rename_column("t", "val", "value")
        assert db.catalog.table_version("t") == version + 1
        assert db.catalog.table_incarnation("t") == incarnation + 1
        db.close()

    def test_pre_rename_results_never_served(self):
        db = build_db()
        with db.connect() as session:
            warm(session, ROLLUP)
            session.sql(ROLLUP)
            assert session.records[-1].num_reused > 0
            before = session.sql(ROLLUP).table.to_rows()

            db.rename_column("t", "k", "key_col")

            # the rollup doesn't mention ``k``; it must still recompute
            # (its cached result is version-dead) and match exactly
            after = session.sql(ROLLUP)
            assert session.records[-1].num_reused == 0
            assert after.table.to_rows() == before
        db.close()

    def test_stats_follow_the_rename(self):
        db = build_db(rows=16)
        old_stats = db.catalog.table_entry("t").column_stats["val"]
        db.rename_column("t", "val", "value")
        entry = db.catalog.table_entry("t")
        assert "val" not in entry.column_stats
        assert entry.column_stats["value"] is old_stats
        db.close()


class TestEvolutionUnderCache:
    def test_interleaved_ddl_and_queries_stay_exact(self):
        """A DDL between every pair of executions: rows must always be
        freshly correct, reuse must never cross a DDL boundary."""
        db = build_db()
        sql = ROLLUP
        with db.connect() as session:
            expected = None
            for step in range(4):
                warm(session, sql)
                result = session.sql(sql)
                rows = result.table.to_rows()
                if expected is not None:
                    assert rows == expected
                expected = rows
                assert session.records[-1].num_reused > 0
                db.alter_table_add_column("t", f"c{step}", INT64,
                                          default=step)
                session.sql(sql)
                assert session.records[-1].num_reused == 0
            # cache invariants after the DDL storm
            db.recycler.graph.check_invariants()
            db.recycler.cache.check_invariants()
        db.close()
