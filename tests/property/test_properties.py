"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.columnar import INT64, Table
from repro.columnar.batch import Batch
from repro.engine.grouping import (GroupedRows, count_distinct_per_group,
                                   factorize)
from repro.expr import (And, Arith, Cmp, Col, InList, Lit, Not, Or,
                        implies)

# ----------------------------------------------------------------------
# expression strategies
# ----------------------------------------------------------------------
_COLUMNS = ("a", "b")


def batch_strategy():
    return st.lists(
        st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
        min_size=1, max_size=40,
    ).map(lambda rows: Batch({
        "a": np.array([r[0] for r in rows], dtype=np.int64),
        "b": np.array([r[1] for r in rows], dtype=np.int64),
    }))


def comparison_strategy():
    return st.builds(
        Cmp,
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        st.sampled_from([Col("a"), Col("b")]),
        st.integers(-30, 30).map(Lit),
    )


def predicate_strategy(depth: int = 2):
    base = comparison_strategy()
    if depth == 0:
        return base
    sub = predicate_strategy(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda l, r: And([l, r]), sub, sub),
        st.builds(lambda l, r: Or([l, r]), sub, sub),
        st.builds(Not, sub),
    )


def eval_reference(expr, row: dict) -> object:
    """Reference evaluation of an expression on one Python row."""
    if isinstance(expr, Col):
        return row[expr.name]
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Cmp):
        left = eval_reference(expr.left, row)
        right = eval_reference(expr.right, row)
        return {"=": left == right, "<>": left != right,
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right}[expr.op]
    if isinstance(expr, And):
        return all(eval_reference(a, row) for a in expr.args)
    if isinstance(expr, Or):
        return any(eval_reference(a, row) for a in expr.args)
    if isinstance(expr, Not):
        return not eval_reference(expr.arg, row)
    if isinstance(expr, InList):
        return eval_reference(expr.arg, row) in expr.values
    if isinstance(expr, Arith):
        left = eval_reference(expr.left, row)
        right = eval_reference(expr.right, row)
        return {"+": left + right, "-": left - right,
                "*": left * right}[expr.op]
    raise NotImplementedError(type(expr))


class TestExpressionProperties:
    @given(batch_strategy(), predicate_strategy())
    @settings(max_examples=150, deadline=None)
    def test_vectorized_eval_matches_reference(self, batch, pred):
        got = np.asarray(pred.eval(batch), dtype=bool)
        for i in range(len(batch)):
            row = {"a": int(batch.column("a")[i]),
                   "b": int(batch.column("b")[i])}
            assert bool(got[i]) == bool(eval_reference(pred, row))

    @given(predicate_strategy())
    @settings(max_examples=100, deadline=None)
    def test_key_is_stable_and_hashable(self, pred):
        assert pred.key() == pred.key()
        hash(pred.key())

    @given(batch_strategy(), predicate_strategy(), predicate_strategy())
    @settings(max_examples=150, deadline=None)
    def test_implication_is_sound(self, batch, stronger, weaker):
        """If implies(p, q) then rows(p) ⊆ rows(q) on every batch."""
        if implies(stronger, weaker):
            p_rows = np.asarray(stronger.eval(batch), dtype=bool)
            q_rows = np.asarray(weaker.eval(batch), dtype=bool)
            assert not (p_rows & ~q_rows).any()

    @given(predicate_strategy())
    @settings(max_examples=50, deadline=None)
    def test_implication_is_reflexive(self, pred):
        assert implies(pred, pred)

    @given(batch_strategy(),
           st.sampled_from(["a", "b"]),
           st.integers(-30, 30), st.integers(-30, 30))
    @settings(max_examples=100, deadline=None)
    def test_range_containment_implies(self, batch, column, lo, hi):
        """profile + containment: [max..] implies [min..]."""
        low, high = sorted((lo, hi))
        narrow = And([Cmp(">=", Col(column), Lit(high)),
                      Cmp("<=", Col(column), Lit(high))])
        wide = And([Cmp(">=", Col(column), Lit(low))])
        assert implies(narrow, wide)


class TestGroupingProperties:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(-10, 10)),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_grouped_sum_matches_reference(self, rows):
        keys = np.array([r[0] for r in rows], dtype=np.int64)
        values = np.array([r[1] for r in rows], dtype=np.int64)
        codes, _ = factorize([keys])
        grouped = GroupedRows(codes)
        sums = grouped.reduce_sum(values)
        reference: dict[int, int] = {}
        for k, v in rows:
            reference[k] = reference.get(k, 0) + v
        rep_keys = grouped.representatives(keys)
        assert len(sums) == len(reference)
        for key, total in zip(rep_keys, sums):
            assert reference[int(key)] == int(total)

    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 6)),
                    min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_count_distinct_matches_reference(self, rows):
        keys = np.array([r[0] for r in rows], dtype=np.int64)
        values = np.array([r[1] for r in rows], dtype=np.int64)
        codes, _ = factorize([keys])
        got = count_distinct_per_group(codes, values)
        reference: dict[int, set] = {}
        for k, v in rows:
            reference.setdefault(k, set()).add(v)
        expected = [len(reference[k]) for k in sorted(reference)]
        assert list(got) == expected

    @given(st.lists(st.tuples(st.integers(0, 3), st.text("xy",
                                                         max_size=2)),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_factorize_equal_rows_equal_codes(self, rows):
        a = np.array([r[0] for r in rows], dtype=np.int64)
        b = np.array([r[1] for r in rows], dtype=object)
        codes, _ = factorize([a, b])
        seen: dict[tuple, int] = {}
        for i, row in enumerate(rows):
            if row in seen:
                assert codes[i] == seen[row]
            else:
                seen[row] = codes[i]


class TestCacheProperties:
    @given(st.lists(st.tuples(st.floats(0.1, 100.0),
                              st.integers(64, 4096),
                              st.booleans()),
                    min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_cache_invariants_under_random_operations(self, operations):
        """Random admit/evict sequences keep accounting consistent."""
        from repro.recycler import (BenefitModel, RecyclerCache,
                                    RecyclerGraph, match_tree)
        from repro.columnar import Catalog
        from repro.plan import q
        from repro.expr import Cmp, Col, Lit

        catalog = Catalog()
        catalog.register_table("t", Table.from_rows(
            ["x"], [INT64], [(i,) for i in range(64)]))
        graph = RecyclerGraph(catalog, alpha=1.0)
        model = BenefitModel(graph)
        cache = RecyclerCache(model, capacity=8 * 1024)
        admitted = []
        for i, (bcost_scale, size, do_evict) in enumerate(operations):
            if do_evict and admitted:
                entry = admitted.pop()
                if entry.node.entry is entry:
                    cache.evict(entry)
            else:
                plan = (q.scan("t", ["x"])
                         .filter(Cmp(">", Col("x"), Lit(i)))
                         .build())
                match = match_tree(plan, graph, catalog, query_id=i + 1)
                node = match.of(plan).graph_node
                node.bcost = bcost_scale * size
                node.exec_count = 1
                node.refs_raw = 1.0
                rows = max(size // 8, 1)
                table = Table(
                    Table.from_rows(["x"], [INT64], []).schema,
                    {"x": np.arange(rows, dtype=np.int64)})
                if cache.admit(node, table):
                    admitted.append(node.entry)
            cache.check_invariants()
            if cache.capacity is not None:
                assert cache.used <= cache.capacity


class TestAggregateRollupProperty:
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2),
                              st.integers(-20, 20)),
                    min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_reaggregation_equals_direct(self, rows):
        """sum/count roll up from a finer grouping losslessly — the
        algebraic fact tuple subsumption and cube caching rely on."""
        from collections import defaultdict
        fine = defaultdict(lambda: [0, 0])
        for g1, g2, v in rows:
            cell = fine[(g1, g2)]
            cell[0] += v
            cell[1] += 1
        coarse_from_fine = defaultdict(lambda: [0, 0])
        for (g1, _), (total, count) in fine.items():
            coarse_from_fine[g1][0] += total
            coarse_from_fine[g1][1] += count
        coarse_direct = defaultdict(lambda: [0, 0])
        for g1, _, v in rows:
            coarse_direct[g1][0] += v
            coarse_direct[g1][1] += 1
        assert dict(coarse_from_fine) == dict(coarse_direct)
