"""Property-based tests: graph truncation under insert/match traffic.

Satellite of the striped-concurrency PR: truncation runs from a
background maintenance thread now, so its contract is load-bearing —

* a **pinned** node (in-flight producer) is never evicted,
* a **materialized** node is never evicted,
* structural invariants (parent/leaf indexes, liveness set) hold after
  any interleaving of match/insert, pinning, aging, and truncation,
* recycler-level benefit/cache accounting stays consistent when
  truncation interleaves with real executions.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.columnar import Catalog, FLOAT64, INT64, Table
from repro.expr import Cmp, Col, Lit
from repro.plan import q
from repro.recycler import (InFlightRegistry, Recycler, RecyclerConfig,
                            RecyclerGraph, match_tree)


def build_catalog(n: int = 400, seed: int = 11) -> Catalog:
    catalog = Catalog()
    rng = np.random.default_rng(seed)
    catalog.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 5, n), "v": rng.uniform(0, 1, n)}))
    return catalog


def family_plan(family: int):
    """One of ten distinct plan shapes sharing the same scan leaf."""
    return (q.scan("t", ["g", "v"])
             .filter(Cmp(">", Col("v"), Lit(family / 10.0)))
             .aggregate(keys=["g"], aggs=[("sum", Col("v"), "s")])
             .build())


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("match"), st.integers(0, 9)),
        st.tuples(st.just("pin"), st.integers(0, 9)),
        st.tuples(st.just("unpin"), st.integers(0, 9)),
        st.tuples(st.just("tick"), st.integers(1, 5)),
        st.tuples(st.just("truncate"), st.integers(0, 4)),
    ),
    min_size=1, max_size=60,
)


class TestGraphTruncateProperties:
    @settings(max_examples=30, deadline=None)
    @given(ops=OPS)
    def test_pinned_nodes_survive_any_interleaving(self, ops):
        catalog = build_catalog()
        graph = RecyclerGraph(catalog)
        registry = InFlightRegistry()
        roots: dict[int, object] = {}   # family -> last matched root node
        query_id = 0

        for op, arg in ops:
            if op == "match":
                query_id += 1
                graph.tick()
                plan = family_plan(arg)
                result = match_tree(plan, graph, catalog, query_id)
                roots[arg] = result.of(plan).graph_node
            elif op == "pin" and arg in roots:
                # mirror store planning (rewriter.py): a reference that
                # went stale — the node was truncated after matching —
                # is skipped via ``is_live``, never registered; pinning
                # cannot resurrect an evicted node
                if graph.is_live(roots[arg]):
                    registry.register(roots[arg], f"producer-{arg}")
            elif op == "unpin" and arg in roots:
                registry.release(roots[arg], f"producer-{arg}")
            elif op == "tick":
                for _ in range(arg):
                    graph.tick()
            elif op == "truncate":
                pinned = registry.active_nodes()
                graph.truncate(min_idle_events=arg, pinned=pinned)
                alive = {node.node_id for node in graph.nodes}
                assert pinned <= alive, "truncation evicted a pinned node"
                graph.check_invariants()
                assert alive == {
                    node.node_id for node in graph.nodes
                    if graph.is_live(node)}

        graph.check_invariants()
        # surviving families stay exactly matchable; truncated ones
        # re-insert cleanly
        for family in range(10):
            query_id += 1
            result = match_tree(family_plan(family), graph, catalog,
                                query_id)
            assert result.inserted_count + result.matched_count >= 3
        graph.check_invariants()

    @settings(max_examples=15, deadline=None)
    @given(
        executes=st.lists(st.integers(0, 7), min_size=1, max_size=12),
        truncate_every=st.integers(1, 4),
        min_idle=st.integers(0, 3),
    )
    def test_recycler_accounting_stays_consistent(self, executes,
                                                  truncate_every,
                                                  min_idle):
        catalog = build_catalog()
        recycler = Recycler(catalog, RecyclerConfig(
            mode="spec", cache_capacity=512 * 1024))
        for step, family in enumerate(executes, start=1):
            recycler.execute(family_plan(family))
            if step % truncate_every == 0:
                recycler.truncate_idle(min_idle_events=min_idle)
        recycler.truncate_idle(min_idle_events=min_idle)

        recycler.graph.check_invariants()
        recycler.cache.check_invariants()
        alive = {node.node_id for node in recycler.graph.nodes}
        for entry in recycler.cache.entries():
            assert entry.node.is_materialized
            assert entry.node.node_id in alive, \
                "cache entry for a truncated node"
        # benefit accounting: hR is finite and non-negative everywhere
        for node in recycler.graph.nodes:
            refs = recycler.graph.effective_refs(node)
            assert refs >= 0.0
            assert np.isfinite(refs)
        # cached results still answer queries byte-identically
        for family in set(executes):
            reference = Recycler(catalog, RecyclerConfig(mode="off"))
            expected = reference.execute(family_plan(family))
            got = recycler.execute(family_plan(family))
            assert got.table.to_rows() == expected.table.to_rows()


class TestTruncateUnderConcurrentMatch:
    def test_threaded_inserts_vs_truncation(self):
        """Real threads: matching/inserting while a maintenance thread
        truncates must leave a duplicate-free, invariant-clean graph."""
        catalog = build_catalog()
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        errors: list[BaseException] = []
        stop = threading.Event()
        barrier = threading.Barrier(5)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait(timeout=10)
                for i in range(25):
                    recycler.execute(
                        family_plan((worker_id * 3 + i) % 10),
                        producer_token=("w", worker_id, i))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def truncator() -> None:
            try:
                barrier.wait(timeout=10)
                while not stop.is_set():
                    recycler.truncate_idle(min_idle_events=1)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        chaos = threading.Thread(target=truncator)
        for t in threads:
            t.start()
        chaos.start()
        for t in threads:
            t.join(timeout=60)
        stop.set()
        chaos.join(timeout=10)

        assert not errors, errors
        recycler.graph.check_invariants()
        recycler.cache.check_invariants()
        assert len(recycler.inflight) == 0
        seen: set[tuple] = set()
        for node in recycler.graph.nodes:
            key = (node.op_name, node.params,
                   tuple(c.node_id for c in node.children))
            assert key not in seen, f"duplicate graph node {node!r}"
            seen.add(key)
        # results remain byte-identical to a recycling-free run
        reference = Recycler(catalog, RecyclerConfig(mode="off"))
        for family in range(10):
            expected = reference.execute(family_plan(family))
            got = recycler.execute(family_plan(family))
            assert got.table.to_rows() == expected.table.to_rows()
