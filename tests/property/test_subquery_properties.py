"""Property test: decorrelated subqueries vs a per-row reference.

The binder rewrites EXISTS / NOT EXISTS / IN / NOT IN / scalar
subqueries into semi/anti/cross joins before planning.  The rewrite is
only correct if, for *every* table content, the joined plan returns
exactly the rows a naive nested-loop evaluation of the subquery
semantics would — which is what SQL defines.  Hypothesis generates
random small tables and thresholds; the reference evaluator runs the
textbook per-outer-row loop in Python.

Integer key/probe columns only: the engine is NULL-free and NaN (the
de-facto missing float) adds its own pinned semantics — inner NaN
values never match and a NaN probe fails ``NOT IN`` — covered by the
battery and ``tests/expr/test_inlist_edges.py``, not re-randomized
here.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.columnar import Catalog, INT64, Table

OUTER_COLS = ["k", "x", "g"]
INNER_COLS = ["y", "h"]

outer_rows = st.lists(
    st.tuples(st.integers(0, 99), st.integers(-5, 5),
              st.integers(0, 3)),
    min_size=0, max_size=12)
inner_rows = st.lists(
    st.tuples(st.integers(-5, 5), st.integers(0, 3)),
    min_size=0, max_size=12)


def run_query(t_rows, u_rows, sql: str) -> Counter:
    catalog = Catalog()
    catalog.register_table(
        "t", Table.from_rows(OUTER_COLS, [INT64] * 3,
                             [(k, x, g) for k, x, g in t_rows]))
    catalog.register_table(
        "u", Table.from_rows(INNER_COLS, [INT64] * 2, list(u_rows)))
    db = Database(catalog=catalog)
    try:
        result = db.sql(sql)
        return Counter(row[0] for row in result.table.to_rows())
    finally:
        db.close()


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_in_subquery(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE x IN (SELECT y FROM u)")
    ys = {y for y, _ in u_rows}
    want = Counter(k for k, x, _ in t_rows if x in ys)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_not_in_subquery(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE x NOT IN (SELECT y FROM u)")
    ys = {y for y, _ in u_rows}
    want = Counter(k for k, x, _ in t_rows if x not in ys)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_correlated_exists(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE EXISTS"
                    " (SELECT 1 FROM u WHERE u.h = t.g)")
    hs = {h for _, h in u_rows}
    want = Counter(k for k, _, g in t_rows if g in hs)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_correlated_not_exists(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE NOT EXISTS"
                    " (SELECT 1 FROM u WHERE u.h = t.g)")
    hs = {h for _, h in u_rows}
    want = Counter(k for k, _, g in t_rows if g not in hs)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows,
       threshold=st.integers(-4, 4))
def test_correlated_exists_with_filter(t_rows, u_rows, threshold):
    got = run_query(
        t_rows, u_rows,
        f"SELECT k FROM t WHERE EXISTS (SELECT 1 FROM u"
        f" WHERE u.h = t.g AND y > {threshold})")
    ok = {h for y, h in u_rows if y > threshold}
    want = Counter(k for k, _, g in t_rows if g in ok)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_correlated_in_subquery(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE x IN"
                    " (SELECT y FROM u WHERE u.h = t.g)")
    pairs = {(y, h) for y, h in u_rows}
    want = Counter(k for k, x, g in t_rows if (x, g) in pairs)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows, u_rows=inner_rows)
def test_correlated_not_in_subquery(t_rows, u_rows):
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE x NOT IN"
                    " (SELECT y FROM u WHERE u.h = t.g)")
    pairs = {(y, h) for y, h in u_rows}
    want = Counter(k for k, x, g in t_rows if (x, g) not in pairs)
    assert got == want


@settings(max_examples=40, deadline=None)
@given(t_rows=outer_rows,
       u_rows=st.lists(st.tuples(st.integers(-5, 5),
                                 st.integers(0, 3)),
                       min_size=1, max_size=12))
def test_scalar_subquery_threshold(t_rows, u_rows):
    """Scalar aggregate subquery as a comparison operand (inner table
    non-empty: an aggregate over zero rows has no SQL NULL to return
    in a NULL-free engine, so that edge is out of contract)."""
    got = run_query(t_rows, u_rows,
                    "SELECT k FROM t WHERE x > (SELECT min(y) FROM u)")
    lo = min(y for y, _ in u_rows)
    want = Counter(k for k, x, _ in t_rows if x > lo)
    assert got == want
