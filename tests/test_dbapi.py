"""PEP 249 conformance tests for :mod:`repro.dbapi`."""

from __future__ import annotations

import datetime
import threading

import numpy as np
import pytest

import repro.dbapi as dbapi
from repro import Database, RecyclerConfig, Table
from repro.columnar import FLOAT64, INT64, STRING
from repro.columnar.types import DATE


@pytest.fixture
def db():
    rng = np.random.default_rng(7)
    n = 5000
    db = Database(RecyclerConfig(mode="spec"))
    db.register_table("t", Table(
        Table.from_rows(["g", "v"], [INT64, FLOAT64], []).schema,
        {"g": rng.integers(0, 8, n), "v": rng.uniform(0, 1, n)}))
    db.register_table("names", Table.from_rows(
        ["id", "name", "d"], [INT64, STRING, DATE],
        [(1, "ada", 700), (2, "bob", 800), (3, "o'brien", 900)]))
    return db


@pytest.fixture
def conn(db):
    with dbapi.connect(database=db) as conn:
        yield conn


QUERY = "SELECT g, sum(v) AS s FROM t GROUP BY g ORDER BY g"


class TestModuleGlobals:
    def test_globals(self):
        assert dbapi.apilevel == "2.0"
        assert isinstance(dbapi.threadsafety, int)
        assert dbapi.threadsafety == 2
        assert dbapi.paramstyle == "qmark"

    def test_exception_hierarchy(self):
        assert issubclass(dbapi.InterfaceError, dbapi.Error)
        assert issubclass(dbapi.DatabaseError, dbapi.Error)
        for cls in (dbapi.DataError, dbapi.OperationalError,
                    dbapi.IntegrityError, dbapi.InternalError,
                    dbapi.ProgrammingError, dbapi.NotSupportedError):
            assert issubclass(cls, dbapi.DatabaseError)
        # PEP 249 optional extension: exceptions as Connection attributes
        assert dbapi.Connection.ProgrammingError is dbapi.ProgrammingError


class TestFetchSemantics:
    def test_fetchone_exhausts(self, conn):
        cur = conn.cursor()
        cur.execute(QUERY)
        assert cur.rowcount == 8
        rows = []
        while (row := cur.fetchone()) is not None:
            rows.append(row)
        assert len(rows) == 8
        assert cur.fetchone() is None

    def test_fetchmany_default_arraysize(self, conn):
        cur = conn.cursor()
        cur.execute(QUERY)
        assert cur.arraysize == 1
        assert len(cur.fetchmany()) == 1
        cur.arraysize = 3
        assert len(cur.fetchmany()) == 3
        assert len(cur.fetchmany(100)) == 4  # remainder, not padded

    def test_fetchall_and_iteration(self, conn):
        cur = conn.cursor()
        rows = cur.execute(QUERY).fetchall()
        assert [int(r[0]) for r in rows] == list(range(8))
        assert cur.fetchall() == []  # cursor is exhausted
        iterated = list(conn.cursor().execute(QUERY))
        assert len(iterated) == 8

    def test_fetch_before_execute_raises(self, conn):
        cur = conn.cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cur.fetchall()

    def test_results_match_database_sql(self, db, conn):
        direct = db.sql(QUERY).table.to_rows()
        via_dbapi = conn.cursor().execute(QUERY).fetchall()
        assert via_dbapi == direct

    def test_fetchmany_never_materializes_the_result(self, conn,
                                                     monkeypatch):
        """Regression: fetches stream from the columnar result — the
        full row list is never built, and peak buffered rows is bounded
        by the fetch size, not the result size."""
        from repro.columnar.table import Table as ColumnarTable

        def banned(self):
            raise AssertionError(
                "cursor fetch must not materialize via to_rows()")

        monkeypatch.setattr(ColumnarTable, "to_rows", banned)
        cur = conn.cursor()
        cur.execute("SELECT g, v FROM t")
        assert cur.rowcount == 5000
        total = 0
        while batch := cur.fetchmany(100):
            assert len(batch) <= 100
            total += len(batch)
        assert total == 5000
        assert cur.max_buffered_rows <= 100


class TestDescription:
    def test_names_and_type_codes(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id, name, d FROM names ORDER BY id")
        assert [d[0] for d in cur.description] == ["id", "name", "d"]
        codes = [d[1] for d in cur.description]
        assert codes[0] == dbapi.NUMBER
        assert codes[1] == dbapi.STRING
        assert codes[2] == dbapi.DATETIME
        assert codes[1] != dbapi.NUMBER
        assert all(len(d) == 7 for d in cur.description)

    def test_description_none_before_execute(self, conn):
        assert conn.cursor().description is None


class TestParameters:
    def test_qmark_binding(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM names WHERE id > ? ORDER BY id", (1,))
        assert [int(r[0]) for r in cur.fetchall()] == [2, 3]

    def test_string_escaping(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM names WHERE name = ?", ("o'brien",))
        assert [int(r[0]) for r in cur.fetchall()] == [3]

    def test_placeholder_inside_literal_untouched(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM names WHERE name = '?' AND id > ?",
                    (0,))
        assert cur.fetchall() == []

    def test_date_and_bool_literals(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT id FROM names WHERE d >= ? AND ? ORDER BY id",
                    (datetime.date(1972, 3, 11), True))
        assert [int(r[0]) for r in cur.fetchall()] == [2, 3]

    def test_parameter_count_mismatch(self, conn):
        cur = conn.cursor()
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("SELECT id FROM names WHERE id = ?", (1, 2))
        with pytest.raises(dbapi.ProgrammingError):
            cur.execute("SELECT id FROM names WHERE id = ? AND id > ?",
                        (1,))

    def test_none_parameter_rejected(self, conn):
        with pytest.raises(dbapi.ProgrammingError):
            conn.cursor().execute("SELECT id FROM names WHERE id = ?",
                                  (None,))

    def test_executemany(self, conn):
        cur = conn.cursor()
        cur.executemany("SELECT id FROM names WHERE id = ?",
                        [(1,), (2,), (99,)])
        assert cur.rowcount == 2  # 1 + 1 + 0 rows across executions


class TestClosedErrors:
    def test_closed_cursor(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(dbapi.InterfaceError):
            cur.execute("SELECT id FROM names")
        with pytest.raises(dbapi.InterfaceError):
            cur.fetchall()

    def test_closed_connection(self, db):
        conn = dbapi.connect(database=db)
        cur = conn.cursor()
        conn.close()
        assert conn.closed
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()
        with pytest.raises(dbapi.InterfaceError):
            cur.execute("SELECT id FROM names")
        conn.close()  # idempotent

    def test_shared_database_survives_connection_close(self, db):
        with dbapi.connect(database=db) as conn:
            conn.cursor().execute(QUERY)
        assert not db.closed

    def test_private_database_closed_with_connection(self):
        conn = dbapi.connect()
        db = conn.database
        conn.close()
        assert db.closed


class TestTransactions:
    def test_commit_noop(self, conn):
        conn.commit()

    def test_rollback_not_supported(self, conn):
        with pytest.raises(dbapi.NotSupportedError):
            conn.rollback()


class TestErrorsAndStatistics:
    def test_bad_sql_is_programming_error(self, conn):
        with pytest.raises(dbapi.ProgrammingError):
            conn.cursor().execute("SELEC oops")
        with pytest.raises(dbapi.ProgrammingError):
            conn.cursor().execute("SELECT x FROM no_such_table")

    def test_cursor_statistics_track_reuse(self, db):
        with dbapi.connect(database=db) as a, \
                dbapi.connect(database=db) as b:
            cold = a.cursor()
            cold.execute(QUERY)
            warm = b.cursor()
            warm.execute(QUERY)
            assert cold.statistics["queries"] == 1
            # the second connection reuses what the first materialized
            # through the shared recycler
            assert warm.statistics["num_inserted"] == 0
            assert warm.statistics["num_reused"] >= 1

    def test_thread_reuse_across_connections(self, db):
        results = {}

        def worker(name):
            with dbapi.connect(database=db) as conn:
                cur = conn.cursor()
                cur.execute(QUERY)
                results[name] = (cur.fetchall(), dict(cur.statistics))

        first = threading.Thread(target=worker, args=("a",))
        first.start()
        first.join()
        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = results["a"][0]
        for name in ("t0", "t1", "t2", "t3"):
            rows, stats = results[name]
            assert rows == reference
            assert stats["num_inserted"] == 0  # warm across threads

    def test_frontend_stats_in_summary(self, db, conn):
        conn.cursor().execute(QUERY)
        service = db.summary()["service"]
        assert service["frontends"]["dbapi"]["queries"] >= 1
