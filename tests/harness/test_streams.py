"""Tests for the virtual-time stream simulator and report rendering."""

from __future__ import annotations

import pytest

from repro.harness import StreamSimulator, format_bars, format_table, \
    format_timeline, percent_of
from repro.recycler import Recycler, RecyclerConfig
from repro.workloads.skyserver import (build_catalog, generate_workload,
                                       primary_pattern)
from repro.workloads.skyserver.queries import SkyQuery


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(num_rows=8000)


def make_streams(n_streams, n_queries):
    workload = generate_workload(n_streams * n_queries)
    return [workload[i * n_queries:(i + 1) * n_queries]
            for i in range(n_streams)]


class TestScheduling:
    def test_streams_are_sequential(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="off"))
        sim = StreamSimulator(catalog, recycler, workers=4)
        result = sim.run(make_streams(3, 4))
        for stream_id in range(3):
            mine = sorted((t for t in result.traces
                           if t.stream == stream_id),
                          key=lambda t: t.index)
            assert [t.index for t in mine] == [0, 1, 2, 3]
            for earlier, later in zip(mine, mine[1:]):
                assert later.t_enqueue >= earlier.t_finish - 1e-9

    def test_worker_limit_respected(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="off"))
        sim = StreamSimulator(catalog, recycler, workers=2)
        result = sim.run(make_streams(6, 2))
        events = []
        for trace in result.traces:
            events.append((trace.t_start, 1))
            events.append((trace.t_finish, -1))
        events.sort()
        running = peak = 0
        for _, delta in events:
            running += delta
            peak = max(peak, running)
        assert peak <= 2

    def test_single_worker_serializes(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="off"))
        sim = StreamSimulator(catalog, recycler, workers=1)
        result = sim.run(make_streams(3, 2))
        spans = sorted((t.t_start, t.t_finish) for t in result.traces)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end - 1e-9

    def test_deterministic(self, catalog):
        def run_once():
            recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
            sim = StreamSimulator(catalog, recycler, workers=4)
            return StreamSimulatorResultKey(
                sim.run(make_streams(4, 4)))
        assert run_once() == run_once()

    def test_recycling_reduces_makespan(self, catalog):
        streams = [[SkyQuery("primary", primary_pattern())
                    for _ in range(4)] for _ in range(4)]
        off = StreamSimulator(
            catalog, Recycler(catalog, RecyclerConfig(mode="off")),
            workers=4).run([list(s) for s in streams])
        spec = StreamSimulator(
            catalog, Recycler(catalog, RecyclerConfig(mode="spec")),
            workers=4).run([list(s) for s in streams])
        assert spec.makespan < 0.6 * off.makespan

    def test_stall_semantics(self, catalog):
        # All streams run the identical expensive query concurrently: the
        # non-producing streams must stall for the producer, so their
        # responses include stall time and they still reuse.
        streams = [[SkyQuery("primary", primary_pattern())]
                   for _ in range(4)]
        recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
        sim = StreamSimulator(catalog, recycler, workers=4)
        result = sim.run(streams)
        stalls = [t.stall for t in result.traces]
        reusers = [t for t in result.traces if t.num_reused > 0]
        assert len(reusers) == 3
        assert all(t.stall > 0 for t in reusers)
        producer = next(t for t in result.traces if t.num_materialized)
        for trace in reusers:
            # a reuser cannot finish before the producer finished
            assert trace.t_finish >= producer.t_finish - 1e-9
        assert max(stalls) > 0

    def test_average_stream_time(self, catalog):
        recycler = Recycler(catalog, RecyclerConfig(mode="off"))
        sim = StreamSimulator(catalog, recycler, workers=2)
        result = sim.run(make_streams(2, 2))
        assert result.average_stream_time() == pytest.approx(
            sum(result.stream_times) / 2)
        assert result.makespan >= max(result.stream_times) - 1e-9


def StreamSimulatorResultKey(result):
    return tuple((t.stream, t.index, round(t.t_start, 6),
                  round(t.t_finish, 6), t.num_reused)
                 for t in result.traces)


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 0.25)],
                            title="T")
        assert "T" in text
        assert "a" in text and "bb" in text
        assert "2.50" in text and "0.2500" in text

    def test_format_bars(self):
        text = format_bars([("x", 10.0), ("y", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_format_bars_zero(self):
        text = format_bars([("x", 0.0)])
        assert "x" in text

    def test_format_timeline(self):
        text = format_timeline([("s1", 0.0, 5.0, "M"),
                                ("s2", 5.0, 10.0, "R")], width=20)
        assert "M" in text and "R" in text

    def test_percent_of(self):
        assert percent_of(25.0, 100.0) == 25.0
        assert percent_of(1.0, 0.0) == 0.0
