"""Tests for the real-threads stream runner (harness/concurrent.py)."""

from __future__ import annotations

import pytest

from repro import Database, RecyclerConfig
from repro.harness import (ConcurrentStreamRunner, StreamSimulator,
                           format_throughput_table)
from repro.recycler import Recycler
from repro.workloads.skyserver import build_catalog, generate_workload


@pytest.fixture(scope="module")
def streams():
    # 4 streams x 12 queries, heavy pattern overlap (paper Fig. 7 mix).
    workload = generate_workload(48)
    return [workload[i * 12:(i + 1) * 12] for i in range(4)]


def fresh_db() -> Database:
    return Database(RecyclerConfig(mode="spec"),
                    catalog=build_catalog(num_rows=8000))


class TestThreadedRun:
    def test_identical_to_serial(self, streams):
        """4 worker threads x 48 overlapping queries must return
        byte-identical results to a serial single-session run."""
        serial_db = fresh_db()
        with serial_db.connect() as session:
            reference = {
                (sid, idx): session.sql(query.sql).table.to_rows()
                for sid, stream in enumerate(streams)
                for idx, query in enumerate(stream)
            }

        db = fresh_db()
        runner = ConcurrentStreamRunner(db, workers=4, keep_results=True)
        result = runner.run(streams)
        assert result.queries == 48
        for trace in result.traces:
            assert trace.result.table.to_rows() == \
                reference[(trace.stream, trace.index)], \
                (trace.stream, trace.index, trace.label)
        # the shared recycler engaged across sessions
        assert result.num_reused() > 0
        assert db.summary()["queries"] == 48

    def test_trace_shape(self, streams):
        db = fresh_db()
        runner = ConcurrentStreamRunner(db, workers=2)
        result = runner.run(streams[:2])
        assert result.workers == 2
        assert result.queries == 24
        assert result.wall_seconds > 0
        assert result.throughput_qps > 0
        ordered = [(t.stream, t.index) for t in result.traces]
        assert ordered == sorted(ordered)
        for trace in result.traces:
            assert trace.t_finish >= trace.t_start
            assert trace.result is None  # keep_results off
        # per-stream sequential issue survives threading
        for sid in (0, 1):
            mine = [t for t in result.traces if t.stream == sid]
            assert [t.index for t in mine] == list(range(12))
            for earlier, later in zip(mine, mine[1:]):
                assert later.t_start >= earlier.t_finish - 1e-9

    def test_plain_sql_streams(self):
        db = fresh_db()
        runner = ConcurrentStreamRunner(db, workers=2)
        sql = ("SELECT p.type, count(*) AS n FROM photoobj p"
               " GROUP BY p.type ORDER BY p.type")
        result = runner.run([[sql, sql], [sql]])
        assert result.queries == 3
        assert result.num_reused() >= 2

    def test_format_throughput_table(self, streams):
        db = fresh_db()
        result = ConcurrentStreamRunner(db, workers=1).run(streams[:1])
        text = format_throughput_table([result], title="T")
        assert "T" in text and "workers" in text and "qps" in text
        assert str(result.queries) in text


class TestSimulatorUnchanged:
    def test_virtual_time_results_stable(self, streams):
        """The virtual-time simulator still runs on top of the shared
        registry and stays deterministic after the blocking refactor."""
        def run_once():
            catalog = build_catalog(num_rows=8000)
            recycler = Recycler(catalog, RecyclerConfig(mode="spec"))
            sim = StreamSimulator(catalog, recycler, workers=4)
            result = sim.run([list(s) for s in streams])
            return tuple((t.stream, t.index, round(t.t_start, 6),
                          round(t.t_finish, 6), t.num_reused)
                         for t in result.traces)
        assert run_once() == run_once()
