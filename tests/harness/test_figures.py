"""Tiny-scale tests of the figure runners (structure + key shapes)."""

from __future__ import annotations

import pytest

from repro.harness.figures import (make_setup, run_fig6, run_fig7,
                                   run_fig8, run_fig9, run_fig10,
                                   run_throughput)


@pytest.fixture(scope="module")
def setup():
    return make_setup(scale_factor=0.002)


class TestFig6:
    def test_rows_and_rendering(self):
        result = run_fig6(num_rows=8000, num_queries=24)
        assert len(result.rows) == 12  # 3 splits x 2 caches x 2 systems
        text = result.render()
        assert "Recycler" in text and "MonetDB-style" in text
        for row in result.rows:
            assert 0 < row.pct_of_naive < 100


class TestThroughput:
    def test_off_mode_runs_everything(self, setup):
        run = run_throughput(setup, 2, "off")
        assert len(run.sim.traces) == 44
        assert all(t.num_reused == 0 for t in run.sim.traces)

    def test_spec_mode_reuses(self, setup):
        run = run_throughput(setup, 4, "spec")
        assert sum(t.num_reused for t in run.sim.traces) > 0
        assert run.recycler.cache.counters.admitted > 0

    def test_pa_mode_rewrites_designated_patterns(self, setup):
        run = run_throughput(setup, 2, "pa")
        # Q1's plan was pre-rewritten (binning): its executions produce
        # the union/cube shape; smoke-check by graph size difference
        spec = run_throughput(setup, 2, "spec")
        assert len(run.recycler.graph.nodes) != \
            len(spec.recycler.graph.nodes)

    def test_results_deterministic(self, setup):
        a = run_throughput(setup, 2, "spec")
        b = run_throughput(setup, 2, "spec")
        assert [round(t.t_finish, 6) for t in a.sim.traces] == \
            [round(t.t_finish, 6) for t in b.sim.traces]


class TestFig7:
    def test_cells_and_improvement(self, setup):
        result = run_fig7(stream_counts=(2, 4), modes=("off", "spec"),
                          setup=setup)
        assert len(result.cells) == 4
        assert result.improvement(4, "spec") > 0
        assert "Fig. 7" in result.render()


class TestFig8:
    def test_relative_times(self, setup):
        result = run_fig8(num_streams=4, setup=setup,
                          modes=("off", "spec"))
        rel = [result.relative("spec", label)
               for label in result.responses["off"]]
        assert any(r < 1.0 for r in rel)
        assert "Fig. 8" not in ""  # render smoke below
        text = result.render()
        assert "pattern" in text


class TestFig9:
    def test_trace_contents(self, setup):
        result = run_fig9(num_streams=4, setup=setup)
        assert len(result.traces) == 4 * 6
        markers = {result.marker_for(t) for t in result.traces}
        assert "M" in markers or "B" in markers
        assert "R" in markers or "B" in markers
        text = result.render()
        assert "Fig. 9" in text

    def test_sharing_summary_counts(self, setup):
        result = run_fig9(num_streams=4, setup=setup)
        sharing = result.sharing_summary()
        assert set(sharing) == {"Q1", "Q8", "Q13", "Q18", "Q19", "Q21"}


class TestFig10:
    def test_samples_and_claims(self, setup):
        result = run_fig10(num_streams=4, setup=setup)
        assert len(result.samples) == 4 * 22
        assert result.max_matching_ms() > 0
        assert result.final_graph_size() > 50
        buckets = result.bucket_averages(4)
        assert len(buckets) >= 4
        per_pattern = result.per_pattern_averages()
        assert len(per_pattern) == 22
        assert "Fig. 10" in result.render()
