"""Virtual-time multi-stream throughput simulator.

The paper's TPC-H experiments (Figures 7–9) run 4–256 concurrent query
streams on a 12-way-parallel server, with the recycler stalling queries
that share an in-flight materialization.  This simulator reproduces those
scheduling dynamics deterministically:

* queries execute *for real* (single-threaded, in virtual-start order)
  against the shared recycler, producing deterministic cost units;
* a discrete-event scheduler advances a virtual clock: ``workers`` query
  slots, FIFO admission, per-stream sequential issue;
* a query whose rewrite reuses a result whose producer is still running
  (in virtual time) **stalls** until the producer's completion — the
  paper's "the recycler stalls all but one";
* a query's virtual duration is ``total_cost / speed``.

Approximation (documented in DESIGN.md): results become reusable at their
producing *query's* completion time rather than at the earlier moment the
store operator finished, making stalls slightly conservative.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..columnar.catalog import Catalog
from ..engine.executor import execute_plan
from ..plan.logical import PlanNode
from ..recycler.recycler import Recycler
from ..sql import sql_to_plan

#: deterministic cost units per virtual millisecond.
DEFAULT_SPEED = 100.0


@dataclass
class QueryTrace:
    """Everything recorded about one query's (virtual) execution."""

    stream: int
    index: int
    label: str
    t_enqueue: float
    t_start: float      # got a worker
    t_finish: float
    stall: float        # waited for an in-flight shared result
    duration: float     # pure execution time (cost / speed)
    cost: float
    matching_seconds: float
    num_reused: int
    num_materialized: int
    reused_nodes: tuple[int, ...] = ()
    materialized_nodes: tuple[int, ...] = ()

    @property
    def wait(self) -> float:
        """Queue wait for a worker (excluded in the paper's Fig. 8)."""
        return self.t_start - self.t_enqueue

    @property
    def response(self) -> float:
        """Stall + execution (what Fig. 8 reports)."""
        return self.t_finish - self.t_start


@dataclass
class SimulationResult:
    """Output of one multi-stream run."""

    traces: list[QueryTrace] = field(default_factory=list)
    stream_times: list[float] = field(default_factory=list)
    makespan: float = 0.0

    def average_stream_time(self) -> float:
        if not self.stream_times:
            return 0.0
        return sum(self.stream_times) / len(self.stream_times)

    def per_label_response(self) -> dict[str, float]:
        """Average response (stall + execution) per query label."""
        sums: dict[str, list[float]] = {}
        for trace in self.traces:
            sums.setdefault(trace.label, []).append(trace.response)
        return {label: sum(v) / len(v) for label, v in sums.items()}

    def total_cost(self) -> float:
        return sum(t.cost for t in self.traces)


class StreamSimulator:
    """Discrete-event scheduler over a shared recycler."""

    def __init__(self, catalog: Catalog, recycler: Recycler,
                 workers: int = 12, speed: float = DEFAULT_SPEED,
                 plan_source: Callable[[object], PlanNode] | None = None
                 ) -> None:
        self.catalog = catalog
        self.recycler = recycler
        self.workers = workers
        self.speed = speed
        self._plan_source = plan_source or self._default_plan_source

    def _default_plan_source(self, query) -> PlanNode:
        if isinstance(query, PlanNode):
            return query
        sql = getattr(query, "sql", None)
        if sql is None and isinstance(query, str):
            sql = query
        if sql is None:
            raise TypeError(f"cannot derive a plan from {query!r}")
        return sql_to_plan(sql, self.catalog)

    @staticmethod
    def _label_of(query, stream: int, index: int) -> str:
        return getattr(query, "label", f"s{stream}q{index}")

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[Sequence[object]]) -> SimulationResult:
        result = SimulationResult()
        events: list[tuple[float, int, str, tuple]] = []
        sequence = 0

        def push(time: float, kind: str, payload: tuple) -> None:
            nonlocal sequence
            heapq.heappush(events, (time, sequence, kind, payload))
            sequence += 1

        ready: list[tuple[int, int, float]] = []   # FIFO worker queue
        free_workers = self.workers
        next_index = [0] * len(streams)
        stream_start = [None] * len(streams)
        stream_end = [0.0] * len(streams)
        node_ready: dict[int, float] = {}

        for stream_id in range(len(streams)):
            push(0.0, "arrive", (stream_id,))

        def dispatch(now: float) -> None:
            nonlocal free_workers
            while free_workers > 0 and ready:
                stream_id, index, t_enqueue = ready.pop(0)
                free_workers -= 1
                trace = self._run_query(streams[stream_id][index],
                                        stream_id, index, t_enqueue, now,
                                        node_ready)
                result.traces.append(trace)
                stream_end[stream_id] = max(stream_end[stream_id],
                                            trace.t_finish)
                push(trace.t_finish, "finish", (stream_id,))

        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "arrive":
                stream_id = payload[0]
                index = next_index[stream_id]
                if index >= len(streams[stream_id]):
                    continue
                next_index[stream_id] += 1
                if stream_start[stream_id] is None:
                    stream_start[stream_id] = now
                ready.append((stream_id, index, now))
                dispatch(now)
            else:  # finish
                free_workers += 1
                stream_id = payload[0]
                push(now, "arrive", (stream_id,))
                dispatch(now)

        for stream_id in range(len(streams)):
            start = stream_start[stream_id] or 0.0
            result.stream_times.append(stream_end[stream_id] - start)
        result.makespan = max(stream_end) if len(streams) else 0.0
        return result

    # ------------------------------------------------------------------
    def _run_query(self, query, stream_id: int, index: int,
                   t_enqueue: float, now: float,
                   node_ready: dict[int, float]) -> QueryTrace:
        plan = self._plan_source(query)
        label = self._label_of(query, stream_id, index)
        prepared = self.recycler.prepare(
            plan, producer_token=(stream_id, index))
        exec_result = execute_plan(
            prepared.executed_plan,
            # the snapshot prepare pinned — the virtual-time harness
            # never runs DDL, but execution must agree with the rewrite
            prepared.snapshot or self.catalog,
            stores=prepared.stores,
            vector_size=self.recycler.vector_size,
            cost_model=self.recycler.cost_model,
            query_id=prepared.query_id)
        self.recycler.finalize(prepared, exec_result.stats, label=label)

        stall_until = now
        reused_nodes = []
        for reuse in prepared.reuses:
            reused_nodes.append(reuse.provider.node_id)
            ready_at = node_ready.get(reuse.provider.node_id)
            if ready_at is not None and ready_at > stall_until:
                stall_until = ready_at
        duration = exec_result.stats.total_cost / self.speed
        finish = stall_until + duration

        materialized = []
        for request in prepared.stores.values():
            graph_node = request.tag
            if graph_node is not None and graph_node.is_materialized:
                materialized.append(graph_node.node_id)
                node_ready[graph_node.node_id] = finish

        return QueryTrace(
            stream=stream_id, index=index, label=label,
            t_enqueue=t_enqueue, t_start=now, t_finish=finish,
            stall=stall_until - now, duration=duration,
            cost=exec_result.stats.total_cost,
            matching_seconds=prepared.matching_seconds,
            num_reused=len(prepared.reuses),
            num_materialized=len(materialized),
            reused_nodes=tuple(reused_nodes),
            materialized_nodes=tuple(materialized))
