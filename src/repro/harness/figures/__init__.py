"""Runners reproducing every figure of the paper's evaluation."""

from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .throughput import (MODES, PA_PATTERNS, ThroughputRun,
                         ThroughputSetup, make_setup, run_throughput)

__all__ = [
    "Fig6Result", "Fig7Result", "Fig8Result", "Fig9Result", "Fig10Result",
    "MODES", "PA_PATTERNS", "ThroughputRun", "ThroughputSetup",
    "make_setup", "run_fig6", "run_fig7", "run_fig8", "run_fig9",
    "run_fig10", "run_throughput",
]
