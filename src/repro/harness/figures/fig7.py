"""Figure 7: average evaluation time per TPC-H stream.

Paper: 4 / 16 / 64 / 256 streams, modes OFF / HIST / SPEC / PA; the
average per-stream time (first query issued -> last result received)
drops by ~10% (4 streams) to ~79% (256 streams), with SPEC beating HIST
and PA best from 64 streams up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..report import format_table
from .throughput import MODES, ThroughputSetup, make_setup, run_throughput

DEFAULT_STREAM_COUNTS = (4, 16, 64, 256)


@dataclass
class Fig7Cell:
    streams: int
    mode: str
    avg_stream_time: float
    makespan: float
    total_cost: float


@dataclass
class Fig7Result:
    cells: list[Fig7Cell] = field(default_factory=list)

    def cell(self, streams: int, mode: str) -> Fig7Cell:
        for cell in self.cells:
            if cell.streams == streams and cell.mode == mode:
                return cell
        raise KeyError((streams, mode))

    def improvement(self, streams: int, mode: str) -> float:
        """Percent improvement of ``mode`` over OFF at ``streams``."""
        off = self.cell(streams, "off").avg_stream_time
        this = self.cell(streams, mode).avg_stream_time
        if off <= 0:
            return 0.0
        return 100.0 * (1.0 - this / off)

    def render(self) -> str:
        counts = sorted({c.streams for c in self.cells})
        rows = []
        for count in counts:
            row: list[object] = [count]
            for mode in MODES:
                try:
                    row.append(round(self.cell(count, mode)
                                     .avg_stream_time, 1))
                except KeyError:
                    row.append("-")
            rows.append(row)
        table = format_table(
            ["streams"] + [m.upper() for m in MODES], rows,
            title="Fig. 7 — avg evaluation time per stream (virtual ms)")
        best = []
        for count in counts:
            improvements = []
            for mode in MODES[1:]:
                try:
                    gain = self.improvement(count, mode)
                    improvements.append(f"{mode.upper()} {gain:.0f}%")
                except KeyError:
                    pass
            best.append(f"  {count} streams: " + ", ".join(improvements))
        return table + "\nimprovement over OFF:\n" + "\n".join(best)


def run_fig7(stream_counts=DEFAULT_STREAM_COUNTS,
             modes=MODES, scale_factor: float = 0.01,
             workers: int = 12, setup: ThroughputSetup | None = None
             ) -> Fig7Result:
    setup = setup or make_setup(scale_factor=scale_factor,
                                workers=workers)
    result = Fig7Result()
    for count in stream_counts:
        for mode in modes:
            run = run_throughput(setup, count, mode)
            result.cells.append(Fig7Cell(
                streams=count, mode=mode,
                avg_stream_time=run.sim.average_stream_time(),
                makespan=run.sim.makespan,
                total_cost=run.sim.total_cost()))
    return result
