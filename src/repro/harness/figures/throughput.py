"""Shared machinery for the TPC-H throughput experiments (Figs. 7-9).

Evaluation modes (paper Section V):

* ``OFF``  — no recycling;
* ``HIST`` — history-only store decisions;
* ``SPEC`` — history + speculation;
* ``PA``   — speculation + proactive plans.  The paper did not implement
  the proactive rules inside the recycler; it *manually altered* the
  plans of Q1 (cube caching with binning) and Q16/Q19 (cube caching with
  selections).  This harness reproduces exactly that: in PA mode the
  plans of those three patterns are pre-rewritten with the
  :class:`~repro.recycler.ProactiveRewriter` and the recycler runs in
  speculation mode.  (The fully automatic rewriter remains available as
  recycler mode ``pa``.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ...columnar.catalog import Catalog
from ...recycler import ProactiveRewriter, Recycler, RecyclerConfig
from ...sql import sql_to_plan
from ...workloads.tpch import build_catalog, generate_streams
from ..streams import DEFAULT_SPEED, SimulationResult, StreamSimulator

MODES = ("off", "hist", "spec", "pa")

#: the patterns whose plans the paper manually altered for PA mode.
PA_PATTERNS = (1, 16, 19)


@dataclass
class ThroughputSetup:
    """One prepared TPC-H experiment environment."""

    catalog: Catalog
    scale_factor: float
    workers: int = 12
    cache_capacity: int | None = 64 * 1024 * 1024
    speed: float = DEFAULT_SPEED
    seed: int = 5620


def make_setup(scale_factor: float = 0.01, workers: int = 12,
               cache_capacity: int | None = 64 * 1024 * 1024,
               seed: int = 5620) -> ThroughputSetup:
    return ThroughputSetup(catalog=build_catalog(scale_factor),
                           scale_factor=scale_factor, workers=workers,
                           cache_capacity=cache_capacity, seed=seed)


def recycler_for_mode(setup: ThroughputSetup, mode: str) -> Recycler:
    """The recycler configuration each evaluation mode uses."""
    if mode == "off":
        config = RecyclerConfig(mode="off")
    elif mode == "hist":
        config = RecyclerConfig(mode="hist",
                                cache_capacity=setup.cache_capacity)
    else:  # "spec" and "pa" share the recycler; PA differs in the plans
        config = RecyclerConfig(mode="spec",
                                cache_capacity=setup.cache_capacity)
    return Recycler(setup.catalog, config)


class PlanCache:
    """SQL text -> bound plan, with optional PA pre-rewriting."""

    def __init__(self, setup: ThroughputSetup, mode: str) -> None:
        self.catalog = setup.catalog
        self.pa = mode == "pa"
        if self.pa:
            # The rewriter gets an effectively unbounded group threshold:
            # the paper applied the rule to Q19 by hand, whose predicate
            # columns exceed any sensible automatic bound.
            self._rewriter = ProactiveRewriter(
                self.catalog, RecyclerConfig(
                    mode="pa", proactive_group_threshold=10 ** 9))
        self._plans: dict[str, object] = {}

    def plan_for(self, query) -> object:
        key = query.sql
        if key not in self._plans:
            plan = sql_to_plan(query.sql, self.catalog)
            if self.pa and query.pattern in PA_PATTERNS:
                plan = self._rewriter.apply(plan).plan
            self._plans[key] = plan
        return self._plans[key]


@dataclass
class ThroughputRun:
    """A finished throughput run plus the recycler that served it."""

    sim: SimulationResult
    recycler: Recycler
    mode: str
    num_streams: int


def run_throughput(setup: ThroughputSetup, num_streams: int, mode: str,
                   patterns: list[int] | None = None) -> ThroughputRun:
    """One full throughput run: ``num_streams`` qgen streams, one mode."""
    streams = generate_streams(num_streams, setup.scale_factor,
                               patterns=patterns, seed=setup.seed)
    recycler = recycler_for_mode(setup, mode)
    plans = PlanCache(setup, mode)
    simulator = StreamSimulator(setup.catalog, recycler,
                                workers=setup.workers, speed=setup.speed,
                                plan_source=plans.plan_for)
    sim = simulator.run(streams)
    return ThroughputRun(sim=sim, recycler=recycler, mode=mode,
                         num_streams=num_streams)
