"""Figure 10: matching cost over a 256-stream throughput run.

Paper: the wall-clock cost of matching a query tree against the recycler
graph (plus inserting unmatched nodes) over all 5632 query invocations of
a 256-stream run, in total and per pattern.  The cost grows moderately
with graph size and stays orders of magnitude below query execution
(max ~2 ms vs 0.3-11.3 s runtimes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..report import format_table
from .throughput import ThroughputSetup, make_setup, run_throughput


@dataclass
class MatchingSample:
    query_number: int
    label: str
    matching_ms: float
    graph_nodes: int
    execution_ms: float    # virtual execution time of the query body


@dataclass
class Fig10Result:
    samples: list[MatchingSample] = field(default_factory=list)

    def bucket_averages(self, buckets: int = 10
                        ) -> list[tuple[int, float]]:
        """(upper query number, avg matching ms) per progress bucket —
        the smoothed 'total matching cost' series."""
        if not self.samples:
            return []
        size = max(len(self.samples) // buckets, 1)
        out = []
        for start in range(0, len(self.samples), size):
            chunk = self.samples[start:start + size]
            avg = sum(s.matching_ms for s in chunk) / len(chunk)
            out.append((start + len(chunk), avg))
        return out

    def per_pattern_averages(self) -> dict[str, float]:
        sums: dict[str, list[float]] = {}
        for sample in self.samples:
            sums.setdefault(sample.label, []).append(sample.matching_ms)
        return {label: sum(v) / len(v) for label, v in sums.items()}

    def max_matching_ms(self) -> float:
        return max((s.matching_ms for s in self.samples), default=0.0)

    def p99_matching_ms(self) -> float:
        """99th-percentile matching cost — robust against the occasional
        interpreter (GC) pause that would distort a plain maximum."""
        ordered = sorted(s.matching_ms for s in self.samples)
        if not ordered:
            return 0.0
        return ordered[min(int(len(ordered) * 0.99), len(ordered) - 1)]

    def final_graph_size(self) -> int:
        return max((s.graph_nodes for s in self.samples), default=0)

    def matching_stays_cheap(self, factor: float = 10.0) -> bool:
        """The paper's headline claim: (p99) matching cost stays far
        below typical execution cost.

        "Typical" is the *mean* execution time: with recycling on, the
        median query is a near-free cache hit, but the paper's claim
        compares matching against what evaluating queries actually costs
        (its 0.3-11.3 s runtimes are unrecycled) — the mean, dominated by
        the queries that really execute, is the recycled-run equivalent.
        """
        executions = [s.execution_ms for s in self.samples
                      if s.execution_ms > 0]
        if not executions:
            return True
        mean_execution = sum(executions) / len(executions)
        return self.p99_matching_ms() * factor < mean_execution

    def render(self) -> str:
        rows = [(upper, round(avg, 4))
                for upper, avg in self.bucket_averages()]
        trend = format_table(
            ["query number", "avg matching ms"], rows,
            title="Fig. 10 — matching cost along the run")
        per_pattern = format_table(
            ["pattern", "avg matching ms"],
            [(label, round(avg, 4)) for label, avg in
             sorted(self.per_pattern_averages().items(),
                    key=lambda kv: int(kv[0][1:]))],
            title="per pattern")
        executions = [s.execution_ms for s in self.samples
                      if s.execution_ms > 0]
        typical = sum(executions) / len(executions) if executions else 0.0
        footer = (f"matching cost: p99 {self.p99_matching_ms():.3f} ms,"
                  f" max {self.max_matching_ms():.3f} ms;"
                  f" mean query execution: {typical:.1f} ms (virtual);"
                  f" final graph size: {self.final_graph_size()} nodes")
        return "\n".join([trend, "", per_pattern, "", footer])


def run_fig10(num_streams: int = 256, scale_factor: float = 0.01,
              mode: str = "spec",
              setup: ThroughputSetup | None = None) -> Fig10Result:
    setup = setup or make_setup(scale_factor=scale_factor)
    run = run_throughput(setup, num_streams, mode)
    result = Fig10Result()
    for number, record in enumerate(run.recycler.records, start=1):
        result.samples.append(MatchingSample(
            query_number=number, label=record.label,
            matching_ms=record.matching_seconds * 1000.0,
            graph_nodes=record.graph_nodes,
            execution_ms=record.total_cost / setup.speed))
    return result
