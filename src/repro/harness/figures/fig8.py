"""Figure 8: per-query breakdown at the maximum stream count.

Paper: average execution time (stall + execution, excluding worker-queue
wait) of each TPC-H pattern under HIST / SPEC / PA relative to OFF, at
256 streams.  Expected shape: HIST improves everything except Q9 (its
~92-value parameter rarely repeats); SPEC improves all patterns; PA
additionally improves exactly Q1, Q16, Q19.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...workloads.tpch import ALL_QUERY_IDS
from ..report import format_table
from .throughput import ThroughputSetup, make_setup, run_throughput

BREAKDOWN_MODES = ("hist", "spec", "pa")


@dataclass
class Fig8Result:
    streams: int
    #: mode -> label -> average response (virtual ms)
    responses: dict[str, dict[str, float]] = field(default_factory=dict)

    def relative(self, mode: str, label: str) -> float:
        """Average response under ``mode`` relative to OFF (1.0 = same)."""
        off = self.responses["off"].get(label, 0.0)
        this = self.responses[mode].get(label, 0.0)
        if off <= 0:
            return 1.0
        return this / off

    def render(self) -> str:
        labels = [f"Q{i}" for i in ALL_QUERY_IDS
                  if f"Q{i}" in self.responses.get("off", {})]
        rows = []
        for label in labels:
            row: list[object] = [label]
            for mode in BREAKDOWN_MODES:
                if mode in self.responses:
                    row.append(round(self.relative(mode, label), 3))
                else:
                    row.append("-")
            rows.append(row)
        return format_table(
            ["pattern"] + [f"{m.upper()}/OFF" for m in BREAKDOWN_MODES],
            rows,
            title=(f"Fig. 8 — per-pattern avg time relative to OFF"
                   f" ({self.streams} streams)"))


def run_fig8(num_streams: int = 256, scale_factor: float = 0.01,
             workers: int = 12,
             setup: ThroughputSetup | None = None,
             modes=("off",) + BREAKDOWN_MODES) -> Fig8Result:
    setup = setup or make_setup(scale_factor=scale_factor,
                                workers=workers)
    result = Fig8Result(streams=num_streams)
    for mode in modes:
        run = run_throughput(setup, num_streams, mode)
        result.responses[mode] = run.sim.per_label_response()
    return result
