"""Figure 6: impact of recycling on SkyServer queries.

Paper setup: the 100-query log-derived workload, run as 1×100 / 2×50 /
4×25 batches with all cached results flushed between batches (simulating
update-driven invalidation), each under a limited and an unlimited
recycler cache, on (a) the MonetDB-style operator-at-a-time recycler and
(b) this paper's pipelined recycler.  The metric is total workload cost
as a percentage of the same system's naive (recycling-off) run.

Expected shape (paper): both systems improve dramatically; MonetDB-style
wins with an *unlimited* cache (materialization is free for it), the
pipelined recycler wins under a *limited* cache (it selects what to keep,
the baseline must keep every intermediate leading to a result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...mat import MatRecycler, MaterializingEngine
from ...recycler import Recycler, RecyclerConfig
from ...sql import sql_to_plan
from ...workloads.skyserver import build_catalog, generate_workload
from ..report import format_table, percent_of

#: the paper's 1 GB limited cache, scaled to this repo's synthetic data
#: volume (the baseline needs several MB of intermediates; the pipelined
#: recycler's selected results fit in a few hundred KB).
DEFAULT_LIMITED_CACHE = 512 * 1024


@dataclass
class Fig6Row:
    system: str          # "MonetDB-style" | "Recycler"
    split: str           # "1x100" | "2x50" | "4x25"
    cache: str           # "limited" | "unlimited"
    total_cost: float
    naive_cost: float

    @property
    def pct_of_naive(self) -> float:
        return percent_of(self.total_cost, self.naive_cost)


@dataclass
class Fig6Result:
    rows: list[Fig6Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            (r.system, r.split, r.cache, round(r.pct_of_naive, 1))
            for r in self.rows
        ]
        return format_table(
            ["system", "batches", "cache", "% of naive"], table_rows,
            title="Fig. 6 — SkyServer: recycling vs naive execution")


def run_fig6(num_rows: int = 40000, num_queries: int = 100,
             limited_cache: int = DEFAULT_LIMITED_CACHE,
             seed: int = 424242) -> Fig6Result:
    catalog = build_catalog(num_rows=num_rows)
    workload = generate_workload(num_queries, seed=seed)
    plans = {}

    def plan_of(query):
        if query.sql not in plans:
            plans[query.sql] = sql_to_plan(query.sql, catalog)
        return plans[query.sql]

    splits = {"1x100": 1, "2x50": 2, "4x25": 4}
    caches = {"limited": limited_cache, "unlimited": None}

    # Naive baselines (batch splits do not matter without a cache).
    naive_pipelined = 0.0
    off = Recycler(catalog, RecyclerConfig(mode="off"))
    for query in workload:
        naive_pipelined += off.execute(plan_of(query)).stats.total_cost
    naive_mat = 0.0
    plain_engine = MaterializingEngine(catalog)
    for query in workload:
        naive_mat += plain_engine.execute(plan_of(query)).total_cost

    result = Fig6Result()
    for split_name, parts in splits.items():
        size = (len(workload) + parts - 1) // parts
        batches = [workload[i:i + size]
                   for i in range(0, len(workload), size)]
        for cache_name, capacity in caches.items():
            # -- the paper's pipelined recycler --------------------------
            recycler = Recycler(catalog, RecyclerConfig(
                mode="spec", cache_capacity=capacity))
            total = 0.0
            for batch in batches:
                for query in batch:
                    total += recycler.execute(
                        plan_of(query)).stats.total_cost
                recycler.flush_cache()
            result.rows.append(Fig6Row("Recycler", split_name, cache_name,
                                       total, naive_pipelined))
            # -- the MonetDB-style baseline -------------------------------
            mat_recycler = MatRecycler(capacity=capacity)
            engine = MaterializingEngine(catalog, mat_recycler)
            total = 0.0
            for batch in batches:
                for query in batch:
                    total += engine.execute(plan_of(query)).total_cost
                mat_recycler.flush()
            result.rows.append(Fig6Row("MonetDB-style", split_name,
                                       cache_name, total, naive_mat))
    return result
