"""Figure 9: detailed trace of concurrent stream execution.

Paper: 8 streams (one per core) × 6 queries (Q1, Q8, Q13, Q18, Q19,
Q21), speculation on, proactive plan versions for Q1 and Q19.  The trace
shows per stream which query materialized a result (grey), reused one
(light grey), did both (dark grey), and where streams stall waiting for
an in-flight shared result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..report import format_timeline
from ..streams import QueryTrace
from .throughput import ThroughputSetup, make_setup, run_throughput

FIG9_PATTERNS = [1, 8, 13, 18, 19, 21]


@dataclass
class Fig9Result:
    traces: list[QueryTrace] = field(default_factory=list)
    num_streams: int = 8

    def marker_for(self, trace: QueryTrace) -> str:
        if trace.num_materialized and trace.num_reused:
            return "B"   # dark grey in the paper: reused and materialized
        if trace.num_materialized:
            return "M"   # grey: materialized a result
        if trace.num_reused:
            return "R"   # light grey: reused a materialized result
        return "."

    def stall_summary(self) -> dict[str, float]:
        """Total stall time per query label (who waited for whom)."""
        out: dict[str, float] = {}
        for trace in self.traces:
            out[trace.label] = out.get(trace.label, 0.0) + trace.stall
        return out

    def sharing_summary(self) -> dict[str, tuple[int, int]]:
        """label -> (#materializations, #reuses) across all streams."""
        out: dict[str, tuple[int, int]] = {}
        for trace in self.traces:
            m, r = out.get(trace.label, (0, 0))
            out[trace.label] = (m + trace.num_materialized,
                                r + trace.num_reused)
        return out

    def render(self) -> str:
        rows = []
        for trace in sorted(self.traces,
                            key=lambda t: (t.stream, t.t_start)):
            label = f"s{trace.stream + 1} {trace.label}"
            rows.append((label, trace.t_start, trace.t_finish,
                         self.marker_for(trace)))
        timeline = format_timeline(
            rows, title=("Fig. 9 — 8-stream trace"
                         " (M=materialized, R=reused, B=both)"))
        lines = [timeline, "", "sharing per pattern"
                 " (materializations / reuses / total stall ms):"]
        stalls = self.stall_summary()
        for label, (m, r) in sorted(self.sharing_summary().items()):
            lines.append(f"  {label}: {m} materialized, {r} reused,"
                         f" stall {stalls.get(label, 0.0):.0f}")
        return "\n".join(lines)


def run_fig9(num_streams: int = 8, scale_factor: float = 0.01,
             setup: ThroughputSetup | None = None) -> Fig9Result:
    setup = setup or make_setup(scale_factor=scale_factor,
                                workers=num_streams)
    # PA mode pre-rewrites Q1 and Q19 (and Q16, which is not in this
    # query set) — exactly the paper's "the proactive versions were used".
    run = run_throughput(setup, num_streams, "pa",
                         patterns=FIG9_PATTERNS)
    return Fig9Result(traces=run.sim.traces, num_streams=num_streams)
