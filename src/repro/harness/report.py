"""Plain-text rendering of experiment results (tables, bar rows,
timelines) — the harness's equivalent of the paper's figures."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(v.rjust(w)
                                for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_bars(items: Sequence[tuple[str, float]], title: str = "",
                width: int = 48, unit: str = "") -> str:
    """Horizontal ASCII bars, scaled to the maximum value."""
    lines = []
    if title:
        lines.append(title)
    peak = max((v for _, v in items), default=0.0)
    label_width = max((len(label) for label, _ in items), default=0)
    for label, value in items:
        bar = "#" * (0 if peak == 0 else max(int(value / peak * width),
                                             1 if value > 0 else 0))
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}|"
                     f" {_cell(value)}{unit}")
    return "\n".join(lines)


def format_timeline(rows: Sequence[tuple[str, float, float, str]],
                    title: str = "", width: int = 72) -> str:
    """Render (label, start, end, marker) spans on a shared time axis.

    Markers follow the paper's Fig. 9 legend: ``M`` materialized a
    result, ``R`` reused one, ``B`` did both, ``.`` neither; stall time
    is drawn with ``~``.
    """
    lines = []
    if title:
        lines.append(title)
    horizon = max((end for _, _, end, _ in rows), default=1.0)
    scale = width / horizon if horizon else 1.0
    label_width = max((len(label) for label, _, _, _ in rows), default=0)
    for label, start, end, marker in rows:
        begin = int(start * scale)
        finish = max(int(end * scale), begin + 1)
        span = (" " * begin + marker * (finish - begin)).ljust(width)
        lines.append(f"{label.ljust(label_width)} |{span}|")
    lines.append(f"{'':{label_width}}  0{'time (virtual ms)':^{width - 2}}"
                 f"{horizon:,.0f}")
    return "\n".join(lines)


def percent_of(value: float, baseline: float) -> float:
    """``value`` as a percentage of ``baseline`` (0 when undefined)."""
    if baseline <= 0:
        return 0.0
    return 100.0 * value / baseline
