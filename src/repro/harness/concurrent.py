"""Real-threads multi-stream throughput harness.

The OS-thread counterpart of :mod:`repro.harness.streams`: where the
virtual-time simulator *schedules* stalls deterministically, this runner
actually executes the paper's Fig. 7 stream setup — one session per
query stream, every stream on its own thread, all sharing one
:class:`~repro.db.Database` — and measures wall-clock throughput.
Queries genuinely block on in-flight materializations (the recycler's
condition-variable registry) and wake when the producer's store
completes.

``workers`` mirrors the paper's query slots: at most that many queries
execute simultaneously, enforced with a semaphore under FIFO admission,
while streams stay sequential internally.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from ..db import Database
from ..engine.executor import QueryResult
from ..plan.logical import PlanNode


@dataclass
class ThreadedQueryTrace:
    """Everything recorded about one query's (wall-clock) execution."""

    stream: int
    index: int
    label: str
    t_start: float        # seconds since run start, slot acquired
    t_finish: float
    stall_seconds: float  # blocked on an in-flight shared result
    cost: float
    num_reused: int
    num_materialized: int
    rows: int
    #: retained only when the runner keeps results (tests, verification).
    result: QueryResult | None = None

    @property
    def response(self) -> float:
        """Stall + execution, the Fig. 8 quantity."""
        return self.t_finish - self.t_start


@dataclass
class ConcurrentRunResult:
    """Output of one real-threads multi-stream run."""

    workers: int
    traces: list[ThreadedQueryTrace] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def queries(self) -> int:
        return len(self.traces)

    @property
    def throughput_qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.queries / self.wall_seconds

    def total_cost(self) -> float:
        return sum(t.cost for t in self.traces)

    def total_stall_seconds(self) -> float:
        return sum(t.stall_seconds for t in self.traces)

    def num_reused(self) -> int:
        return sum(t.num_reused for t in self.traces)

    def rows_by_query(self) -> dict[tuple[int, int], int]:
        return {(t.stream, t.index): t.rows for t in self.traces}

    def summary(self) -> dict[str, object]:
        return {
            "workers": self.workers,
            "queries": self.queries,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "total_cost": self.total_cost(),
            "total_stall_seconds": self.total_stall_seconds(),
            "num_reused": self.num_reused(),
        }


class ConcurrentStreamRunner:
    """Run query streams on real threads against one shared database."""

    def __init__(self, db: Database, workers: int | None = None,
                 keep_results: bool = False, executor=None) -> None:
        self.db = db
        #: simultaneous query slots; ``None`` = one per stream.
        self.workers = workers
        self.keep_results = keep_results
        #: optional :class:`~repro.engine.shard.ShardRuntime` — every
        #: stream session dispatches cold plans to worker processes.
        self.executor = executor

    # ------------------------------------------------------------------
    def _plan_of(self, query) -> PlanNode:
        if isinstance(query, PlanNode):
            return query
        sql = getattr(query, "sql", None)
        if sql is None and isinstance(query, str):
            sql = query
        if sql is None:
            raise TypeError(f"cannot derive a plan from {query!r}")
        return self.db.plan(sql)

    @staticmethod
    def _label_of(query, stream: int, index: int) -> str:
        return getattr(query, "label", f"s{stream}q{index}")

    # ------------------------------------------------------------------
    def run(self, streams: Sequence[Sequence[object]]
            ) -> ConcurrentRunResult:
        slots = self.workers if self.workers is not None else \
            max(len(streams), 1)
        result = ConcurrentRunResult(workers=slots)
        semaphore = threading.BoundedSemaphore(slots)
        traces_lock = threading.Lock()
        errors: list[BaseException] = []
        t0 = time.perf_counter()

        def run_stream(stream_id: int) -> None:
            session = self.db.connect(executor=self.executor)
            try:
                for index, query in enumerate(streams[stream_id]):
                    plan = self._plan_of(query)
                    label = self._label_of(query, stream_id, index)
                    with semaphore:
                        t_start = time.perf_counter() - t0
                        query_result = session.execute(plan, label=label)
                        t_finish = time.perf_counter() - t0
                    record = session.records[-1]
                    trace = ThreadedQueryTrace(
                        stream=stream_id, index=index, label=label,
                        t_start=t_start, t_finish=t_finish,
                        stall_seconds=record.stall_seconds,
                        cost=record.total_cost,
                        num_reused=record.num_reused,
                        num_materialized=record.num_materialized,
                        rows=query_result.table.num_rows,
                        result=query_result if self.keep_results
                        else None)
                    with traces_lock:
                        result.traces.append(trace)
            except BaseException as exc:  # surfaced after join
                with traces_lock:
                    errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=run_stream, args=(stream_id,),
                             name=f"repro-stream-{stream_id}")
            for stream_id in range(len(streams))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        result.wall_seconds = time.perf_counter() - t0
        if errors:
            raise errors[0]
        result.traces.sort(key=lambda t: (t.stream, t.index))
        return result


def format_throughput_table(results: Sequence[ConcurrentRunResult],
                            title: str = "concurrent throughput") -> str:
    """Render a workers/throughput table (bench_concurrent output)."""
    lines = [title, "=" * len(title),
             f"{'workers':>8} {'queries':>8} {'wall_s':>9}"
             f" {'qps':>9} {'reused':>7} {'stall_s':>8}"]
    for res in results:
        lines.append(
            f"{res.workers:>8} {res.queries:>8}"
            f" {res.wall_seconds:>9.3f} {res.throughput_qps:>9.1f}"
            f" {res.num_reused():>7} {res.total_stall_seconds():>8.3f}")
    return "\n".join(lines)
