"""Closed-loop load harness for the serving layer (TCP and HTTP).

``LoadGenerator`` drives a running server — the TCP
:class:`~repro.server.ReproServer` or the HTTP
:class:`~repro.server.HttpServer`, selected by ``frontend`` — with N
concurrent client connections, each issuing queries from a workload in
a closed loop (next query starts when the previous answer arrives),
and reports throughput and the client-observed latency distribution —
p50/p99 as seen *through* the wire, admission control, and the shared
recycler, which is the number a serving deployment actually cares
about.

With ``stream=True`` each query is consumed through the streaming API
(:meth:`~repro.server.ServerClient.execute_stream`), and the report
additionally carries time-to-first-byte percentiles — the latency a
streaming consumer actually feels, independent of result size.

Admission rejects (:class:`~repro.errors.ServerOverloaded`) are counted
separately and retried after a short backoff: under a closed loop they
indicate the offered concurrency exceeds the server's configured
capacity, not lost work.

Also runnable as a module for smoke/load testing (used by the CI
``server`` job)::

    python -m repro.harness.loadgen --self-serve --duration 5
    python -m repro.harness.loadgen --self-serve --frontend http \\
        --scenario scan --duration 5

``--self-serve`` builds a synthetic SkyServer database, serves it on an
ephemeral port, and points the generator at it; otherwise pass
``--host``/``--port`` of an already-running server.  ``--scenario
scan`` switches the workload to full-table scans consumed through the
streaming API (the large-result path).
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass, field

from ..errors import ReproError, ServerOverloaded
from ..server import HttpClient, ServerClient

#: backoff after an admission reject before the client retries.
REJECT_BACKOFF_SECONDS = 0.01


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 1]) over pre-sorted values."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass
class LoadReport:
    """What the generator observed, client-side."""

    clients: int
    duration_seconds: float
    served: int = 0
    rejected: int = 0
    errors: int = 0
    #: per-query wall seconds, request write to response decode.
    latencies: list[float] = field(default_factory=list)
    #: streaming runs only: seconds from request write to the
    #: result_header arriving (time to first byte).
    ttfbs: list[float] = field(default_factory=list)

    @property
    def qps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.served / self.duration_seconds

    def latency(self, q: float) -> float:
        return percentile(sorted(self.latencies), q)

    def ttfb(self, q: float) -> float:
        return percentile(sorted(self.ttfbs), q)

    def as_dict(self) -> dict:
        d = {
            "clients": self.clients,
            "duration_seconds": round(self.duration_seconds, 3),
            "served": self.served,
            "rejected": self.rejected,
            "errors": self.errors,
            "qps": round(self.qps, 1),
            "p50_ms": round(self.latency(0.50) * 1e3, 3),
            "p99_ms": round(self.latency(0.99) * 1e3, 3),
            "max_ms": round(self.latency(1.0) * 1e3, 3),
        }
        if self.ttfbs:
            d["ttfb_p50_ms"] = round(self.ttfb(0.50) * 1e3, 3)
            d["ttfb_p99_ms"] = round(self.ttfb(0.99) * 1e3, 3)
        return d

    def format(self) -> str:
        d = self.as_dict()
        text = (f"{d['served']} served ({d['qps']} qps,"
                f" {d['clients']} clients, {d['duration_seconds']} s),"
                f" {d['rejected']} rejected, {d['errors']} errors,"
                f" latency p50 {d['p50_ms']} ms / p99 {d['p99_ms']} ms"
                f" / max {d['max_ms']} ms")
        if "ttfb_p50_ms" in d:
            text += (f", ttfb p50 {d['ttfb_p50_ms']} ms"
                     f" / p99 {d['ttfb_p99_ms']} ms")
        return text


class LoadGenerator:
    """Closed-loop driver: ``clients`` connections, each cycling through
    ``queries`` until ``duration`` elapses or it has issued
    ``queries_per_client`` (whichever is given; duration wins ties)."""

    def __init__(self, host: str, port: int, queries: list[str], *,
                 clients: int = 4, duration: float | None = None,
                 queries_per_client: int | None = None,
                 timeout: float | None = None,
                 tenant: str | None = None,
                 frontend: str = "tcp",
                 stream: bool = False) -> None:
        if duration is None and queries_per_client is None:
            raise ValueError(
                "need a duration or a per-client query count")
        if frontend not in ("tcp", "http"):
            raise ValueError(f"unknown frontend: {frontend!r}")
        self.host = host
        self.port = port
        self.queries = list(queries)
        self.clients = clients
        self.duration = duration
        self.queries_per_client = queries_per_client
        self.timeout = timeout
        self.tenant = tenant
        self.frontend = frontend
        self.stream = stream

    def _make_client(self):
        if self.frontend == "http":
            return HttpClient(self.host, self.port)
        return ServerClient(self.host, self.port)

    def run(self) -> LoadReport:
        report_lock = threading.Lock()
        served: list[float] = []
        ttfbs: list[float] = []
        counts = {"rejected": 0, "errors": 0}
        start_barrier = threading.Barrier(self.clients + 1)
        stop_at: list[float] = [float("inf")]

        def issue(client, sql: str) -> tuple[float, float]:
            """One query; returns (latency, ttfb) in seconds (ttfb is
            the total on the non-streaming path)."""
            begin = time.monotonic()
            if self.stream:
                with client.execute_stream(
                        sql, timeout=self.timeout,
                        tenant=self.tenant) as result:
                    first = time.monotonic() - begin
                    for _ in result:
                        pass
                return time.monotonic() - begin, first
            client.query(sql, timeout=self.timeout, tenant=self.tenant)
            elapsed = time.monotonic() - begin
            return elapsed, elapsed

        def client_loop(client_index: int) -> None:
            with self._make_client() as client:
                start_barrier.wait()
                issued = 0
                while time.monotonic() < stop_at[0] and (
                        self.queries_per_client is None
                        or issued < self.queries_per_client):
                    sql = self.queries[
                        (client_index + issued) % len(self.queries)]
                    issued += 1
                    try:
                        latency, first = issue(client, sql)
                    except ServerOverloaded:
                        with report_lock:
                            counts["rejected"] += 1
                        time.sleep(REJECT_BACKOFF_SECONDS)
                        continue
                    except ReproError:
                        with report_lock:
                            counts["errors"] += 1
                        continue
                    with report_lock:
                        served.append(latency)
                        if self.stream:
                            ttfbs.append(first)

        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"loadgen-{i}")
                   for i in range(self.clients)]
        for thread in threads:
            thread.start()
        start_barrier.wait()
        begin = time.monotonic()
        if self.duration is not None:
            stop_at[0] = begin + self.duration
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - begin

        report = LoadReport(clients=self.clients,
                            duration_seconds=elapsed,
                            rejected=counts["rejected"],
                            errors=counts["errors"])
        report.served = len(served)
        report.latencies = served
        report.ttfbs = ttfbs
        return report


# ----------------------------------------------------------------------
# CLI (CI smoke load test)
# ----------------------------------------------------------------------
def _self_serve_workload(num_rows: int):
    """A SkyServer database + the query mix to drive at it."""
    from .. import Database, RecyclerConfig
    from ..workloads.skyserver import build_catalog, generate_workload
    db = Database(RecyclerConfig(mode="spec"),
                  catalog=build_catalog(num_rows=num_rows))
    queries = [q.sql for q in generate_workload(40)]
    return db, queries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load generator for the repro server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--self-serve", action="store_true",
                        help="build a synthetic SkyServer database and"
                             " serve it on an ephemeral port")
    parser.add_argument("--rows", type=int, default=20000,
                        help="photoobj rows for --self-serve")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of closed-loop load")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="per-query server-side timeout")
    parser.add_argument("--frontend", choices=("tcp", "http"),
                        default="tcp",
                        help="which serving frontend to drive")
    parser.add_argument("--scenario", choices=("mixed", "scan"),
                        default="mixed",
                        help="mixed = the SkyServer query mix;"
                             " scan = full-table scans consumed"
                             " through the streaming API")
    parser.add_argument("--max-in-flight", type=int, default=8)
    parser.add_argument("--max-queue", type=int, default=16)
    args = parser.parse_args(argv)

    db = None
    server = None
    try:
        if args.self_serve:
            from ..server import HttpServer, ReproServer
            db, queries = _self_serve_workload(args.rows)
            server_cls = HttpServer if args.frontend == "http" \
                else ReproServer
            server = server_cls(db, max_in_flight=args.max_in_flight,
                                max_queue=args.max_queue)
            host, port = server.start()
            print(f"self-serving SkyServer ({args.rows} rows)"
                  f" on {host}:{port} ({args.frontend})")
        else:
            if not args.port:
                parser.error("--port is required without --self-serve")
            host, port = args.host, args.port
            from ..workloads.skyserver import generate_workload
            queries = [q.sql for q in generate_workload(40)]

        stream = args.scenario == "scan"
        if stream:
            queries = ["SELECT * FROM photoobj"]
        generator = LoadGenerator(host, port, queries,
                                  clients=args.clients,
                                  duration=args.duration,
                                  timeout=args.timeout,
                                  frontend=args.frontend,
                                  stream=stream)
        report = generator.run()
        print(report.format())
        if report.errors:
            print(f"FAIL: {report.errors} queries errored")
            return 1
        if not report.served:
            print("FAIL: no queries served")
            return 1
        return 0
    finally:
        if server is not None:
            server.stop()
        if db is not None:
            db.close()


if __name__ == "__main__":  # pragma: no cover - exercised by CI smoke
    raise SystemExit(main())
