"""Experiment harness: virtual-time simulator, real-threads runner,
figure runners."""

from .concurrent import (ConcurrentRunResult, ConcurrentStreamRunner,
                         ThreadedQueryTrace, format_throughput_table)
from .report import format_bars, format_table, format_timeline, percent_of
from .streams import (DEFAULT_SPEED, QueryTrace, SimulationResult,
                      StreamSimulator)

__all__ = [
    "ConcurrentRunResult", "ConcurrentStreamRunner", "DEFAULT_SPEED",
    "QueryTrace", "SimulationResult", "StreamSimulator",
    "ThreadedQueryTrace", "format_bars", "format_table",
    "format_timeline", "format_throughput_table", "percent_of",
]
