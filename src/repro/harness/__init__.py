"""Experiment harness: virtual-time stream simulator + figure runners."""

from .report import format_bars, format_table, format_timeline, percent_of
from .streams import (DEFAULT_SPEED, QueryTrace, SimulationResult,
                      StreamSimulator)

__all__ = [
    "DEFAULT_SPEED", "QueryTrace", "SimulationResult", "StreamSimulator",
    "format_bars", "format_table", "format_timeline", "percent_of",
]
