"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TypeError_(ReproError):
    """A value or column has an unexpected or unsupported data type."""


class SchemaError(ReproError):
    """A schema is malformed, or two schemas that must agree do not."""


class CatalogError(ReproError):
    """A table, column, or table function is unknown to the catalog."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be evaluated."""


class PlanError(ReproError):
    """A logical plan is malformed (bad arity, unknown column, ...)."""


class SqlError(ReproError):
    """SQL text could not be lexed, parsed, or bound."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ExecutionError(ReproError):
    """A physical operator failed while producing tuples."""


class QueryAborted(ExecutionError):
    """A query stopped before completion (cooperative cancellation).

    Base class for :class:`QueryCancelled` and :class:`QueryTimeout`;
    catch this to handle both.  Aborted queries leave no recycler side
    effects: no cache entry is published and the query's in-flight
    registrations are released.
    """


class QueryCancelled(QueryAborted):
    """The query's :class:`~repro.engine.cancellation.CancellationToken`
    was cancelled (``Session.cancel``, pool shutdown, ...)."""


class QueryTimeout(QueryAborted):
    """The query ran past its deadline (``Database.sql(timeout=...)`` /
    ``Session.execute(deadline=...)``)."""


class RecyclerError(ReproError):
    """The recycler graph or cache reached an inconsistent state."""


class ConcurrencyConflict(RecyclerError):
    """Optimistic insertion into the recycler graph detected a conflict.

    The caller is expected to re-run matching for the conflicting node,
    mirroring the backwards-validation restart described in the paper
    (Section III-B).
    """


class ServerError(ReproError):
    """A server-side failure relayed over the wire protocol (the
    server's typed error frames map back onto the library hierarchy
    where possible; anything else arrives as this class)."""

    def __init__(self, message: str, error_type: str = "") -> None:
        super().__init__(message)
        #: the server-reported error class name (observability).
        self.error_type = error_type


class ServerOverloaded(ServerError):
    """Admission control rejected the query: the server's in-flight
    limit is reached and its accept queue is full.  Deliberate
    backpressure — retry later rather than queueing unboundedly."""


class ServerUnavailable(ServerError):
    """The server is draining for shutdown (or already gone) and
    accepts no new queries."""


class ResultTooLarge(ServerError):
    """A result does not fit in one protocol-v1 frame (the 64 MB cap).

    Only v1 connections can hit this: protocol v2 ships results as
    bounded ``result_chunk`` frames, so arbitrarily large tables stream
    without ever approaching the per-frame cap.  Reconnect with a v2
    client (the default) or add a LIMIT."""


class WorkloadError(ReproError):
    """A workload generator was asked for something it cannot produce."""


class HarnessError(ReproError):
    """The experiment harness was misconfigured."""
