"""The transport-agnostic execution core.

Every frontend — the :class:`~repro.db.Database` facade, sessions and
session pools, the PEP 249 DB-API (:mod:`repro.dbapi`), and the TCP
server (:mod:`repro.server`) — funnels queries through one
:class:`ExecutionService`.  The service owns the **single** canonical
pipeline:

1. note activity (the maintenance scheduler's EWMA traffic signal);
2. pin a catalog snapshot (unless the caller already pinned one);
3. parse/bind/validate SQL text, or validate a prebuilt plan;
4. build the :class:`~repro.engine.cancellation.CancellationToken` from
   uniform ``timeout``/``deadline`` limits (unless the caller supplies
   a token it also needs for cross-thread cancellation);
5. ``Recycler.prepare`` → remote-or-local execution → ``finalize``
   (with ``abandon`` unwinding on any failure);
6. account the outcome into per-frontend statistics.

Historically that pipeline existed four times — ``Database.sql`` /
``Database.execute``, ``Session.execute``, ``SessionPool.submit``, and
the shard-pool parent path inside ``Recycler.execute`` — with subtly
different timeout and snapshot handling.  All four are now thin callers
of :meth:`ExecutionService.execute`; ``grep prepare(`` finds exactly one
execution pipeline in the tree (this module).

Concurrency: the service adds no locking of its own around execution —
the recycler is fully thread-safe — and keeps its per-frontend counters
under one small lock.  It is shared by every frontend of a database, so
``Database.summary()["service"]`` shows where traffic comes from.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

from .engine.cancellation import CancellationToken
from .engine.executor import QueryResult, execute_plan
from .engine.shard.pool import ShardUnavailable
from .errors import QueryCancelled, QueryTimeout
from .plan.logical import PlanNode
from .plan.validate import validate_plan
from .sql import sql_to_plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .columnar.catalog import CatalogSnapshot
    from .recycler.recycler import Recycler


@dataclass
class FrontendStats:
    """Per-caller counters (one instance per frontend name)."""

    queries: int = 0
    errors: int = 0
    timeouts: int = 0
    cancelled: int = 0
    rows: int = 0
    num_reused: int = 0
    num_materialized: int = 0
    seconds: float = 0.0
    streams: int = 0
    stream_chunks: int = 0

    def as_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ExecutionService:
    """The one prepare→snapshot-pin→optimize→recycle→record pipeline.

    Constructed by :class:`~repro.recycler.recycler.Recycler` (so the
    recycler's own ``execute`` keeps working standalone) and shared by
    the :class:`~repro.db.Database` facade, which attaches its
    :class:`~repro.recycler.maintenance.ActivityTracker`.
    """

    def __init__(self, recycler: "Recycler", activity=None) -> None:
        self.recycler = recycler
        #: the maintenance scheduler's EWMA traffic signal; ``None``
        #: (standalone recycler) disables the activity feed.
        self.activity = activity
        self._stats: dict[str, FrontendStats] = {}
        self._stats_lock = threading.Lock()
        #: attached :class:`~repro.server.ReproServer` instances —
        #: ``summary()`` folds their admission/connection counters in.
        self._servers: list[object] = []

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, text: str,
             snapshot: "CatalogSnapshot | None" = None) -> PlanNode:
        """Parse + bind + validate SQL text into a logical plan, resolved
        against ``snapshot`` (one is pinned here otherwise) so a
        concurrent DDL cannot slide under the binder mid-statement."""
        snapshot = snapshot or self.recycler.catalog.snapshot()
        plan = sql_to_plan(text, snapshot)
        validate_plan(plan, snapshot)
        return plan

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------
    def execute(self, query: str | PlanNode, *, frontend: str = "service",
                label: str = "",
                timeout: float | None = None,
                deadline: float | None = None,
                cancel_token: CancellationToken | None = None,
                producer_token: object | None = None,
                block_on_inflight: bool = False,
                snapshot: "CatalogSnapshot | None" = None,
                remote: object | None = None,
                tenant: str | None = None,
                validate: bool = True) -> QueryResult:
        """Run one query (SQL text or a prebuilt plan) end to end.

        ``frontend`` names the caller for the per-caller statistics
        (``"database"``, ``"session"``, ``"dbapi"``, ``"server"``, ...).

        ``timeout`` (seconds from now) / ``deadline`` (absolute
        :func:`time.monotonic` timestamp) bound the execution — the
        earlier wins; past either the query aborts with
        :class:`~repro.errors.QueryTimeout` within one batch boundary.
        A caller that needs the token for cross-thread cancellation
        (sessions, the server) builds it with
        :meth:`CancellationToken.from_limits` and passes
        ``cancel_token`` instead.

        ``snapshot`` pins the catalog view end to end; one is pinned
        here otherwise.  A prebuilt plan arriving *without* a snapshot
        is re-validated against the pinned one (``validate=False``
        restores the raw ``Recycler.execute`` contract for callers that
        manage validation themselves).

        ``remote`` fans cold queries out to a
        :class:`~repro.engine.shard.pool.ShardRuntime`; ``tenant``
        attributes cache admissions to a per-tenant byte budget (see
        :meth:`~repro.recycler.recycler.Recycler.set_tenant_budget`).
        """
        if self.activity is not None:
            self.activity.note_query()
        if cancel_token is None:
            cancel_token = CancellationToken.from_limits(
                timeout=timeout, deadline=deadline)
        pinned_here = snapshot is None
        if snapshot is None:
            snapshot = self.recycler.catalog.snapshot()
        if isinstance(query, str):
            plan = self.plan(query, snapshot)
        else:
            plan = query
            if validate and pinned_here:
                validate_plan(plan, snapshot)

        started = time.perf_counter()
        try:
            result = self._pipeline(
                plan, label=label, producer_token=producer_token,
                block_on_inflight=block_on_inflight,
                cancel_token=cancel_token, snapshot=snapshot,
                remote=remote, tenant=tenant)
        except QueryTimeout:
            self._account_error(frontend, "timeouts")
            raise
        except QueryCancelled:
            self._account_error(frontend, "cancelled")
            raise
        except Exception:
            self._account_error(frontend, "errors")
            raise
        self._account(frontend, result, time.perf_counter() - started)
        return result

    def _pipeline(self, plan: PlanNode, *, label: str,
                  producer_token: object | None,
                  block_on_inflight: bool,
                  cancel_token: CancellationToken | None,
                  snapshot: "CatalogSnapshot | None",
                  remote: object | None,
                  tenant: str | None) -> QueryResult:
        """prepare → remote-or-local execute → finalize, with the
        abandon path unwinding on any failure.  This is the only copy of
        the pipeline; ``Recycler.execute`` and every frontend delegate
        here."""
        recycler = self.recycler
        prepared = recycler.prepare(plan, producer_token=producer_token,
                                    block_on_inflight=block_on_inflight,
                                    cancel_token=cancel_token,
                                    snapshot=snapshot, tenant=tenant)
        try:
            result = None
            if remote is not None and remote.eligible(prepared):
                # The shard-parent path: cold plans execute in a worker
                # process; the recycler (matching, admission) stays
                # authoritative in this process.
                try:
                    outcome = remote.execute(prepared, cancel_token)
                except ShardUnavailable:
                    result = None  # closed mid-flight: run locally
                else:
                    outcome.stats.num_stored = \
                        recycler._admit_remote_stores(prepared, outcome)
                    result = QueryResult(table=outcome.table,
                                         stats=outcome.stats)
            if result is None:
                result = execute_plan(prepared.executed_plan,
                                      prepared.snapshot or
                                      recycler.catalog,
                                      stores=prepared.stores,
                                      vector_size=recycler.vector_size,
                                      cost_model=recycler.cost_model,
                                      query_id=prepared.query_id,
                                      token=cancel_token)
        except BaseException:
            recycler.abandon(prepared)
            raise
        result.record = recycler.finalize(prepared, result.stats,
                                          label=label)
        return result

    # ------------------------------------------------------------------
    # per-frontend accounting
    # ------------------------------------------------------------------
    def _frontend(self, name: str) -> FrontendStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats.setdefault(name, FrontendStats())
        return stats

    def _account(self, frontend: str, result: QueryResult,
                 seconds: float) -> None:
        record = result.record
        with self._stats_lock:
            stats = self._frontend(frontend)
            stats.queries += 1
            stats.seconds += seconds
            stats.rows += result.table.num_rows
            if record is not None:
                stats.num_reused += record.num_reused
                stats.num_materialized += record.num_materialized

    def _account_error(self, frontend: str, kind: str) -> None:
        with self._stats_lock:
            stats = self._frontend(frontend)
            setattr(stats, kind, getattr(stats, kind) + 1)

    def account_stream(self, frontend: str, *, chunks: int,
                       rows: int) -> None:
        """Record one completed streamed reply (protocol v2 / HTTP
        chunked responses) against the frontend's counters.  ``rows``
        is unused today — the row total was already accounted by
        :meth:`_account` when the query executed — but keeps the
        call-site honest about what a stream shipped."""
        del rows
        with self._stats_lock:
            stats = self._frontend(frontend)
            stats.streams += 1
            stats.stream_chunks += chunks

    # ------------------------------------------------------------------
    # server attachment & observability
    # ------------------------------------------------------------------
    def attach_server(self, server: object) -> None:
        """Register a running :class:`~repro.server.ReproServer` so its
        admission counters surface in :meth:`summary`."""
        with self._stats_lock:
            if server not in self._servers:
                self._servers.append(server)

    def detach_server(self, server: object) -> None:
        with self._stats_lock:
            if server in self._servers:
                self._servers.remove(server)

    def summary(self) -> dict[str, object]:
        """Per-frontend query counts plus, summed over every attached
        server, admission rejections and live connections — the
        ``"service"`` block of ``Database.summary()``."""
        with self._stats_lock:
            frontends = {name: stats.as_dict()
                         for name, stats in sorted(self._stats.items())}
            servers = list(self._servers)
        rejected = 0
        connections = 0
        for server in servers:
            stats = server.stats()
            rejected += stats.get("rejected", 0)
            connections += stats.get("active_connections", 0)
        return {
            "frontends": frontends,
            "queries": sum(s["queries"] for s in frontends.values()),
            "servers": len(servers),
            "admission_rejected": rejected,
            "active_connections": connections,
        }
