"""Canonicalizing plan optimizer: equivalent plans, one fingerprint.

The recycler matches plans *as bound*, so before this pass two
semantically identical queries could produce different
``plan_fingerprint``s and silently recompute + double-store:
``q.scan("t").filter(x > 1).filter(y > 2)`` vs. the single-filter
``x > 1 AND y > 2`` form, ``Lit(1)`` vs. ``Lit(1.0)``, an identity
pass-through ``Project``.  The expression layer already canonicalizes
(AND operand order, flipped comparisons); this module is the missing
plan-level half.

Design: a list of small *strategies* (the strategy-visitor pattern of
cost-based optimizers such as opteryx), each an object with a ``name``
and an ``apply(node, ctx) -> PlanNode | None`` hook, driven bottom-up
over the tree to a fixpoint.  Unlike the usual post-hoc arrangement —
optimize for execution, match on whatever falls out — the pass runs in
``Recycler.prepare`` *before* fingerprinting and Algorithm-1 matching,
so the canonical form is the recycler graph's vocabulary: every shape
in an equivalence class maps to one graph subtree, one lock stripe, and
one cached entry.

Canonical-form invariants (what the strategies guarantee on output):

* no ``Select`` whose child is a ``Select``, except the sargable/
  residual split below;
* over a leaf, a conjunction with both sargable (column-vs-literal
  range, equality, IN) and residual conjuncts is split into an inner
  sargable ``Select`` and an outer residual ``Select`` — queries that
  share the range part but differ in the residual then share the inner
  graph node (and feed the subsumption index a pure-range node);
* predicate literals that are integral floats are ``INT64``;
* no identity ``Project``; single-source predicates sit below
  ``Project`` (pass-through columns only) and ``Join``;
* no ``Limit`` over ``Limit``/``Sort``/``TopN``;
* ``Join`` key pairs and same-schema ``UnionAll`` inputs are in a
  deterministic order;
* scan column order is base-table order wherever it is not visible in
  the root schema (matching keys scans on the ordered column tuple).

Every rewrite is *executable* semantics-preserving, not merely
fingerprint-preserving: filters commute with projection and with the
order-stable hash join, and ``TopN`` uses the same stable ``lexsort``
as ``Sort`` — so the rewritten plan returns byte-identical rows and the
recycler's serial-vs-concurrent identity checks keep holding.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..columnar import types as t
from ..columnar.catalog import CatalogView
from ..expr import nodes as e
from ..expr.analysis import conjoin, is_sargable_conjunct, split_conjuncts
from .logical import (Join, Limit, PlanNode, Project, Scan, Select, Sort,
                      TableFunctionScan, TopN, UnionAll, plan_fingerprint)

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


@dataclass
class OptimizeContext:
    """Per-``optimize()`` state handed to every strategy."""

    catalog: CatalogView
    counts: Counter = field(default_factory=Counter)


def _sorted_conjuncts(conjuncts: list[e.Expr]) -> list[e.Expr]:
    """Deterministic conjunct order (``repr`` of the canonical key —
    plain tuple comparison can raise on heterogeneous literal types)."""
    return sorted(conjuncts, key=lambda c: repr(c.key()))


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
class Strategy:
    """One rewrite rule: return the replacement node, or ``None``."""

    name = "abstract"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        raise NotImplementedError


class NormalizeLiterals(Strategy):
    """``x > 1.0`` and ``x > 1`` must share a key: integral-float
    literals compared *directly* against anything become ``INT64``.

    Only direct ``Cmp`` operands are touched — a literal inside
    arithmetic (``x + 1.0``) changes the expression's dtype and, for
    int64 values beyond 2**53, its result, so it stays as written.
    """

    name = "normalize_literals"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if isinstance(node, Select):
            predicate = self._boolean(node.predicate)
            if predicate is not None:
                return Select(node.child, predicate)
        elif isinstance(node, Join) and node.extra is not None:
            extra = self._boolean(node.extra)
            if extra is not None:
                return Join(node.left, node.right, node.kind,
                            node.left_keys, node.right_keys, extra)
        return None

    def _boolean(self, expr: e.Expr) -> e.Expr | None:
        """Rewrite inside the boolean skeleton; ``None`` = unchanged."""
        if isinstance(expr, e.And) or isinstance(expr, e.Or):
            args = [self._boolean(a) for a in expr.args]
            if all(a is None for a in args):
                return None
            merged = [n if n is not None else o
                      for n, o in zip(args, expr.args)]
            return type(expr)(merged)
        if isinstance(expr, e.Not):
            arg = self._boolean(expr.arg)
            return e.Not(arg) if arg is not None else None
        if isinstance(expr, e.Cmp):
            left = self._literal(expr.left)
            right = self._literal(expr.right)
            if left is None and right is None:
                return None
            return e.Cmp(expr.op, left or expr.left, right or expr.right)
        return None

    @staticmethod
    def _literal(expr: e.Expr) -> e.Lit | None:
        if not isinstance(expr, e.Lit) or expr._dtype is not t.FLOAT64:
            return None
        value = expr.value
        if not (isinstance(value, float) and value.is_integer()
                and _INT64_MIN <= value <= _INT64_MAX):
            return None
        return e.Lit(int(value))


class MergeSelects(Strategy):
    """Stacked filters fold into one sorted-conjunct AND — the shape
    ``WHERE a AND b`` binds to (``And.key`` sorts, so the merged node's
    fingerprint is order-insensitive by construction)."""

    name = "merge_selects"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not (isinstance(node, Select) and isinstance(node.child,
                                                        Select)):
            return None
        conjuncts = split_conjuncts(node.child.predicate) \
            + split_conjuncts(node.predicate)
        return Select(node.child.child,
                      conjoin(_sorted_conjuncts(conjuncts)))


class ElideIdentityProject(Strategy):
    """A ``Project`` that passes every child column through unchanged,
    in order, computes nothing — drop it."""

    name = "elide_identity_project"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not isinstance(node, Project):
            return None
        if not all(isinstance(x, e.Col) and x.name == n
                   for n, x in node.outputs):
            return None
        child_names = node.child.output_schema(ctx.catalog).names
        if [n for n, _ in node.outputs] != list(child_names):
            return None
        return node.child


class PushdownSelectProject(Strategy):
    """``Select(Project)`` commutes to ``Project(Select)`` when the
    predicate only reads pass-through columns (renames are followed);
    filters then sit at the canonical below-projection position and
    projection expressions run on fewer rows."""

    name = "pushdown_project"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not (isinstance(node, Select) and isinstance(node.child,
                                                        Project)):
            return None
        project = node.child
        to_input = {name: expr.name for name, expr in project.outputs
                    if isinstance(expr, e.Col)}
        columns = node.predicate.columns()
        if not columns <= to_input.keys():
            return None
        predicate = node.predicate.rename(
            {c: to_input[c] for c in columns})
        return Project(Select(project.child, predicate),
                       project.outputs)


class PushdownSelectJoin(Strategy):
    """Single-side conjuncts of a ``Select`` above a ``Join`` move into
    the *preserved* input — the side whose rows survive the join
    unchanged: the left side for inner/left/semi/anti, the right side
    for inner/right.  Pushing into a padded (non-preserved) side of an
    outer join would change which rows get padded, so right-side
    conjuncts stay above left joins, left-side conjuncts stay above
    right joins, and nothing moves below a full outer join.  Multi-side
    and constant conjuncts stay above."""

    name = "pushdown_join"

    #: per join kind, which sides a single-side conjunct may move into.
    _LEFT_SAFE = ("inner", "left", "semi", "anti")
    _RIGHT_SAFE = ("inner", "right")

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not (isinstance(node, Select) and isinstance(node.child,
                                                        Join)):
            return None
        join = node.child
        left_cols = set(join.left.output_schema(ctx.catalog).names)
        right_cols = set(join.right.output_schema(ctx.catalog).names)
        to_left: list[e.Expr] = []
        to_right: list[e.Expr] = []
        kept: list[e.Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            columns = conjunct.columns()
            if columns and columns <= left_cols \
                    and join.kind in self._LEFT_SAFE:
                to_left.append(conjunct)
            elif columns and columns <= right_cols \
                    and join.kind in self._RIGHT_SAFE:
                to_right.append(conjunct)
            else:
                kept.append(conjunct)
        if not to_left and not to_right:
            return None
        left = Select(join.left, conjoin(_sorted_conjuncts(to_left))) \
            if to_left else join.left
        right = Select(join.right, conjoin(_sorted_conjuncts(to_right))) \
            if to_right else join.right
        pushed = Join(left, right, join.kind, join.left_keys,
                      join.right_keys, join.extra)
        if kept:
            return Select(pushed, conjoin(_sorted_conjuncts(kept)))
        return pushed


class CollapseLimits(Strategy):
    """``Limit`` over ``Limit``/``TopN`` folds into one operator with
    the composed offset and the tighter effective limit."""

    name = "collapse_limits"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not isinstance(node, Limit):
            return None
        child = node.child
        if isinstance(child, (Limit, TopN)):
            available = max(child.limit - node.offset, 0)
            limit = min(available, node.limit)
            offset = child.offset + node.offset
            if isinstance(child, Limit):
                return Limit(child.child, limit, offset)
            if limit > 0:
                return TopN(child.child, child.sort_keys, limit, offset)
            return Limit(child.child, 0)  # provably empty: drop the sort
        return None


class FuseLimitSort(Strategy):
    """``Limit(Sort)`` is the paper's ``topN`` written longhand; fuse
    it so builder plans meet SQL ``ORDER BY ... LIMIT`` plans in the
    graph.  Safe byte-for-byte: ``TopNOp`` ranks with the same stable
    ``lexsort`` as ``SortOp``."""

    name = "fuse_limit_sort"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not (isinstance(node, Limit) and isinstance(node.child,
                                                       Sort)):
            return None
        if node.limit <= 0:
            return Limit(node.child.child, 0)  # empty: drop the sort
        return TopN(node.child.child, node.child.sort_keys, node.limit,
                    node.offset)


class OrderJoinKeys(Strategy):
    """Multi-key equi-joins are AND-commutative in their key pairs;
    sort the ``(left, right)`` pairs so key order never splits a
    fingerprint.  (Children are not swapped — output schema is
    ``left ++ right``.)"""

    name = "order_join_keys"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not isinstance(node, Join) or len(node.left_keys) < 2:
            return None
        pairs = list(zip(node.left_keys, node.right_keys))
        ordered = sorted(pairs)
        if ordered == pairs:
            return None
        return Join(node.left, node.right, node.kind,
                    [lk for lk, _ in ordered], [rk for _, rk in ordered],
                    node.extra)


class OrderUnionInputs(Strategy):
    """``UNION ALL`` inputs with *identical* output schemas (names and
    types — names come from child 0, so anything else would relabel
    columns) are sorted by fingerprint.  Row order changes, but
    deterministically and identically for every query in the
    equivalence class, which is what result reuse requires."""

    name = "order_union_inputs"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not isinstance(node, UnionAll):
            return None
        schemas = [c.output_schema(ctx.catalog) for c in node.children]
        first = schemas[0]
        if any(s.names != first.names or s.types != first.types
               for s in schemas[1:]):
            return None
        keyed = [(repr(plan_fingerprint(c)), i, c)
                 for i, c in enumerate(node.children)]
        ordered = sorted(keyed)
        if [i for _, i, _ in ordered] == list(range(len(keyed))):
            return None
        return UnionAll([c for _, _, c in ordered])


class SplitSargableSelect(Strategy):
    """The inverse of :class:`MergeSelects`, applied once as a final
    pass: over a leaf, separate sargable conjuncts (column-vs-literal
    ranges/equalities/IN — what ``expr.analysis`` can profile) from
    residual ones (LIKE, OR, functions, multi-column).  Queries sharing
    the range part but differing in the residual share the inner graph
    node, and the subsumption index sees a pure-range ``Select``."""

    name = "split_sargable_select"

    def apply(self, node: PlanNode,
              ctx: OptimizeContext) -> PlanNode | None:
        if not (isinstance(node, Select)
                and isinstance(node.child, (Scan, TableFunctionScan))):
            return None
        conjuncts = split_conjuncts(node.predicate)
        sargable = [c for c in conjuncts if is_sargable_conjunct(c)]
        residual = [c for c in conjuncts if not is_sargable_conjunct(c)]
        if not sargable or not residual:
            return None
        inner = Select(node.child,
                       conjoin(_sorted_conjuncts(sargable)))
        return Select(inner, conjoin(_sorted_conjuncts(residual)))


#: fixpoint strategies, in application order per node.
DEFAULT_STRATEGIES: tuple[Strategy, ...] = (
    NormalizeLiterals(),
    MergeSelects(),
    ElideIdentityProject(),
    PushdownSelectProject(),
    PushdownSelectJoin(),
    CollapseLimits(),
    FuseLimitSort(),
    OrderJoinKeys(),
    OrderUnionInputs(),
)

#: applied once, bottom-up, *after* the fixpoint: the split must not
#: fight the merge inside the loop.
FINAL_STRATEGIES: tuple[Strategy, ...] = (
    SplitSargableSelect(),
)


class PlanOptimizer:
    """Drive the strategies bottom-up to a fixpoint, then apply the
    final (non-confluent-with-merge) pass once.

    Stateless and thread-safe: all mutable state lives in the
    per-call :class:`OptimizeContext`.
    """

    #: whole-tree iterations; rewrites that surface new opportunities a
    #: level apart (pushdown -> merge) converge in 2-3, this is slack.
    MAX_PASSES = 8
    #: per-node strategy cycles within one pass.
    MAX_NODE_SPINS = 8

    def __init__(self, strategies: tuple[Strategy, ...] | None = None,
                 final_strategies: tuple[Strategy, ...] | None = None
                 ) -> None:
        self.strategies = strategies if strategies is not None \
            else DEFAULT_STRATEGIES
        self.final_strategies = final_strategies \
            if final_strategies is not None else FINAL_STRATEGIES

    def optimize(self, plan: PlanNode, catalog: CatalogView
                 ) -> tuple[PlanNode, Counter]:
        """Return ``(canonical plan, per-strategy rewrite counts)``.

        Untouched subtrees keep their identity (``is``), so a plan
        already in canonical form passes through unchanged.
        """
        ctx = OptimizeContext(catalog)
        current = self._order_scans(plan, ctx, order_visible=True)
        for _ in range(self.MAX_PASSES):
            rewritten = self._pass(current, ctx, self.strategies)
            if rewritten is current:
                break
            current = rewritten
        current = self._pass(current, ctx, self.final_strategies)
        return current, ctx.counts

    def _order_scans(self, node: PlanNode, ctx: OptimizeContext,
                     order_visible: bool) -> PlanNode:
        """Canonicalize scan column order to base-table order wherever
        the order is not visible in the plan's root schema.

        Matching keys scans on their *ordered* column tuple (the
        positional output pairing above requires it — see
        ``recycler.matching._output_mapping``), so ``scan(t [k, g])``
        and ``scan(t [g, k])`` are different graph leaves as bound.
        Every operator that consumes columns does so *by name*; only a
        pure pass-through chain up to the root makes scan order
        observable.  Below a ``Project``/``Aggregate`` the order is
        free, and one canonical spelling shares one subtree.  Run
        top-down once: no fixpoint strategy introduces or reorders
        scans.  ``UnionAll`` children must stay schema-aligned, so they
        are conservatively treated as order-visible.
        """
        if isinstance(node, Scan):
            if order_visible:
                return node
            base = ctx.catalog.table_entry(node.table).table.schema.names
            wanted = set(node.columns)
            ordered = [name for name in base if name in wanted]
            if ordered == node.columns:
                return node
            ctx.counts["order_scan_columns"] += 1
            return Scan(node.table, ordered)
        if not node.children:
            return node
        if isinstance(node, UnionAll):
            child_visible = True
        else:
            child_visible = order_visible and not node.defines_output_order
        new_children = [self._order_scans(c, ctx, child_visible)
                        for c in node.children]
        if all(new is old for new, old in
               zip(new_children, node.children)):
            return node
        return node.with_children(new_children)

    def _pass(self, node: PlanNode, ctx: OptimizeContext,
              strategies: tuple[Strategy, ...]) -> PlanNode:
        new_children = [self._pass(c, ctx, strategies)
                        for c in node.children]
        if any(new is not old for new, old in
               zip(new_children, node.children)):
            node = node.with_children(new_children)
        for _ in range(self.MAX_NODE_SPINS):
            progressed = False
            for strategy in strategies:
                replacement = strategy.apply(node, ctx)
                if replacement is not None:
                    ctx.counts[strategy.name] += 1
                    node = replacement
                    progressed = True
            if not progressed:
                break
        return node
