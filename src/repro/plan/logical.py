"""Logical query plans.

A plan is a tree of :class:`PlanNode`.  The recycler graph stores *copies*
of these nodes (with graph-unique column names), so every node supports:

* ``params_key(mapping)`` — a canonical, hashable identity of the operator
  *parameters* with input column names translated through a query->graph
  name mapping and **assigned output names excluded** (two queries that
  alias the same aggregate differently must still match; the paper's name
  mapping then records alias -> graph-name pairs);
* ``assigned_names()`` — output names this node newly introduces, in a
  canonical order (positionally matched against a graph node's assigned
  names to extend the mapping);
* ``hashkey()`` — a coarse, mapping-independent key used to index matching
  candidates (paper Section III-A);
* ``signature()`` — a 64-bit column bitmask used to prune candidates;
* ``remapped(input_mapping, assigned_mapping)`` — the copy the graph keeps.

Output schemas are resolved lazily against a catalog via
:func:`output_schema`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..columnar.catalog import Catalog
from ..columnar.table import Schema
from ..errors import PlanError
from ..expr.nodes import AggSpec, Col, Expr

NameMapping = Mapping[str, str]


def _sig_bit(name: str) -> int:
    # Stable across processes (hash() is salted; use a simple FNV-1a).
    h = 2166136261
    for ch in name.encode():
        h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
    return 1 << (h % 64)


def signature_of(names: Sequence[str]) -> int:
    """Column-set bitmask (paper: one bit per column)."""
    sig = 0
    for name in names:
        sig |= _sig_bit(name)
    return sig


class PlanNode:
    """Base class for logical operators."""

    op_name = "abstract"

    #: True when ``params_key`` pins the node's output column order
    #: (Project/Aggregate list their outputs explicitly).  False for
    #: pass-through operators whose output order is inherited from the
    #: child — for those, positional output pairing during matching is
    #: unsound (a scan leaf matches with its column set *unordered*, so
    #: two matched pass-through nodes may emit the same columns in
    #: different orders) and names must be mapped through the child
    #: mapping instead.
    defines_output_order = False

    def __init__(self, children: Sequence["PlanNode"]) -> None:
        self.children: list[PlanNode] = list(children)
        self._schema_cache: Schema | None = None

    # -- structural interface -------------------------------------------
    def output_schema(self, catalog: Catalog) -> Schema:
        """The node's output schema (memoized).

        Plan nodes are structurally immutable once built, and a plan is
        bound against one catalog, so the schema is computed once; deep
        plans would otherwise pay O(depth^2) recomputation during
        matching and validation.
        """
        if self._schema_cache is None:
            self._schema_cache = self._compute_schema(catalog)
        return self._schema_cache

    def _compute_schema(self, catalog: Catalog) -> Schema:
        raise NotImplementedError

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        raise NotImplementedError

    def assigned_names(self) -> list[str]:
        """Output names newly introduced by this node (canonical order)."""
        return []

    def input_columns(self) -> frozenset[str]:
        """Input column names this node's parameters reference."""
        return frozenset()

    def hashkey(self) -> tuple:
        """Coarse mapping-independent candidate-index key."""
        return (self.op_name, len(self.children))

    def signature(self, mapping: NameMapping | None = None) -> int:
        mapping = mapping or {}
        return signature_of([mapping.get(c, c)
                             for c in self.input_columns()])

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence["PlanNode"]) -> "PlanNode":
        """Copy with inputs renamed and assigned outputs renamed."""
        raise NotImplementedError

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Copy with replaced children, parameters unchanged."""
        return self.remapped({}, {}, children)

    # -- traversal helpers ----------------------------------------------
    def walk(self):
        """Yield every node, children before parents (post-order)."""
        for child in self.children:
            yield from child.walk()
        yield self

    def count_nodes(self) -> int:
        return sum(1 for _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return render_plan(self)


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------
class Scan(PlanNode):
    """A base-table scan projecting a fixed column subset."""

    op_name = "scan"

    def __init__(self, table: str, columns: Sequence[str]) -> None:
        super().__init__([])
        if not columns:
            raise PlanError(f"scan of {table!r} must name columns")
        self.table = table.lower()
        self.columns = list(columns)

    def _compute_schema(self, catalog: Catalog) -> Schema:
        base = catalog.table_entry(self.table).table.schema
        return base.select(self.columns)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        # Base-table column names are shared vocabulary between query and
        # graph; no mapping applies to a leaf (paper: leaves create the
        # initial mapping).  Column ORDER is part of the key: matching
        # pairs output names positionally, so two scans may only unify
        # when they emit identical columns in identical order.  The plan
        # optimizer canonicalizes scan order wherever it is not visible
        # in the root schema, so equivalent spellings still share.
        return ("scan", self.table, tuple(self.columns))

    def input_columns(self) -> frozenset[str]:
        return frozenset(self.columns)

    def hashkey(self) -> tuple:
        return ("scan", self.table)

    def signature(self, mapping: NameMapping | None = None) -> int:
        return signature_of(self.columns)

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Scan":
        return Scan(self.table, self.columns)


class TableFunctionScan(PlanNode):
    """A leaf produced by a catalog-registered table function."""

    op_name = "table_function"

    def __init__(self, function: str, args: Sequence[object]) -> None:
        super().__init__([])
        self.function = function.lower()
        self.args = tuple(args)

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return catalog.function_entry(self.function).schema

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("table_function", self.function, self.args)

    def hashkey(self) -> tuple:
        return ("table_function", self.function)

    def signature(self, mapping: NameMapping | None = None) -> int:
        return signature_of([self.function])

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "TableFunctionScan":
        return TableFunctionScan(self.function, self.args)


# ----------------------------------------------------------------------
# unary operators
# ----------------------------------------------------------------------
class Select(PlanNode):
    """Filter rows by a boolean predicate."""

    op_name = "select"

    def __init__(self, child: PlanNode, predicate: Expr) -> None:
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("select", self.predicate.key(mapping))

    def input_columns(self) -> frozenset[str]:
        return self.predicate.columns()

    def hashkey(self) -> tuple:
        return ("select", self.predicate.skeleton())

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Select":
        return Select(children[0], self.predicate.rename(input_mapping))


class Project(PlanNode):
    """Compute named output expressions (projection + derivation)."""

    op_name = "project"
    defines_output_order = True

    def __init__(self, child: PlanNode,
                 outputs: Sequence[tuple[str, Expr]]) -> None:
        super().__init__([child])
        if not outputs:
            raise PlanError("projection must produce at least one column")
        names = [n for n, _ in outputs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate projection names: {names}")
        self.outputs = [(n, e) for n, e in outputs]

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        return Schema([n for n, _ in self.outputs],
                      [e.dtype(child_schema) for _, e in self.outputs])

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("project", tuple(e.key(mapping) for _, e in self.outputs))

    def assigned_names(self) -> list[str]:
        return [n for n, e in self.outputs
                if not (isinstance(e, Col) and e.name == n)]

    def input_columns(self) -> frozenset[str]:
        out: set[str] = set()
        for _, e in self.outputs:
            out |= e.columns()
        return frozenset(out)

    def hashkey(self) -> tuple:
        return ("project", tuple(e.skeleton() for _, e in self.outputs))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Project":
        outputs = []
        for name, expr in self.outputs:
            is_passthrough = isinstance(expr, Col) and expr.name == name
            new_expr = expr.rename(input_mapping)
            if is_passthrough:
                new_name = input_mapping.get(name, name)
            else:
                new_name = assigned_mapping.get(name, name)
            outputs.append((new_name, new_expr))
        return Project(children[0], outputs)


class Aggregate(PlanNode):
    """Hash GROUP BY with a list of aggregates.

    ``group_keys`` is a list of ``(output_name, expression)`` pairs so that
    grouping by computed expressions (``year(o_orderdate)``) is first-class
    — the proactive binning rule depends on that.
    """

    op_name = "aggregate"
    defines_output_order = True

    def __init__(self, child: PlanNode,
                 group_keys: Sequence[tuple[str, Expr]],
                 aggregates: Sequence[AggSpec]) -> None:
        super().__init__([child])
        names = [n for n, _ in group_keys] + [a.name for a in aggregates]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate aggregate output names: {names}")
        if not aggregates and not group_keys:
            raise PlanError("aggregate must group or aggregate something")
        self.group_keys = [(n, e) for n, e in group_keys]
        self.aggregates = list(aggregates)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        names = [n for n, _ in self.group_keys]
        dtypes = [e.dtype(child_schema) for _, e in self.group_keys]
        for agg in self.aggregates:
            names.append(agg.name)
            dtypes.append(agg.dtype(child_schema))
        return Schema(names, dtypes)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("aggregate",
                tuple(e.key(mapping) for _, e in self.group_keys),
                tuple(a.key(mapping) for a in self.aggregates))

    def assigned_names(self) -> list[str]:
        new = [n for n, e in self.group_keys
               if not (isinstance(e, Col) and e.name == n)]
        new.extend(a.name for a in self.aggregates)
        return new

    def input_columns(self) -> frozenset[str]:
        out: set[str] = set()
        for _, e in self.group_keys:
            out |= e.columns()
        for a in self.aggregates:
            if a.arg is not None:
                out |= a.arg.columns()
        return frozenset(out)

    def hashkey(self) -> tuple:
        return ("aggregate", len(self.group_keys),
                tuple(a.func for a in self.aggregates))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Aggregate":
        group_keys = []
        for name, expr in self.group_keys:
            is_passthrough = isinstance(expr, Col) and expr.name == name
            new_expr = expr.rename(input_mapping)
            if is_passthrough:
                new_name = input_mapping.get(name, name)
            else:
                new_name = assigned_mapping.get(name, name)
            group_keys.append((new_name, new_expr))
        aggregates = [
            AggSpec(a.func,
                    a.arg.rename(input_mapping) if a.arg is not None else
                    None,
                    assigned_mapping.get(a.name, a.name))
            for a in self.aggregates
        ]
        return Aggregate(children[0], group_keys, aggregates)


class TopN(PlanNode):
    """Heap-based ORDER BY ... LIMIT N (paper's ``topN`` operator)."""

    op_name = "topn"

    def __init__(self, child: PlanNode,
                 sort_keys: Sequence[tuple[str, bool]],
                 limit: int, offset: int = 0) -> None:
        super().__init__([child])
        if limit <= 0:
            raise PlanError("topN limit must be positive")
        if offset < 0:
            raise PlanError("topN offset must be non-negative")
        self.sort_keys = [(c, bool(asc)) for c, asc in sort_keys]
        self.limit = int(limit)
        self.offset = int(offset)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        mapping = mapping or {}
        return ("topn",
                tuple((mapping.get(c, c), asc) for c, asc in self.sort_keys),
                self.limit, self.offset)

    def input_columns(self) -> frozenset[str]:
        return frozenset(c for c, _ in self.sort_keys)

    def hashkey(self) -> tuple:
        return ("topn", len(self.sort_keys), self.limit, self.offset)

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "TopN":
        keys = [(input_mapping.get(c, c), asc) for c, asc in self.sort_keys]
        return TopN(children[0], keys, self.limit, self.offset)


class Sort(PlanNode):
    """Full sort (blocking)."""

    op_name = "sort"

    def __init__(self, child: PlanNode,
                 sort_keys: Sequence[tuple[str, bool]]) -> None:
        super().__init__([child])
        if not sort_keys:
            raise PlanError("sort requires at least one key")
        self.sort_keys = [(c, bool(asc)) for c, asc in sort_keys]

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        mapping = mapping or {}
        return ("sort",
                tuple((mapping.get(c, c), asc) for c, asc in self.sort_keys))

    def input_columns(self) -> frozenset[str]:
        return frozenset(c for c, _ in self.sort_keys)

    def hashkey(self) -> tuple:
        return ("sort", len(self.sort_keys))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Sort":
        keys = [(input_mapping.get(c, c), asc) for c, asc in self.sort_keys]
        return Sort(children[0], keys)


class Limit(PlanNode):
    """LIMIT / OFFSET without ordering."""

    op_name = "limit"

    def __init__(self, child: PlanNode, limit: int, offset: int = 0) -> None:
        super().__init__([child])
        if limit < 0 or offset < 0:
            raise PlanError("limit/offset must be non-negative")
        self.limit = int(limit)
        self.offset = int(offset)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("limit", self.limit, self.offset)

    def hashkey(self) -> tuple:
        return ("limit", self.limit, self.offset)

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Limit":
        return Limit(children[0], self.limit, self.offset)


class Distinct(PlanNode):
    """Duplicate elimination over all columns."""

    op_name = "distinct"

    def __init__(self, child: PlanNode) -> None:
        super().__init__([child])

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("distinct",)

    def hashkey(self) -> tuple:
        return ("distinct",)

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Distinct":
        return Distinct(children[0])


# ----------------------------------------------------------------------
# binary / n-ary operators
# ----------------------------------------------------------------------
JOIN_KINDS = ("inner", "left", "right", "full", "semi", "anti")


class Join(PlanNode):
    """Hash join on key-column equality, with an optional extra predicate.

    Output columns are ``left ++ right`` for inner/left/right/full joins
    and just the left side for semi/anti joins.  The binder guarantees
    disjoint names.  The engine has no NULLs: the non-preserved side of
    an outer join pads with type defaults (0, 0.0, empty string).
    """

    op_name = "join"

    def __init__(self, left: PlanNode, right: PlanNode, kind: str,
                 left_keys: Sequence[str], right_keys: Sequence[str],
                 extra: Expr | None = None) -> None:
        super().__init__([left, right])
        if kind not in JOIN_KINDS:
            raise PlanError(f"unknown join kind {kind!r}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join needs equal, non-empty key lists")
        self.kind = kind
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.extra = extra

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def _compute_schema(self, catalog: Catalog) -> Schema:
        left_schema = self.left.output_schema(catalog)
        if self.kind in ("semi", "anti"):
            return left_schema
        right_schema = self.right.output_schema(catalog)
        return left_schema.concat(right_schema)

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        mapping = mapping or {}
        extra_key = self.extra.key(mapping) if self.extra is not None else ()
        return ("join", self.kind,
                tuple(mapping.get(c, c) for c in self.left_keys),
                tuple(mapping.get(c, c) for c in self.right_keys),
                extra_key)

    def input_columns(self) -> frozenset[str]:
        cols = set(self.left_keys) | set(self.right_keys)
        if self.extra is not None:
            cols |= self.extra.columns()
        return frozenset(cols)

    def hashkey(self) -> tuple:
        return ("join", self.kind, len(self.left_keys))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "Join":
        extra = self.extra.rename(input_mapping) \
            if self.extra is not None else None
        return Join(children[0], children[1], self.kind,
                    [input_mapping.get(c, c) for c in self.left_keys],
                    [input_mapping.get(c, c) for c in self.right_keys],
                    extra)


class UnionAll(PlanNode):
    """Bag union of same-arity inputs; output names come from child 0."""

    op_name = "union_all"

    def __init__(self, children: Sequence[PlanNode]) -> None:
        super().__init__(children)
        if len(children) < 2:
            raise PlanError("UNION ALL requires at least two inputs")

    def _compute_schema(self, catalog: Catalog) -> Schema:
        first = self.children[0].output_schema(catalog)
        for child in self.children[1:]:
            other = child.output_schema(catalog)
            if other.types != first.types:
                raise PlanError(
                    f"UNION ALL type mismatch: {first!r} vs {other!r}")
        return first

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("union_all", len(self.children))

    def hashkey(self) -> tuple:
        return ("union_all", len(self.children))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "UnionAll":
        return UnionAll(list(children))


class CachedScan(PlanNode):
    """A leaf that streams an already-cached (recycled) result.

    Produced by the recycler's rewriter when it substitutes a matched
    subtree with its cached result; never inserted into the recycler graph.
    ``handle`` is any object with a ``table`` attribute; ``rename`` maps
    cached (graph) column names to this query's column names.
    """

    op_name = "cached_scan"

    def __init__(self, handle, schema: Schema,
                 rename: Mapping[str, str] | None = None,
                 label: str = "") -> None:
        super().__init__([])
        self.handle = handle
        self.schema = schema
        self.rename = dict(rename or {})
        self.label = label

    def _compute_schema(self, catalog: Catalog) -> Schema:
        return self.schema

    def params_key(self, mapping: NameMapping | None = None) -> tuple:
        return ("cached_scan", id(self.handle), tuple(self.schema.names))

    def hashkey(self) -> tuple:
        return ("cached_scan", id(self.handle))

    def remapped(self, input_mapping: NameMapping,
                 assigned_mapping: NameMapping,
                 children: Sequence[PlanNode]) -> "CachedScan":
        return CachedScan(self.handle, self.schema, self.rename, self.label)


# ----------------------------------------------------------------------
# utilities
# ----------------------------------------------------------------------
def render_plan(node: PlanNode, indent: int = 0) -> str:
    """Human-readable plan tree (for logs, docs and tests)."""
    pad = "  " * indent
    label = node.op_name
    if isinstance(node, Scan):
        label += f"({node.table} [{', '.join(node.columns)}])"
    elif isinstance(node, TableFunctionScan):
        label += f"({node.function}{node.args})"
    elif isinstance(node, Select):
        label += f"({node.predicate!r})"
    elif isinstance(node, Project):
        label += "(" + ", ".join(f"{n}={e!r}" for n, e in node.outputs) + ")"
    elif isinstance(node, Aggregate):
        keys = ", ".join(f"{n}={e!r}" for n, e in node.group_keys)
        aggs = ", ".join(repr(a) for a in node.aggregates)
        label += f"(keys=[{keys}] aggs=[{aggs}])"
    elif isinstance(node, Join):
        label += (f"({node.kind} {node.left_keys}={node.right_keys}"
                  + (f" extra={node.extra!r}" if node.extra else "") + ")")
    elif isinstance(node, (TopN, Sort)):
        label += f"({node.sort_keys}"
        if isinstance(node, TopN):
            label += f" limit={node.limit} offset={node.offset}"
        label += ")"
    elif isinstance(node, Limit):
        label += f"({node.limit} offset={node.offset})"
    lines = [pad + label]
    for child in node.children:
        lines.append(render_plan(child, indent + 1))
    return "\n".join(lines)


def plan_fingerprint(node: PlanNode) -> tuple:
    """A canonical key for a whole subtree (params + structure).

    This is what the operator-at-a-time baseline recycler matches on, and
    what tests use to assert structural equality of plans.  Note that —
    unlike recycler-graph matching — it does *not* unify differing column
    aliases across queries.
    """
    return (node.params_key(None),
            tuple(plan_fingerprint(c) for c in node.children))


def map_plan(node: PlanNode,
             fn: Callable[[PlanNode, list[PlanNode]], PlanNode]) -> PlanNode:
    """Bottom-up structural rewrite: ``fn(node, new_children)`` per node."""
    new_children = [map_plan(c, fn) for c in node.children]
    return fn(node, new_children)


def schema_of(node: PlanNode, catalog: Catalog) -> Schema:
    """Alias for ``node.output_schema`` that reads better at call sites."""
    return node.output_schema(catalog)
