"""Logical plans and the fluent builder."""

from .builder import Q, q
from .logical import (Aggregate, Distinct, JOIN_KINDS, Join, Limit, PlanNode,
                      Project, Scan, Select, Sort, TableFunctionScan, TopN,
                      UnionAll, map_plan, plan_fingerprint, render_plan,
                      signature_of)
from .optimizer import PlanOptimizer
from .validate import validate_plan

__all__ = [
    "Aggregate", "Distinct", "JOIN_KINDS", "Join", "Limit", "PlanNode",
    "PlanOptimizer", "Project", "Q", "Scan", "Select", "Sort",
    "TableFunctionScan", "TopN", "UnionAll", "map_plan",
    "plan_fingerprint", "q", "render_plan", "signature_of",
    "validate_plan",
]
