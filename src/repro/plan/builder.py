"""Fluent plan builder — the library's primary programmatic query API.

Example::

    from repro.plan import q
    from repro.expr import Col, Lit

    plan = (q.scan("lineitem", ["l_returnflag", "l_quantity", "l_shipdate"])
             .filter(Cmp("<=", Col("l_shipdate"), Lit.date("1998-09-02")))
             .aggregate(keys=["l_returnflag"],
                        aggs=[("sum", Col("l_quantity"), "sum_qty")])
             .build())
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PlanError
from ..expr.nodes import AggSpec, Col, Expr
from .logical import (Aggregate, Distinct, Join, Limit, PlanNode, Project,
                      Scan, Select, Sort, TableFunctionScan, TopN, UnionAll)


class Q:
    """A wrapped plan node with chainable operator constructors."""

    __slots__ = ("node",)

    def __init__(self, node: PlanNode) -> None:
        self.node = node

    # -- leaves (classmethod-style entry points live on module `q`) -----
    def filter(self, predicate: Expr) -> "Q":
        return Q(Select(self.node, predicate))

    def project(self, outputs: Sequence[tuple[str, Expr] | str]) -> "Q":
        """Projection; plain strings are pass-through column references."""
        normalized: list[tuple[str, Expr]] = []
        for out in outputs:
            if isinstance(out, str):
                normalized.append((out, Col(out)))
            else:
                name, expr = out
                normalized.append((name, expr))
        return Q(Project(self.node, normalized))

    def aggregate(self, keys: Sequence[tuple[str, Expr] | str],
                  aggs: Sequence[tuple[str, Expr | None, str] | AggSpec],
                  ) -> "Q":
        """GROUP BY.  ``keys`` as in :meth:`project`; ``aggs`` are
        ``(func, arg_expr, output_name)`` triples or :class:`AggSpec`s."""
        group_keys: list[tuple[str, Expr]] = []
        for key in keys:
            if isinstance(key, str):
                group_keys.append((key, Col(key)))
            else:
                group_keys.append(key)
        specs: list[AggSpec] = []
        for agg in aggs:
            if isinstance(agg, AggSpec):
                specs.append(agg)
            else:
                func, arg, name = agg
                specs.append(AggSpec(func, arg, name))
        return Q(Aggregate(self.node, group_keys, specs))

    def join(self, other: "Q | PlanNode", on: Sequence[tuple[str, str]],
             kind: str = "inner", extra: Expr | None = None) -> "Q":
        right = other.node if isinstance(other, Q) else other
        left_keys = [l for l, _ in on]
        right_keys = [r for _, r in on]
        return Q(Join(self.node, right, kind, left_keys, right_keys, extra))

    def semi_join(self, other: "Q | PlanNode",
                  on: Sequence[tuple[str, str]],
                  extra: Expr | None = None) -> "Q":
        return self.join(other, on, kind="semi", extra=extra)

    def anti_join(self, other: "Q | PlanNode",
                  on: Sequence[tuple[str, str]],
                  extra: Expr | None = None) -> "Q":
        return self.join(other, on, kind="anti", extra=extra)

    def top_n(self, sort_keys: Sequence[tuple[str, bool] | str],
              limit: int, offset: int = 0) -> "Q":
        keys = [(k, True) if isinstance(k, str) else k for k in sort_keys]
        return Q(TopN(self.node, keys, limit, offset))

    def sort(self, sort_keys: Sequence[tuple[str, bool] | str]) -> "Q":
        keys = [(k, True) if isinstance(k, str) else k for k in sort_keys]
        return Q(Sort(self.node, keys))

    def limit(self, limit: int, offset: int = 0) -> "Q":
        return Q(Limit(self.node, limit, offset))

    def distinct(self) -> "Q":
        return Q(Distinct(self.node))

    def union_all(self, *others: "Q | PlanNode") -> "Q":
        children = [self.node]
        children.extend(o.node if isinstance(o, Q) else o for o in others)
        return Q(UnionAll(children))

    def build(self) -> PlanNode:
        return self.node


class _BuilderModule:
    """Entry points: ``q.scan(...)``, ``q.table_function(...)``."""

    @staticmethod
    def scan(table: str, columns: Sequence[str]) -> Q:
        return Q(Scan(table, columns))

    @staticmethod
    def table_function(name: str, args: Sequence[object]) -> Q:
        return Q(TableFunctionScan(name, args))

    @staticmethod
    def wrap(node: PlanNode) -> Q:
        if not isinstance(node, PlanNode):
            raise PlanError(f"cannot wrap {node!r} as a plan")
        return Q(node)


q = _BuilderModule()
