"""Plan validation: resolve every schema and check column references.

``validate_plan`` walks the tree bottom-up, computing each node's output
schema (which already raises on unknown columns) and additionally checking
that parameter column references exist in child outputs and that join
outputs do not collide.  Called by the facade before execution so that
malformed plans fail with a clear error instead of deep inside an operator.
"""

from __future__ import annotations

from ..columnar.catalog import Catalog
from ..columnar.table import Schema
from ..errors import PlanError
from .logical import (Aggregate, Join, PlanNode, Project, Select, Sort,
                      TopN, UnionAll)


def validate_plan(plan: PlanNode, catalog: Catalog) -> Schema:
    """Validate the whole tree; returns the root output schema."""
    for node in plan.walk():
        _validate_node(node, catalog)
    return plan.output_schema(catalog)


def _validate_node(node: PlanNode, catalog: Catalog) -> None:
    child_schemas = [c.output_schema(catalog) for c in node.children]

    if isinstance(node, (Select, Project, Aggregate)):
        available = set(child_schemas[0].names)
        missing = sorted(node.input_columns() - available)
        if missing:
            raise PlanError(
                f"{node.op_name} references missing columns {missing};"
                f" child provides {sorted(available)}")
    elif isinstance(node, (TopN, Sort)):
        available = set(child_schemas[0].names)
        missing = sorted({c for c, _ in node.sort_keys} - available)
        if missing:
            raise PlanError(
                f"{node.op_name} sorts on missing columns {missing}")
    elif isinstance(node, Join):
        left, right = child_schemas
        missing_left = sorted(set(node.left_keys) - set(left.names))
        missing_right = sorted(set(node.right_keys) - set(right.names))
        if missing_left or missing_right:
            raise PlanError(
                f"join keys missing: left={missing_left}"
                f" right={missing_right}")
        if node.kind in ("inner", "left"):
            overlap = sorted(set(left.names) & set(right.names))
            if overlap:
                raise PlanError(
                    f"join output name collision on {overlap};"
                    " rename one side first")
        if node.extra is not None:
            available = set(left.names)
            if node.kind in ("inner", "left"):
                available |= set(right.names)
            else:
                available |= set(right.names)  # extra may probe build side
            missing = sorted(node.extra.columns() - available)
            if missing:
                raise PlanError(
                    f"join extra predicate references missing {missing}")
    elif isinstance(node, UnionAll):
        node.output_schema(catalog)  # raises on type mismatch

    # Finally force schema resolution of the node itself (type checks).
    node.output_schema(catalog)
