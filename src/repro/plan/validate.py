"""Plan validation: resolve every schema and check column references.

``validate_plan`` walks the tree bottom-up, computing each node's output
schema (which already raises on unknown columns) and additionally checking
that parameter column references exist in child outputs and that join
outputs do not collide.  Called by the facade before execution so that
malformed plans fail with a clear error instead of deep inside an operator.

The ``catalog`` argument is the query's pinned
:class:`~repro.columnar.catalog.CatalogSnapshot` (the facades pass one;
a live :class:`~repro.columnar.catalog.Catalog` also works).  Because a
node's output schema is memoized against the catalog it was *first*
resolved with, every scanned table and called function is re-resolved
here explicitly — a prebuilt plan whose table was dropped or replaced
since fails at validation time with a clear
:class:`~repro.errors.CatalogError` instead of deep inside compilation.
"""

from __future__ import annotations

from ..columnar.catalog import CatalogView
from ..columnar.table import Schema
from ..errors import PlanError
from .logical import (Aggregate, Join, PlanNode, Project, Scan, Select,
                      Sort, TableFunctionScan, TopN, UnionAll)


def validate_plan(plan: PlanNode, catalog: CatalogView) -> Schema:
    """Validate the whole tree; returns the root output schema."""
    for node in plan.walk():
        _validate_node(node, catalog)
    return plan.output_schema(catalog)


def _validate_node(node: PlanNode, catalog: CatalogView) -> None:
    # Leaves re-resolve against the (snapshot) catalog even when their
    # schema is memoized: existence and types are what DDL can change,
    # and a stale memoized schema must not slip past validation.
    if isinstance(node, Scan):
        entry = catalog.table_entry(node.table)
        missing = sorted(set(node.columns)
                         - set(entry.table.schema.names))
        if missing:
            raise PlanError(
                f"scan of {node.table!r} references missing columns"
                f" {missing}")
        live = entry.table.schema.select(node.columns)
        if node.output_schema(catalog) != live:
            raise PlanError(
                f"scan of {node.table!r} was bound against a different"
                f" incarnation of the table (schema"
                f" {node.output_schema(catalog)!r}, now {live!r});"
                f" rebuild the plan")
    elif isinstance(node, TableFunctionScan):
        entry = catalog.function_entry(node.function)
        if node.output_schema(catalog) != entry.schema:
            raise PlanError(
                f"table function {node.function!r} was re-registered"
                f" with a different schema since this plan was bound;"
                f" rebuild the plan")
    child_schemas = [c.output_schema(catalog) for c in node.children]

    if isinstance(node, (Select, Project, Aggregate)):
        available = set(child_schemas[0].names)
        missing = sorted(node.input_columns() - available)
        if missing:
            raise PlanError(
                f"{node.op_name} references missing columns {missing};"
                f" child provides {sorted(available)}")
    elif isinstance(node, (TopN, Sort)):
        available = set(child_schemas[0].names)
        missing = sorted({c for c, _ in node.sort_keys} - available)
        if missing:
            raise PlanError(
                f"{node.op_name} sorts on missing columns {missing}")
    elif isinstance(node, Join):
        left, right = child_schemas
        missing_left = sorted(set(node.left_keys) - set(left.names))
        missing_right = sorted(set(node.right_keys) - set(right.names))
        if missing_left or missing_right:
            raise PlanError(
                f"join keys missing: left={missing_left}"
                f" right={missing_right}")
        if node.kind in ("inner", "left", "right", "full"):
            overlap = sorted(set(left.names) & set(right.names))
            if overlap:
                raise PlanError(
                    f"join output name collision on {overlap};"
                    " rename one side first")
        if node.extra is not None:
            available = set(left.names) | set(right.names)
            # (semi/anti emit only left columns, but the extra predicate
            # may still probe the build side)
            missing = sorted(node.extra.columns() - available)
            if missing:
                raise PlanError(
                    f"join extra predicate references missing {missing}")
    elif isinstance(node, UnionAll):
        node.output_schema(catalog)  # raises on type mismatch

    # Finally force schema resolution of the node itself (type checks).
    node.output_schema(catalog)
