"""Workload generators: TPC-H and SkyServer."""
