"""The 22 TPC-H query patterns, written in this repo's SQL subset.

Each pattern is a function ``qN(params) -> str``.  The translations are
structure-preserving: the join graph, selections, grouping and qgen
parameter positions of the spec queries are kept; nested EXISTS / IN /
correlated scalar subqueries — which the subset does not parse — are
expressed with their standard decorrelated equivalents (SEMI/ANTI JOIN,
grouped derived tables, single-row cross joins).  FROM lists start with
the largest table so the left-deep binder builds hash tables on the
smaller side.

Parameter dictionaries come from :mod:`repro.workloads.tpch.qgen`.
"""

from __future__ import annotations

import datetime as _dt

from ...columnar.types import date_to_days, days_to_iso


def _plus_months(iso: str, months: int) -> str:
    date = _dt.date.fromisoformat(iso)
    month_index = date.year * 12 + date.month - 1 + months
    return _dt.date(month_index // 12, month_index % 12 + 1,
                    date.day).isoformat()


def _plus_days(iso: str, days: int) -> str:
    return days_to_iso(date_to_days(iso) + days)


def q1(p: dict) -> str:
    cutoff = _plus_days("1998-12-01", -int(p["delta"]))
    return f"""
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= date '{cutoff}'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus"""


def q2(p: dict) -> str:
    return f"""
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone
FROM partsupp, part, supplier, nation, region,
     (SELECT ps_partkey AS m_partkey, min(ps_supplycost) AS m_cost
      FROM partsupp, supplier, nation, region
      WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
        AND n_regionkey = r_regionkey AND r_name = '{p["region"]}'
      GROUP BY ps_partkey) mincost
WHERE p_partkey = ps_partkey AND ps_suppkey = s_suppkey
  AND p_size = {p["size"]} AND p_type LIKE '%{p["type"]}'
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = '{p["region"]}'
  AND ps_partkey = m_partkey AND ps_supplycost = m_cost
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100"""


def q3(p: dict) -> str:
    return f"""
SELECT l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM lineitem, orders, customer
WHERE c_mktsegment = '{p["segment"]}' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < date '{p["date"]}'
  AND l_shipdate > date '{p["date"]}'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10"""


def q4(p: dict) -> str:
    start = p["date"]
    end = _plus_months(start, 3)
    return f"""
SELECT o_orderpriority, count(*) AS order_count
FROM orders
SEMI JOIN lineitem ON o_orderkey = l_orderkey
    AND l_commitdate < l_receiptdate
WHERE o_orderdate >= date '{start}' AND o_orderdate < date '{end}'
GROUP BY o_orderpriority
ORDER BY o_orderpriority"""


def q5(p: dict) -> str:
    year = int(p["year"])
    return f"""
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, orders, customer, supplier, nation, region
WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = '{p["region"]}'
  AND o_orderdate >= date '{year}-01-01'
  AND o_orderdate < date '{year + 1}-01-01'
GROUP BY n_name
ORDER BY revenue DESC"""


def q6(p: dict) -> str:
    year = int(p["year"])
    discount = float(p["discount"])
    return f"""
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= date '{year}-01-01'
  AND l_shipdate < date '{year + 1}-01-01'
  AND l_discount BETWEEN {discount - 0.01:.2f} AND {discount + 0.01:.2f}
  AND l_quantity < {p["quantity"]}"""


def q7(p: dict) -> str:
    return f"""
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
             year(l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM lineitem, orders, customer, supplier, nation n1, nation n2
      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey
        AND c_nationkey = n2.n_nationkey
        AND ((n1.n_name = '{p["nation1"]}' AND n2.n_name = '{p["nation2"]}')
             OR (n1.n_name = '{p["nation2"]}'
                 AND n2.n_name = '{p["nation1"]}'))
        AND l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31'
     ) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year"""


def q8(p: dict) -> str:
    return f"""
SELECT o_year,
       sum(CASE WHEN nation = '{p["nation"]}' THEN volume ELSE 0 END)
           / sum(volume) AS mkt_share
FROM (SELECT year(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM lineitem, part, supplier, orders, customer,
           nation n1, nation n2, region
      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
        AND l_orderkey = o_orderkey AND o_custkey = c_custkey
        AND c_nationkey = n1.n_nationkey
        AND n1.n_regionkey = r_regionkey AND r_name = '{p["region"]}'
        AND s_nationkey = n2.n_nationkey
        AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31'
        AND p_type = '{p["type"]}'
     ) all_nations
GROUP BY o_year
ORDER BY o_year"""


def q9(p: dict) -> str:
    return f"""
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (SELECT n_name AS nation, year(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount)
                 - ps_supplycost * l_quantity AS amount
      FROM lineitem, part, supplier, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
        AND p_name LIKE '%{p["color"]}%'
     ) profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC"""


def q10(p: dict) -> str:
    start = p["date"]
    end = _plus_months(start, 3)
    return f"""
SELECT c_custkey, c_name,
       sum(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM lineitem, orders, customer, nation
WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey
  AND o_orderdate >= date '{start}' AND o_orderdate < date '{end}'
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20"""


def q11(p: dict) -> str:
    return f"""
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation,
     (SELECT sum(ps_supplycost * ps_availqty) * {p["fraction"]}
             AS threshold
      FROM partsupp, supplier, nation
      WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
        AND n_name = '{p["nation"]}') t
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = '{p["nation"]}'
GROUP BY ps_partkey, threshold
HAVING sum(ps_supplycost * ps_availqty) > threshold
ORDER BY value DESC"""


def q12(p: dict) -> str:
    year = int(p["year"])
    return f"""
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT'
                     OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority <> '1-URGENT'
                     AND o_orderpriority <> '2-HIGH'
                THEN 1 ELSE 0 END) AS low_line_count
FROM lineitem, orders
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('{p["shipmode1"]}', '{p["shipmode2"]}')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= date '{year}-01-01'
  AND l_receiptdate < date '{year + 1}-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode"""


def q13(p: dict) -> str:
    return f"""
SELECT c_count, count(*) AS custdist
FROM (SELECT c_custkey,
             sum(CASE WHEN ok > 0 THEN 1 ELSE 0 END) AS c_count
      FROM customer
      LEFT JOIN (SELECT o_orderkey AS ok, o_custkey AS ock FROM orders
                 WHERE o_comment NOT LIKE '%{p["word1"]}%{p["word2"]}%'
                ) filtered
        ON c_custkey = ock
      GROUP BY c_custkey) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC"""


def q14(p: dict) -> str:
    start = p["date"]
    end = _plus_months(start, 1)
    return f"""
SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                         THEN l_extendedprice * (1 - l_discount)
                         ELSE 0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= date '{start}' AND l_shipdate < date '{end}'"""


def q15(p: dict) -> str:
    start = p["date"]
    end = _plus_months(start, 3)
    revenue = f"""SELECT l_suppkey AS supplier_no,
             sum(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= date '{start}' AND l_shipdate < date '{end}'
      GROUP BY l_suppkey"""
    return f"""
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier,
     ({revenue}) revenue0,
     (SELECT max(total_revenue) AS max_revenue
      FROM ({revenue}) revenue1) m
WHERE s_suppkey = supplier_no AND total_revenue = max_revenue
ORDER BY s_suppkey"""


def q16(p: dict) -> str:
    sizes = ", ".join(str(s) for s in p["sizes"])
    return f"""
SELECT p_brand, p_type, p_size,
       count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
ANTI JOIN (SELECT s_suppkey AS bad_supp FROM supplier
           WHERE s_comment LIKE '%Customer%Complaints%') bad
  ON ps_suppkey = bad_supp
WHERE p_partkey = ps_partkey AND p_brand <> '{p["brand"]}'
  AND p_type NOT LIKE '{p["type"]}%' AND p_size IN ({sizes})
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size"""


def q17(p: dict) -> str:
    return f"""
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part,
     (SELECT l_partkey AS a_partkey, 0.2 * avg(l_quantity) AS avg_qty
      FROM lineitem GROUP BY l_partkey) a
WHERE p_partkey = l_partkey AND p_brand = '{p["brand"]}'
  AND p_container = '{p["container"]}'
  AND a_partkey = l_partkey AND l_quantity < avg_qty"""


def q18(p: dict) -> str:
    return f"""
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS total_qty
FROM lineitem, orders, customer,
     (SELECT l_orderkey AS big_orderkey, sum(l_quantity) AS big_qty
      FROM lineitem GROUP BY l_orderkey
      HAVING sum(l_quantity) > {p["quantity"]}) big
WHERE o_orderkey = l_orderkey AND c_custkey = o_custkey
  AND big_orderkey = o_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100"""


def q19(p: dict) -> str:
    q1_, q2_, q3_ = int(p["qty1"]), int(p["qty2"]), int(p["qty3"])
    return f"""
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND ((p_brand = '{p["brand1"]}'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= {q1_} AND l_quantity <= {q1_ + 10}
        AND p_size BETWEEN 1 AND 5
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = '{p["brand2"]}'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= {q2_} AND l_quantity <= {q2_ + 10}
        AND p_size BETWEEN 1 AND 10
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON')
    OR (p_brand = '{p["brand3"]}'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= {q3_} AND l_quantity <= {q3_ + 10}
        AND p_size BETWEEN 1 AND 15
        AND l_shipmode IN ('AIR', 'REG AIR')
        AND l_shipinstruct = 'DELIVER IN PERSON'))"""


def q20(p: dict) -> str:
    year = int(p["year"])
    return f"""
SELECT s_name, s_address
FROM supplier, nation
SEMI JOIN (SELECT ps_suppkey AS excess_supp
           FROM partsupp,
                (SELECT l_partkey AS sh_partkey, l_suppkey AS sh_suppkey,
                        0.5 * sum(l_quantity) AS half_qty
                 FROM lineitem
                 WHERE l_shipdate >= date '{year}-01-01'
                   AND l_shipdate < date '{year + 1}-01-01'
                 GROUP BY l_partkey, l_suppkey) shipped
           SEMI JOIN (SELECT p_partkey AS cpart FROM part
                      WHERE p_name LIKE '{p["color"]}%') cparts
             ON ps_partkey = cpart
           WHERE ps_partkey = sh_partkey AND ps_suppkey = sh_suppkey
             AND ps_availqty > half_qty) ex
  ON s_suppkey = excess_supp
WHERE s_nationkey = n_nationkey AND n_name = '{p["nation"]}'
ORDER BY s_name"""


def q21(p: dict) -> str:
    return f"""
SELECT s_name, count(*) AS numwait
FROM lineitem l1, supplier, orders, nation
SEMI JOIN (SELECT l_orderkey AS l2_orderkey, l_suppkey AS l2_suppkey
           FROM lineitem) l2
  ON l2_orderkey = l_orderkey AND l2_suppkey <> l_suppkey
ANTI JOIN (SELECT l_orderkey AS l3_orderkey, l_suppkey AS l3_suppkey
           FROM lineitem
           WHERE l_receiptdate > l_commitdate) l3
  ON l3_orderkey = l_orderkey AND l3_suppkey <> l_suppkey
WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
  AND o_orderstatus = 'F' AND l_receiptdate > l_commitdate
  AND s_nationkey = n_nationkey AND n_name = '{p["nation"]}'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100"""


def q22(p: dict) -> str:
    codes = ", ".join(f"'{c}'" for c in p["codes"])
    return f"""
SELECT cntrycode, count(*) AS numcust, sum(acctbal) AS totacctbal
FROM (SELECT substr(c_phone, 1, 2) AS cntrycode, c_acctbal AS acctbal
      FROM customer,
           (SELECT avg(c_acctbal) AS avg_bal FROM customer
            WHERE c_acctbal > 0.00
              AND substr(c_phone, 1, 2) IN ({codes})) a
      ANTI JOIN orders ON o_custkey = c_custkey
      WHERE substr(c_phone, 1, 2) IN ({codes})
        AND c_acctbal > avg_bal) custsale
GROUP BY cntrycode
ORDER BY cntrycode"""


PATTERNS = {
    1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8, 9: q9,
    10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16,
    17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}

ALL_QUERY_IDS = sorted(PATTERNS)


def query_sql(number: int, params: dict) -> str:
    """SQL text of pattern ``number`` with ``params`` substituted."""
    return PATTERNS[number](params)
