"""Deterministic synthetic TPC-H data generator (dbgen substitute).

Generates all eight tables at a (fractional) scale factor with the spec's
value domains and referential structure, fully vectorized in numpy and
reproducible from a seed.  Absolute data realism (skew, comments) is
intentionally approximate — the recycling experiments only depend on the
schema, the parameter domains, and proportional sizes.
"""

from __future__ import annotations

import numpy as np

from ...columnar import Catalog, Table, date_to_days
from ...columnar.catalog import BinningSpec
from . import schema as s


def generate(scale_factor: float = 0.01,
             seed: int = 19920101) -> dict[str, Table]:
    """Generate all eight TPC-H tables."""
    counts = s.row_counts(scale_factor)
    rng = np.random.default_rng(seed)
    tables: dict[str, Table] = {}
    tables["region"] = _region()
    tables["nation"] = _nation()
    tables["supplier"] = _supplier(counts["supplier"], rng)
    tables["part"] = _part(counts["part"], rng)
    tables["partsupp"] = _partsupp(counts["part"], counts["supplier"],
                                   counts["partsupp"], rng)
    tables["customer"] = _customer(counts["customer"], rng)
    tables["orders"] = _orders(counts["orders"], counts["customer"], rng)
    tables["lineitem"] = _lineitem(tables["orders"], counts["part"],
                                   counts["supplier"], rng)
    return tables


def build_catalog(scale_factor: float = 0.01,
                  seed: int = 19920101) -> Catalog:
    """Generate and register everything, including the binning specs the
    proactive strategies use (dates binned by calendar year)."""
    catalog = Catalog()
    for name, table in generate(scale_factor, seed).items():
        catalog.register_table(name, table)
    catalog.register_binning("lineitem", BinningSpec("l_shipdate", "year"))
    catalog.register_binning("orders", BinningSpec("o_orderdate", "year"))
    return catalog


# ----------------------------------------------------------------------
# per-table generators
# ----------------------------------------------------------------------
def _strings(values: list[str], picks: np.ndarray) -> np.ndarray:
    pool = np.array(values, dtype=object)
    return pool[picks]


def _comments(rng: np.ndarray, n: int) -> np.ndarray:
    adjectives = _strings(s.COMMENT_ADJECTIVES,
                          rng.integers(0, len(s.COMMENT_ADJECTIVES), n))
    nouns = _strings(s.COMMENT_NOUNS,
                     rng.integers(0, len(s.COMMENT_NOUNS), n))
    out = np.empty(n, dtype=object)
    out[:] = [f"carefully {a} {b} sleep" for a, b in
              zip(adjectives, nouns)]
    return out


def _region() -> Table:
    return Table(s.TABLE_SCHEMAS["region"], {
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.array(s.REGIONS, dtype=object),
        "r_comment": np.array(["" for _ in range(5)], dtype=object),
    })


def _nation() -> Table:
    names = np.array([n for n, _ in s.NATIONS], dtype=object)
    regions = np.array([r for _, r in s.NATIONS], dtype=np.int64)
    return Table(s.TABLE_SCHEMAS["nation"], {
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_name": names,
        "n_regionkey": regions,
        "n_comment": np.array(["" for _ in range(25)], dtype=object),
    })


def _supplier(n: int, rng) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    names = np.empty(n, dtype=object)
    names[:] = [f"Supplier#{k:09d}" for k in keys]
    addresses = np.empty(n, dtype=object)
    addresses[:] = [f"addr {k}" for k in keys]
    phones = np.empty(n, dtype=object)
    nations = rng.integers(0, 25, n)
    phones[:] = [f"{10 + nation}-{k % 1000:03d}-{k % 10000:04d}"
                 for nation, k in zip(nations, keys)]
    comments = _comments(rng, n)
    # ~1% of suppliers have complaint comments (Q16's anti-join).
    complain = rng.random(n) < 0.01
    for i in np.flatnonzero(complain):
        comments[i] = "Customer Complaints about delivery"
    return Table(s.TABLE_SCHEMAS["supplier"], {
        "s_suppkey": keys,
        "s_name": names,
        "s_address": addresses,
        "s_nationkey": nations.astype(np.int64),
        "s_phone": phones,
        "s_acctbal": rng.uniform(-999.99, 9999.99, n).round(2),
        "s_comment": comments,
    })


def _part(n: int, rng) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    color_picks = rng.integers(0, len(s.COLORS), (n, 3))
    names = np.empty(n, dtype=object)
    names[:] = [" ".join(s.COLORS[j] for j in row) for row in color_picks]
    mfgr = rng.integers(1, 6, n)
    brand = mfgr * 10 + rng.integers(1, 6, n)
    mfgr_strings = np.empty(n, dtype=object)
    mfgr_strings[:] = [f"Manufacturer#{m}" for m in mfgr]
    brand_strings = np.empty(n, dtype=object)
    brand_strings[:] = [f"Brand#{b}" for b in brand]
    types = np.empty(n, dtype=object)
    t1 = rng.integers(0, len(s.TYPE_SYLLABLE_1), n)
    t2 = rng.integers(0, len(s.TYPE_SYLLABLE_2), n)
    t3 = rng.integers(0, len(s.TYPE_SYLLABLE_3), n)
    types[:] = [f"{s.TYPE_SYLLABLE_1[a]} {s.TYPE_SYLLABLE_2[b]}"
                f" {s.TYPE_SYLLABLE_3[c]}" for a, b, c in zip(t1, t2, t3)]
    containers = np.empty(n, dtype=object)
    c1 = rng.integers(0, len(s.CONTAINER_SYLLABLE_1), n)
    c2 = rng.integers(0, len(s.CONTAINER_SYLLABLE_2), n)
    containers[:] = [f"{s.CONTAINER_SYLLABLE_1[a]}"
                     f" {s.CONTAINER_SYLLABLE_2[b]}"
                     for a, b in zip(c1, c2)]
    return Table(s.TABLE_SCHEMAS["part"], {
        "p_partkey": keys,
        "p_name": names,
        "p_mfgr": mfgr_strings,
        "p_brand": brand_strings,
        "p_type": types,
        "p_size": rng.integers(1, 51, n).astype(np.int64),
        "p_container": containers,
        "p_retailprice": (900 + (keys % 1000) / 10
                          + 100 * (keys % 10)).astype(np.float64),
    })


def _partsupp(parts: int, suppliers: int, n: int, rng) -> Table:
    per_part = max(n // parts, 1)
    part_keys = np.repeat(np.arange(1, parts + 1, dtype=np.int64),
                          per_part)
    offsets = np.tile(np.arange(per_part, dtype=np.int64), parts)
    supp_keys = ((part_keys + offsets * (suppliers // per_part + 1))
                 % suppliers) + 1
    count = len(part_keys)
    return Table(s.TABLE_SCHEMAS["partsupp"], {
        "ps_partkey": part_keys,
        "ps_suppkey": supp_keys.astype(np.int64),
        "ps_availqty": rng.integers(1, 10000, count).astype(np.int64),
        "ps_supplycost": rng.uniform(1.0, 1000.0, count).round(2),
    })


def _customer(n: int, rng) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    names = np.empty(n, dtype=object)
    names[:] = [f"Customer#{k:09d}" for k in keys]
    addresses = np.empty(n, dtype=object)
    addresses[:] = [f"caddr {k}" for k in keys]
    nations = rng.integers(0, 25, n)
    phones = np.empty(n, dtype=object)
    phones[:] = [f"{10 + nation}-{k % 1000:03d}-{k % 10000:04d}"
                 for nation, k in zip(nations, keys)]
    return Table(s.TABLE_SCHEMAS["customer"], {
        "c_custkey": keys,
        "c_name": names,
        "c_address": addresses,
        "c_nationkey": nations.astype(np.int64),
        "c_phone": phones,
        "c_acctbal": rng.uniform(-999.99, 9999.99, n).round(2),
        "c_mktsegment": _strings(s.SEGMENTS,
                                 rng.integers(0, len(s.SEGMENTS), n)),
        "c_comment": _comments(rng, n),
    })


def _orders(n: int, customers: int, rng) -> Table:
    keys = np.arange(1, n + 1, dtype=np.int64)
    date_min = date_to_days(s.ORDER_DATE_MIN)
    date_max = date_to_days(s.ORDER_DATE_MAX)
    dates = rng.integers(date_min, date_max + 1, n).astype(np.int32)
    statuses = _strings(["O", "F", "P"], rng.integers(0, 3, n))
    clerks = np.empty(n, dtype=object)
    clerks[:] = [f"Clerk#{k % 1000:09d}" for k in keys]
    return Table(s.TABLE_SCHEMAS["orders"], {
        "o_orderkey": keys,
        "o_custkey": rng.integers(1, customers + 1, n).astype(np.int64),
        "o_orderstatus": statuses,
        "o_totalprice": rng.uniform(800.0, 500000.0, n).round(2),
        "o_orderdate": dates,
        "o_orderpriority": _strings(
            s.PRIORITIES, rng.integers(0, len(s.PRIORITIES), n)),
        "o_clerk": clerks,
        "o_shippriority": np.zeros(n, dtype=np.int64),
        "o_comment": _comments(rng, n),
    })


def _lineitem(orders: Table, parts: int, suppliers: int, rng) -> Table:
    order_keys = orders.column("o_orderkey")
    order_dates = orders.column("o_orderdate")
    lines_per_order = rng.integers(1, 8, len(order_keys))
    l_orderkey = np.repeat(order_keys, lines_per_order)
    l_orderdate = np.repeat(order_dates, lines_per_order)
    n = len(l_orderkey)
    linenumbers = np.concatenate(
        [np.arange(1, c + 1) for c in lines_per_order]).astype(np.int64)
    part_keys = rng.integers(1, parts + 1, n).astype(np.int64)
    supp_keys = ((part_keys + rng.integers(0, 4, n)
                  * (suppliers // 4 + 1)) % suppliers + 1).astype(np.int64)
    quantities = rng.integers(1, 51, n).astype(np.int64)
    prices = (quantities * rng.uniform(900.0, 2100.0, n)).round(2)
    ship_delay = rng.integers(1, 122, n)
    commit_delay = rng.integers(30, 91, n)
    receipt_delay = rng.integers(1, 31, n)
    l_shipdate = (l_orderdate + ship_delay).astype(np.int32)
    l_commitdate = (l_orderdate + commit_delay).astype(np.int32)
    l_receiptdate = (l_shipdate + receipt_delay).astype(np.int32)
    return Table(s.TABLE_SCHEMAS["lineitem"], {
        "l_orderkey": l_orderkey,
        "l_partkey": part_keys,
        "l_suppkey": supp_keys,
        "l_linenumber": linenumbers,
        "l_quantity": quantities,
        "l_extendedprice": prices,
        "l_discount": rng.integers(0, 11, n) / 100.0,
        "l_tax": rng.integers(0, 9, n) / 100.0,
        "l_returnflag": _strings(["R", "A", "N"], rng.integers(0, 3, n)),
        "l_linestatus": _strings(["O", "F"], rng.integers(0, 2, n)),
        "l_shipdate": l_shipdate,
        "l_commitdate": l_commitdate,
        "l_receiptdate": l_receiptdate,
        "l_shipinstruct": _strings(
            s.SHIP_INSTRUCTIONS,
            rng.integers(0, len(s.SHIP_INSTRUCTIONS), n)),
        "l_shipmode": _strings(s.SHIP_MODES,
                               rng.integers(0, len(s.SHIP_MODES), n)),
    })
