"""QGEN: substitution-parameter generation for the 22 TPC-H patterns.

Follows the spec's parameter domains (Appendix B of TPC-H) — the limited
domains are exactly what creates sharing potential across streams (paper
Section V): with enough streams, some queries of the same pattern draw
the same parameters, making intermediate and final results reusable.

Streams mirror the throughput test: each stream runs all 22 patterns in
a per-stream pseudorandom order with freshly drawn parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import schema as s
from .queries import ALL_QUERY_IDS, query_sql


@dataclass
class QueryInstance:
    """One generated query: pattern number, parameters, SQL text."""

    pattern: int
    params: dict
    sql: str

    @property
    def label(self) -> str:
        return f"Q{self.pattern}"


def _month_starts(first_year: int, first_month: int, count: int
                  ) -> list[str]:
    out = []
    index = first_year * 12 + first_month - 1
    for i in range(count):
        month = index + i
        out.append(f"{month // 12:04d}-{month % 12 + 1:02d}-01")
    return out


_BRANDS = [f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6)]
_TYPE_PREFIX_2 = [f"{a} {b}" for a in s.TYPE_SYLLABLE_1
                  for b in s.TYPE_SYLLABLE_2]
_TYPES = [f"{a} {b} {c}" for a in s.TYPE_SYLLABLE_1
          for b in s.TYPE_SYLLABLE_2 for c in s.TYPE_SYLLABLE_3]
_CONTAINERS = [f"{a} {b}" for a in s.CONTAINER_SYLLABLE_1
               for b in s.CONTAINER_SYLLABLE_2]
_NATION_NAMES = [n for n, _ in s.NATIONS]
_COUNTRY_CODES = [str(10 + i) for i in range(25)]
_Q3_DATES = [f"1995-03-{d:02d}" for d in range(1, 32)]
_Q4_DATES = _month_starts(1993, 1, 58)
_Q10_DATES = _month_starts(1993, 2, 24)
_Q14_DATES = _month_starts(1993, 1, 60)
_Q15_DATES = _month_starts(1993, 1, 58)
#: Q18 thresholds, scaled to this dbgen's 1..7 lines/order shape (the
#: spec's 312..315 would select almost nothing at small scale).
_Q18_QUANTITIES = [248, 250, 252, 254]
_Q13_WORD1 = ["special", "pending", "unusual", "express"]
_Q13_WORD2 = ["packages", "requests", "accounts", "deposits"]


class ParameterGenerator:
    """Draws spec-conformant parameters for one pattern at a time."""

    def __init__(self, rng: np.random.Generator,
                 scale_factor: float = 0.01) -> None:
        self.rng = rng
        self.scale_factor = scale_factor

    def _choice(self, values):
        return values[int(self.rng.integers(0, len(values)))]

    def params_for(self, pattern: int) -> dict:
        rng = self.rng
        if pattern == 1:
            return {"delta": int(rng.integers(60, 121))}
        if pattern == 2:
            return {"size": int(rng.integers(1, 51)),
                    "type": self._choice(s.TYPE_SYLLABLE_3),
                    "region": self._choice(s.REGIONS)}
        if pattern == 3:
            return {"segment": self._choice(s.SEGMENTS),
                    "date": self._choice(_Q3_DATES)}
        if pattern == 4:
            return {"date": self._choice(_Q4_DATES)}
        if pattern == 5:
            return {"region": self._choice(s.REGIONS),
                    "year": int(rng.integers(1993, 1998))}
        if pattern == 6:
            return {"year": int(rng.integers(1993, 1998)),
                    "discount": float(rng.integers(2, 10)) / 100.0,
                    "quantity": int(rng.integers(24, 26))}
        if pattern == 7:
            first = self._choice(_NATION_NAMES)
            second = self._choice(
                [n for n in _NATION_NAMES if n != first])
            return {"nation1": first, "nation2": second}
        if pattern == 8:
            nation, region_key = self._choice(s.NATIONS)
            return {"nation": nation,
                    "region": s.REGIONS[region_key],
                    "type": self._choice(_TYPES)}
        if pattern == 9:
            return {"color": self._choice(s.COLORS)}
        if pattern == 10:
            return {"date": self._choice(_Q10_DATES)}
        if pattern == 11:
            return {"nation": self._choice(_NATION_NAMES),
                    "fraction": round(0.0001 / self.scale_factor, 8)}
        if pattern == 12:
            first = self._choice(s.SHIP_MODES)
            second = self._choice(
                [m for m in s.SHIP_MODES if m != first])
            return {"shipmode1": first, "shipmode2": second,
                    "year": int(rng.integers(1993, 1998))}
        if pattern == 13:
            return {"word1": self._choice(_Q13_WORD1),
                    "word2": self._choice(_Q13_WORD2)}
        if pattern == 14:
            return {"date": self._choice(_Q14_DATES)}
        if pattern == 15:
            return {"date": self._choice(_Q15_DATES)}
        if pattern == 16:
            sizes = rng.choice(np.arange(1, 51), size=8, replace=False)
            return {"brand": self._choice(_BRANDS),
                    "type": self._choice(_TYPE_PREFIX_2),
                    "sizes": sorted(int(x) for x in sizes)}
        if pattern == 17:
            return {"brand": self._choice(_BRANDS),
                    "container": self._choice(_CONTAINERS)}
        if pattern == 18:
            return {"quantity": self._choice(_Q18_QUANTITIES)}
        if pattern == 19:
            return {"brand1": self._choice(_BRANDS),
                    "brand2": self._choice(_BRANDS),
                    "brand3": self._choice(_BRANDS),
                    "qty1": int(rng.integers(1, 11)),
                    "qty2": int(rng.integers(10, 21)),
                    "qty3": int(rng.integers(20, 31))}
        if pattern == 20:
            return {"color": self._choice(s.COLORS),
                    "year": int(rng.integers(1993, 1998)),
                    "nation": self._choice(_NATION_NAMES)}
        if pattern == 21:
            return {"nation": self._choice(_NATION_NAMES)}
        if pattern == 22:
            codes = rng.choice(np.array(_COUNTRY_CODES), size=7,
                               replace=False)
            return {"codes": sorted(str(c) for c in codes)}
        raise ValueError(f"unknown TPC-H pattern {pattern}")


def generate_stream(stream_id: int, scale_factor: float = 0.01,
                    patterns: list[int] | None = None,
                    seed: int = 5620) -> list[QueryInstance]:
    """One throughput-test stream: every pattern once, shuffled order."""
    rng = np.random.default_rng(seed + stream_id * 7919)
    generator = ParameterGenerator(rng, scale_factor)
    ids = list(patterns if patterns is not None else ALL_QUERY_IDS)
    order = rng.permutation(len(ids))
    out = []
    for index in order:
        pattern = ids[int(index)]
        params = generator.params_for(pattern)
        out.append(QueryInstance(pattern=pattern, params=params,
                                 sql=query_sql(pattern, params)))
    return out


def generate_streams(num_streams: int, scale_factor: float = 0.01,
                     patterns: list[int] | None = None,
                     seed: int = 5620) -> list[list[QueryInstance]]:
    """The full throughput workload: ``num_streams`` shuffled streams."""
    return [generate_stream(i, scale_factor, patterns, seed)
            for i in range(num_streams)]
