"""TPC-H schema constants and value domains.

Value domains follow the TPC-H specification's generation rules (v2.x);
they matter because the *sharing potential* of the throughput workload
comes from each query pattern having a limited substitution-parameter
domain (paper Section V).
"""

from __future__ import annotations

from ...columnar import DATE, FLOAT64, INT64, STRING
from ...columnar.table import Schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                   "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                   "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                        "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
            "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
              "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                     "TAKE BACK RETURN"]

#: the spec's P_NAME color vocabulary (92 words) — Q9's parameter domain.
COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque",
    "black", "blanched", "blue", "blush", "brown", "burlywood",
    "burnished", "chartreuse", "chiffon", "chocolate", "coral",
    "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
    "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender",
    "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon",
    "medium", "metallic", "midnight", "mint", "misty", "moccasin",
    "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya",
    "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
    "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white",
]

COMMENT_ADJECTIVES = ["special", "pending", "unusual", "express",
                      "furious", "quick", "ironic", "final", "regular",
                      "silent"]
COMMENT_NOUNS = ["packages", "requests", "accounts", "deposits",
                 "foxes", "ideas", "theodolites", "pinto beans",
                 "instructions", "dependencies"]

#: o_orderdate domain endpoints (spec: STARTDATE .. ENDDATE - 151 days).
ORDER_DATE_MIN = "1992-01-01"
ORDER_DATE_MAX = "1998-08-02"

TABLE_SCHEMAS: dict[str, Schema] = {
    "region": Schema(
        ["r_regionkey", "r_name", "r_comment"],
        [INT64, STRING, STRING]),
    "nation": Schema(
        ["n_nationkey", "n_name", "n_regionkey", "n_comment"],
        [INT64, STRING, INT64, STRING]),
    "supplier": Schema(
        ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
         "s_acctbal", "s_comment"],
        [INT64, STRING, STRING, INT64, STRING, FLOAT64, STRING]),
    "part": Schema(
        ["p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
         "p_container", "p_retailprice"],
        [INT64, STRING, STRING, STRING, STRING, INT64, STRING, FLOAT64]),
    "partsupp": Schema(
        ["ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"],
        [INT64, INT64, INT64, FLOAT64]),
    "customer": Schema(
        ["c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
         "c_acctbal", "c_mktsegment", "c_comment"],
        [INT64, STRING, STRING, INT64, STRING, FLOAT64, STRING, STRING]),
    "orders": Schema(
        ["o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
         "o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
         "o_comment"],
        [INT64, INT64, STRING, FLOAT64, DATE, STRING, STRING, INT64,
         STRING]),
    "lineitem": Schema(
        ["l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
         "l_quantity", "l_extendedprice", "l_discount", "l_tax",
         "l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
         "l_receiptdate", "l_shipinstruct", "l_shipmode"],
        [INT64, INT64, INT64, INT64, INT64, FLOAT64, FLOAT64, FLOAT64,
         STRING, STRING, DATE, DATE, DATE, STRING, STRING]),
}


def row_counts(scale_factor: float) -> dict[str, int]:
    """Spec-proportional table sizes for a (possibly tiny) scale factor."""
    return {
        "region": 5,
        "nation": 25,
        "supplier": max(int(10_000 * scale_factor), 10),
        "part": max(int(200_000 * scale_factor), 50),
        "partsupp": max(int(800_000 * scale_factor), 200),
        "customer": max(int(150_000 * scale_factor), 30),
        "orders": max(int(1_500_000 * scale_factor), 300),
        "lineitem": max(int(6_000_000 * scale_factor), 1200),
    }
