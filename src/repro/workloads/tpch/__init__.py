"""TPC-H substrate: dbgen, the 22 query patterns, and qgen."""

from .dbgen import build_catalog, generate
from .qgen import (ParameterGenerator, QueryInstance, generate_stream,
                   generate_streams)
from .queries import ALL_QUERY_IDS, PATTERNS, query_sql
from .schema import TABLE_SCHEMAS, row_counts

__all__ = [
    "ALL_QUERY_IDS", "PATTERNS", "ParameterGenerator", "QueryInstance",
    "TABLE_SCHEMAS", "build_catalog", "generate", "generate_stream",
    "generate_streams", "query_sql", "row_counts",
]
