"""The SkyServer query workload (paper Section V, Fig. 6).

100 queries drawn from a log-derived pattern mix.  The paper: "The
workload queries are either identical to the one above, or share the
computation of fGetNearbyObjEq(195, 2.5, 0.5)" — i.e. one dominant
pattern plus variants differing in projection, predicate, or LIMIT, plus
a small tail of cone searches at other coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: the canonical cone of the paper's most frequent pattern.
CANONICAL_CONE = (195, 2.5, 0.5)

#: tail cones (other log entries touch different sky regions).
OTHER_CONES = [(193, 1.5, 0.4), (197, 3.0, 0.3), (210, 10.0, 0.5)]


@dataclass
class SkyQuery:
    label: str
    sql: str


def _cone_args(cone) -> str:
    return ", ".join(str(v) for v in cone)


def primary_pattern(cone=CANONICAL_CONE, limit: int = 10) -> str:
    """The paper's most frequent query, verbatim in structure."""
    return f"""
SELECT p.objid, p.run, p.rerun, p.camcol, p.field, p.obj, p.type
FROM fGetNearbyObjEq({_cone_args(cone)}) n, photoobj p
WHERE n.objid = p.objid
LIMIT {limit}"""


def magnitude_variant(cone=CANONICAL_CONE, mag: float = 20.0,
                      limit: int = 10) -> str:
    """Same cone, different projection + photometric cut."""
    return f"""
SELECT p.objid, p.ra, p.dec, p.modelmag_r
FROM fGetNearbyObjEq({_cone_args(cone)}) n, photoobj p
WHERE n.objid = p.objid AND p.modelmag_r < {mag}
LIMIT {limit}"""


def type_histogram_variant(cone=CANONICAL_CONE) -> str:
    """Same cone, aggregation instead of a point lookup."""
    return f"""
SELECT p.type, count(*) AS n, min(p.modelmag_r) AS brightest
FROM fGetNearbyObjEq({_cone_args(cone)}) n, photoobj p
WHERE n.objid = p.objid
GROUP BY p.type
ORDER BY p.type"""


def nearest_variant(cone=CANONICAL_CONE, limit: int = 5) -> str:
    """Same cone, ordered by distance (paging behaviour)."""
    return f"""
SELECT n.objid, n.distance
FROM fGetNearbyObjEq({_cone_args(cone)}) n
ORDER BY n.distance
LIMIT {limit}"""


def generate_workload(num_queries: int = 100,
                      seed: int = 424242) -> list[SkyQuery]:
    """The 100-query workload with the paper's pattern mix.

    ~60% the identical primary pattern, ~30% variants sharing the
    canonical cone, ~10% other cones.
    """
    rng = np.random.default_rng(seed)
    out: list[SkyQuery] = []
    for i in range(num_queries):
        draw = rng.random()
        if draw < 0.60:
            out.append(SkyQuery("primary", primary_pattern()))
        elif draw < 0.72:
            mag = float(rng.choice([19.0, 20.0, 21.0]))
            out.append(SkyQuery("magnitude",
                                magnitude_variant(mag=mag)))
        elif draw < 0.82:
            out.append(SkyQuery("histogram", type_histogram_variant()))
        elif draw < 0.90:
            limit = int(rng.choice([5, 10, 20]))
            out.append(SkyQuery("nearest", nearest_variant(limit=limit)))
        else:
            cone = OTHER_CONES[int(rng.integers(0, len(OTHER_CONES)))]
            out.append(SkyQuery("other_cone", primary_pattern(cone=cone)))
    return out
