"""Synthetic SkyServer substrate.

The paper evaluates on a 100 GB subset of SDSS SkyServer DR7 with a real
query log (Section V).  Neither is redistributable, so this module builds
the closest synthetic equivalent that exercises the same code paths:

* a ``photoobj`` table (photometric objects with equatorial coordinates
  and survey metadata);
* the ``fGetNearbyObjEq(ra, dec, r)`` table function — a cone search
  around (ra, dec) within radius ``r`` degrees — registered with a high
  invocation cost: on the real system this function scans a spatial
  index over terabytes, which is exactly why recycling its (tiny) result
  is so profitable.

The paper's workload property that matters is structural: most queries
share the computation of one ``fGetNearbyObjEq(195, 2.5, 0.5)`` call and
produce LIMIT-10 results of a few hundred bytes.
"""

from __future__ import annotations

import numpy as np

from ...columnar import (Catalog, FLOAT64, INT64, Schema, Table,
                         TableBackedFunction)

PHOTOOBJ_SCHEMA = Schema(
    ["objid", "ra", "dec", "run", "rerun", "camcol", "field", "obj",
     "type", "modelmag_r"],
    [INT64, FLOAT64, FLOAT64, INT64, INT64, INT64, INT64, INT64, INT64,
     FLOAT64])

NEARBY_SCHEMA = Schema(["objid", "distance"], [INT64, FLOAT64])

#: cost units charged per photoobj row for one cone-search invocation —
#: models the spatial-index scan that dominates the real function.
CONE_SEARCH_COST_PER_ROW = 3.0


def generate_photoobj(num_rows: int = 60000, seed: int = 7575) -> Table:
    """Synthetic PhotoObj: objects clustered around survey stripes."""
    rng = np.random.default_rng(seed)
    # Cluster a third of the objects near the paper's canonical cone
    # center (ra=195, dec=2.5) so cone searches return a few dozen rows.
    n_near = num_rows // 3
    n_far = num_rows - n_near
    ra = np.concatenate([
        rng.normal(195.0, 2.0, n_near),
        rng.uniform(0.0, 360.0, n_far)])
    dec = np.concatenate([
        rng.normal(2.5, 1.5, n_near),
        rng.uniform(-20.0, 60.0, n_far)])
    order = rng.permutation(num_rows)
    return Table(PHOTOOBJ_SCHEMA, {
        "objid": np.arange(1, num_rows + 1, dtype=np.int64),
        "ra": ra[order],
        "dec": dec[order],
        "run": rng.integers(94, 8000, num_rows).astype(np.int64),
        "rerun": rng.integers(1, 42, num_rows).astype(np.int64),
        "camcol": rng.integers(1, 7, num_rows).astype(np.int64),
        "field": rng.integers(11, 800, num_rows).astype(np.int64),
        "obj": rng.integers(1, 500, num_rows).astype(np.int64),
        "type": rng.integers(0, 9, num_rows).astype(np.int64),
        "modelmag_r": rng.uniform(12.0, 24.0, num_rows).round(3),
    })


def make_cone_search(photoobj: Table):
    """Build the ``fGetNearbyObjEq`` implementation over a photoobj
    table.  Returns objid + angular distance, nearest first."""
    ra = photoobj.column("ra")
    dec = photoobj.column("dec")
    objid = photoobj.column("objid")

    def cone_search(center_ra, center_dec, radius) -> Table:
        cos_dec = np.cos(np.radians(float(center_dec)))
        d_ra = (ra - float(center_ra)) * cos_dec
        d_dec = dec - float(center_dec)
        distance = np.sqrt(d_ra * d_ra + d_dec * d_dec)
        mask = distance <= float(radius)
        found_ids = objid[mask]
        found_distance = distance[mask]
        order = np.argsort(found_distance, kind="stable")
        return Table(NEARBY_SCHEMA, {
            "objid": found_ids[order],
            "distance": found_distance[order].round(6),
        })

    return cone_search


def build_catalog(num_rows: int = 60000, seed: int = 7575) -> Catalog:
    """Photoobj + the registered (expensive) cone-search function.

    The cone search is registered *table-backed* so process-sharded
    workers can rebuild it over their shared-memory photoobj view —
    remote cone searches then read the exact same bytes as local ones.
    """
    catalog = Catalog()
    photoobj = generate_photoobj(num_rows, seed)
    catalog.register_table("photoobj", photoobj, compute_stats=False)
    catalog.register_function(
        "fgetnearbyobjeq",
        TableBackedFunction(make_cone_search, "photoobj").bind(catalog),
        NEARBY_SCHEMA,
        invocation_cost=num_rows * CONE_SEARCH_COST_PER_ROW)
    return catalog
