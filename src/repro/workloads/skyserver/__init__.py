"""SkyServer substrate: synthetic photoobj + cone search + query log."""

from .data import (CONE_SEARCH_COST_PER_ROW, NEARBY_SCHEMA,
                   PHOTOOBJ_SCHEMA, build_catalog, generate_photoobj,
                   make_cone_search)
from .queries import (CANONICAL_CONE, OTHER_CONES, SkyQuery,
                      generate_workload, primary_pattern)

__all__ = [
    "CANONICAL_CONE", "CONE_SEARCH_COST_PER_ROW", "NEARBY_SCHEMA",
    "OTHER_CONES", "PHOTOOBJ_SCHEMA", "SkyQuery", "build_catalog",
    "generate_photoobj", "generate_workload", "make_cone_search",
    "primary_pattern",
]
