"""Append-heavy time-series workload: sustained ingest under queries.

The recycler's weakest spot by construction is a hot-append table —
every ``append_rows`` bumps the table version, so cached results over
the appended table can never be served again and the incremental-stats
path (merge delta stats instead of rescanning) does the maintenance
work.  This workload models a metrics pipeline doing exactly that:

* a ``metrics`` fact table (timestamp, sensor, temperature, status)
  growing in deterministic batches;
* a small static ``sensors`` dimension (joins keep recycling even while
  the fact table churns);
* interleaved traffic: range scans over recent windows, per-sensor
  aggregates, join rollups, and top-k — the query mix of a monitoring
  dashboard refreshing during ingest.

Everything is seeded so a serial replay of the same streams is
byte-identical to any concurrent admission order.
"""

from __future__ import annotations

import numpy as np

from ..columnar import Catalog, FLOAT64, INT64, STRING, Schema, Table

METRICS_SCHEMA = Schema(["ts", "sensor", "temp", "status"],
                        [INT64, INT64, FLOAT64, STRING])
SENSORS_SCHEMA = Schema(["sensor", "site", "floor"],
                        [INT64, STRING, INT64])

#: epoch anchor for the synthetic feed (seconds); batches advance it.
T0 = 1_700_000_000
#: seconds between consecutive samples in a batch.
TICK = 10
STATUSES = ("ok", "ok", "ok", "warn", "crit")
SITES = ("lab", "roof", "cellar")

NUM_SENSORS = 8


def _batch(start_row: int, num_rows: int, seed: int) -> Table:
    """Rows ``start_row .. start_row+num_rows`` of the deterministic
    feed; timestamps strictly increase across consecutive batches."""
    rng = np.random.default_rng(seed)
    idx = np.arange(start_row, start_row + num_rows, dtype=np.int64)
    status = np.empty(num_rows, dtype=object)
    status[:] = [STATUSES[i] for i in
                 rng.integers(0, len(STATUSES), num_rows)]
    return Table(METRICS_SCHEMA, {
        "ts": T0 + idx * TICK,
        "sensor": (idx % NUM_SENSORS) + 1,
        "temp": (18.0 + rng.uniform(-3.0, 9.0, num_rows)).round(3),
        "status": status,
    })


def sensors_table() -> Table:
    rows = [(s, SITES[(s - 1) % len(SITES)], (s - 1) // 3 + 1)
            for s in range(1, NUM_SENSORS + 1)]
    return Table.from_rows(SENSORS_SCHEMA.names, SENSORS_SCHEMA.types,
                           rows)


def build_catalog(initial_rows: int = 2048, seed: int = 9090) -> Catalog:
    """``metrics`` seeded with ``initial_rows`` samples + the static
    ``sensors`` dimension, stats computed (appends then merge into
    them incrementally)."""
    catalog = Catalog()
    catalog.register_table("metrics", _batch(0, initial_rows, seed))
    catalog.register_table("sensors", sensors_table())
    return catalog


def append_unit(batch_index: int, start_row: int, batch_size: int,
                seed: int = 9090):
    """A callable stream unit (DDL-chaos convention: ``unit(db,
    session) -> rows``) appending one deterministic batch."""
    def unit(db, session):
        db.append_rows("metrics",
                       _batch(start_row, batch_size, seed + batch_index))
        return [("append", batch_index, batch_size)]
    return unit


# ----------------------------------------------------------------------
# query mix
# ----------------------------------------------------------------------
def range_scan(lo_row: int, hi_row: int) -> str:
    """Half-open window ``[lo_row, hi_row)`` — under append-only ingest
    a window fully in the past returns the same rows forever, which is
    what lets concurrent streams issue it while ingest runs."""
    lo, hi = T0 + lo_row * TICK, T0 + hi_row * TICK
    return (f"SELECT sensor, count(*) AS n, max(temp) AS hi"
            f" FROM metrics WHERE ts >= {lo} AND ts < {hi}"
            f" GROUP BY sensor")


def sensor_rollup() -> str:
    """Whole-table aggregate — only deterministic on the ingest stream
    itself (per-stream order pins how many batches have landed)."""
    return ("SELECT sensor, count(*) AS n, avg(temp) AS mean"
            " FROM metrics GROUP BY sensor")


def site_rollup(hi_row: int) -> str:
    hi = T0 + hi_row * TICK
    return (f"SELECT site, count(*) AS n, max(temp) AS peak"
            f" FROM metrics JOIN sensors"
            f" ON metrics.sensor = sensors.sensor"
            f" WHERE ts < {hi} GROUP BY site")


def alerts(hi_row: int, limit: int = 5) -> str:
    hi = T0 + hi_row * TICK
    return (f"SELECT ts, sensor, temp FROM metrics"
            f" WHERE status = 'crit' AND ts < {hi}"
            f" ORDER BY temp DESC, ts, sensor LIMIT {limit}")


def hot_sensors(hi_row: int, threshold: float = 25.0) -> str:
    hi = T0 + hi_row * TICK
    return (f"SELECT sensor FROM sensors WHERE sensor IN"
            f" (SELECT sensor FROM metrics WHERE temp > {threshold}"
            f" AND ts < {hi})")


def generate_streams(num_query_streams: int = 6,
                     appends: int = 8,
                     batch_size: int = 256,
                     initial_rows: int = 2048,
                     seed: int = 9090) -> list[list[object]]:
    """Stream 0 interleaves ingest with probes of the appended table
    (session-sequential, so serial replay sees the identical
    data-growth schedule); streams 1..N query fixed past windows of the
    growing table — append-only ingest never changes those, so every
    admission order yields the serial rows."""
    ingest: list[object] = []
    start = initial_rows
    for i in range(appends):
        ingest.append(append_unit(i, start, batch_size, seed))
        start += batch_size
        ingest.append(range_scan(start - batch_size, start))
        ingest.append(sensor_rollup())
    streams: list[list[object]] = [ingest]
    half = initial_rows // 2
    mix = [range_scan(0, initial_rows), range_scan(0, half),
           range_scan(half, initial_rows), site_rollup(initial_rows),
           alerts(initial_rows), hot_sensors(initial_rows)]
    for stream_id in range(1, num_query_streams + 1):
        streams.append([mix[(stream_id + k) % len(mix)]
                        for k in range(5)])
    return streams
