"""Streaming projection operator.

One input batch in, one output batch out — the base class's per-batch
token check before ``_next`` is the cancellation point.
"""

from __future__ import annotations

from ..columnar.batch import Batch
from ..expr.nodes import Col
from ..plan.logical import Project
from .base import PhysicalOperator, QueryContext


class ProjectOp(PhysicalOperator):
    """Compute named output expressions per batch."""

    def __init__(self, ctx: QueryContext, logical: Project,
                 child: PhysicalOperator) -> None:
        schema = logical.output_schema(ctx.catalog)
        super().__init__(ctx, logical, [child], schema)
        self._outputs = logical.outputs
        self._computed = sum(1 for _, e in self._outputs
                             if not isinstance(e, Col))

    def _next(self) -> Batch | None:
        batch = self.children[0].next()
        if batch is None:
            return None
        self.charge(len(batch) * self._computed
                    * self.ctx.cost_model.project_expr_tuple)
        columns = {}
        for name, expr in self._outputs:
            columns[name] = expr.eval(batch)
        return Batch(columns)
