"""Shared vectorized grouping utilities (hash aggregate, distinct)."""

from __future__ import annotations

import numpy as np


def factorize(arrays: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Encode rows of multiple key columns into dense int64 group codes.

    Returns ``(codes, num_groups_upper_bound)``; codes of equal rows are
    equal.  Works for any column dtype (object arrays included).
    """
    if not arrays:
        raise ValueError("factorize requires at least one key column")
    n = len(arrays[0])
    combined = np.zeros(n, dtype=np.int64)
    radix = 1
    for arr in arrays:
        _, inverse = np.unique(arr, return_inverse=True)
        cardinality = int(inverse.max()) + 1 if n else 1
        combined = combined * cardinality + inverse.astype(np.int64)
        radix *= max(cardinality, 1)
        if radix > 2 ** 53:  # re-densify to avoid overflow on many keys
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64)
            radix = int(combined.max()) + 1 if n else 1
    return combined, radix


class GroupedRows:
    """Rows sorted by group, with group boundary offsets."""

    __slots__ = ("order", "starts", "num_groups", "sizes")

    def __init__(self, codes: np.ndarray) -> None:
        self.order = np.argsort(codes, kind="stable")
        sorted_codes = codes[self.order]
        if len(sorted_codes) == 0:
            self.starts = np.zeros(0, dtype=np.int64)
        else:
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            self.starts = np.concatenate(
                [np.zeros(1, dtype=np.int64), boundaries])
        self.num_groups = len(self.starts)
        ends = np.concatenate(
            [self.starts[1:], np.array([len(codes)], dtype=np.int64)])
        self.sizes = ends - self.starts

    def representatives(self, values: np.ndarray) -> np.ndarray:
        """First value of each group."""
        return values[self.order][self.starts]

    def reduce_sum(self, values: np.ndarray) -> np.ndarray:
        if self.num_groups == 0:
            return values[:0]
        return np.add.reduceat(values[self.order], self.starts)

    def reduce_min(self, values: np.ndarray) -> np.ndarray:
        if self.num_groups == 0:
            return values[:0]
        return np.minimum.reduceat(values[self.order], self.starts)

    def reduce_max(self, values: np.ndarray) -> np.ndarray:
        if self.num_groups == 0:
            return values[:0]
        return np.maximum.reduceat(values[self.order], self.starts)

    def reduce_count(self) -> np.ndarray:
        return self.sizes.astype(np.int64)


def count_distinct_per_group(codes: np.ndarray,
                             values: np.ndarray) -> np.ndarray:
    """``count(DISTINCT values)`` per group of ``codes``.

    Groups are identified the same way :class:`GroupedRows` identifies
    them (ascending code order), so the result aligns with the grouped
    reductions.
    """
    if len(codes) == 0:
        return np.zeros(0, dtype=np.int64)
    _, value_codes = np.unique(values, return_inverse=True)
    pair = codes.astype(np.int64) * (int(value_codes.max()) + 1) \
        + value_codes.astype(np.int64)
    order = np.argsort(pair, kind="stable")
    sorted_codes = codes[order]
    sorted_pairs = pair[order]
    first_of_pair = np.concatenate(
        [[True], sorted_pairs[1:] != sorted_pairs[:-1]])
    return _sum_flags_by_group(sorted_codes, first_of_pair)


def _sum_flags_by_group(sorted_codes: np.ndarray,
                        flags: np.ndarray) -> np.ndarray:
    boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    return np.add.reduceat(flags.astype(np.int64), starts)
