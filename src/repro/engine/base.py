"""Physical operator base class and per-query execution context.

Operators follow the pull-based, vector-at-a-time model: ``next()``
returns a :class:`~repro.columnar.batch.Batch` of up to ``vector_size``
tuples, or ``None`` at end of stream.  Every operator tracks

* ``self_cost`` — deterministic cost units charged by this operator alone;
* ``rows_out`` / ``bytes_out`` — output volume (recycler annotations);
* ``progress()`` — the paper's progress-meter value in [0, 1] (Section
  III-D): scans and blocking operators know their own progress, everything
  else inherits from its left-deep descendant.

Cancellation: ``next()`` checks the context's
:class:`~repro.engine.cancellation.CancellationToken` before producing a
batch, so *every* pull anywhere in the tree is a cancellation point and
a cancelled or past-deadline query unwinds within one batch boundary
(see :mod:`repro.engine.cancellation`).
"""

from __future__ import annotations

from typing import Sequence

from ..columnar.batch import VECTOR_SIZE, Batch
from ..columnar.catalog import CatalogView
from ..columnar.table import Schema
from ..errors import ExecutionError
from ..plan.logical import PlanNode
from .cancellation import CancellationToken
from .cost import DEFAULT_COST_MODEL, CostMeter, CostModel


class QueryContext:
    """Shared state for one query execution."""

    __slots__ = ("catalog", "vector_size", "cost_model", "meter",
                 "query_id", "token")

    def __init__(self, catalog: CatalogView,
                 vector_size: int = VECTOR_SIZE,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 query_id: int = 0,
                 token: CancellationToken | None = None) -> None:
        self.catalog = catalog
        self.vector_size = vector_size
        self.cost_model = cost_model
        self.meter = CostMeter()
        self.query_id = query_id
        #: per-query cancellation token; a fresh never-cancelled token
        #: when the caller did not supply one, so operators can check
        #: unconditionally.
        self.token = token if token is not None else CancellationToken()


class PhysicalOperator:
    """Base class for all physical operators."""

    def __init__(self, ctx: QueryContext, logical: PlanNode | None,
                 children: Sequence["PhysicalOperator"],
                 schema: Schema) -> None:
        self.ctx = ctx
        self.logical = logical
        self.children = list(children)
        self.schema = schema
        self.self_cost = 0.0
        self.rows_out = 0
        self.bytes_out = 0
        self.exhausted = False
        self._opened = False
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def open(self) -> None:
        if self._opened:
            raise ExecutionError(f"{self!r} opened twice")
        # Checked here because _open may do real work (table-function
        # invocation, cached-result projection) before the first batch.
        self.ctx.token.check()
        self._opened = True
        for child in self.children:
            child.open()
        self._open()

    def next(self) -> Batch | None:
        # The per-batch cancellation point: every pull in the tree backs
        # onto this method, so a cancel or deadline expiry stops the
        # query within one batch no matter which operator is running.
        self.ctx.token.check()
        batch = self._next()
        if batch is None:
            self.exhausted = True
        else:
            self.rows_out += len(batch)
            self.bytes_out += batch.nbytes()
        return batch

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._close()
        for child in self.children:
            child.close()

    # hooks -------------------------------------------------------------
    def _open(self) -> None:
        pass

    def _next(self) -> Batch | None:
        raise NotImplementedError

    def _close(self) -> None:
        pass

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def charge(self, units: float) -> None:
        self.self_cost += units
        self.ctx.meter.charge(units)

    def cumulative_cost(self) -> float:
        """Cost of this operator plus its whole subtree (this run)."""
        return self.self_cost + sum(c.cumulative_cost()
                                    for c in self.children)

    def progress(self) -> float:
        """Fraction of input processed; see module docstring."""
        if self.children:
            return self.children[0].progress()
        return 0.0

    def cost_progress(self) -> float:
        """Fraction of this subtree's *cost* already accrued.

        Streaming operators accrue cost proportionally to row progress;
        blocking operators (aggregate, sort, top-N) override this to
        report ~1.0 once their input is consumed, so speculative cost
        extrapolation does not wildly overestimate.
        """
        return self.progress()

    # ------------------------------------------------------------------
    def walk(self):
        """Post-order traversal of the physical tree."""
        for child in self.children:
            yield from child.walk()
        yield self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.schema.names})"
