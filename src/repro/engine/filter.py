"""Streaming selection operator."""

from __future__ import annotations

import numpy as np

from ..columnar.batch import Batch
from ..plan.logical import Select
from .base import PhysicalOperator, QueryContext


class FilterOp(PhysicalOperator):
    """Apply a boolean predicate, keeping qualifying rows."""

    def __init__(self, ctx: QueryContext, logical: Select,
                 child: PhysicalOperator) -> None:
        super().__init__(ctx, logical, [child], child.schema)
        self._predicate = logical.predicate

    def _next(self) -> Batch | None:
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = self.children[0].next()
            if batch is None:
                return None
            self.charge(len(batch) * self.ctx.cost_model.filter_tuple)
            mask = np.asarray(self._predicate.eval(batch), dtype=bool)
            if mask.all():
                return batch
            if mask.any():
                return batch.filter(mask)
            # fully filtered out: pull the next batch
