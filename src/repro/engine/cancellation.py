"""Cooperative query cancellation and deadlines.

A :class:`CancellationToken` travels with one query execution (inside
:class:`~repro.engine.base.QueryContext`) and is checked *per batch* at
the operator pull choke point — see ``PhysicalOperator.next``, which
every pull in the tree backs onto.  The multi-batch operator loops
(join build, aggregate/sort/top-N consume, filter/limit skip) carry an
explicit check as well; that is deliberate defense-in-depth, not a
separate necessity — each iteration's child pull already checks — so
the abort property stays locally evident in each operator and does not
depend on how a child subclass implements ``next``.  The check is two
attribute reads on the common path (not cancelled, no deadline), so
per-batch checking costs nothing measurable against vectorized work on
1024-row batches.

Cancellation is *cooperative*: ``cancel()`` flips a flag from any
thread; the executing thread notices at its next batch boundary and
raises :class:`~repro.errors.QueryCancelled` (or
:class:`~repro.errors.QueryTimeout` when a deadline expired) out of the
operator tree.  The recycler's ``execute`` catches the unwind and
abandons the query — retiring its producer token, releasing its
in-flight registrations, and waking any consumer blocked on them — so
an aborted query can never publish a partial cache entry or strand a
waiter (see ``Recycler.abandon`` and ``StoreOp._close``).

Deadlines use :func:`time.monotonic` so wall-clock adjustments cannot
fire (or suppress) a timeout.
"""

from __future__ import annotations

import time

from ..errors import QueryCancelled, QueryTimeout


class CancellationToken:
    """Cancelled flag plus optional deadline for one query execution.

    ``cancel()`` may be called from any thread; the flag write is a
    single attribute store (atomic under the GIL) and is read without a
    lock on the hot path.  A token is single-use: it belongs to exactly
    one query and is never reset.
    """

    __slots__ = ("_cancelled", "_deadline")

    def __init__(self, deadline: float | None = None,
                 timeout: float | None = None) -> None:
        """``deadline`` is an absolute :func:`time.monotonic` timestamp;
        ``timeout`` is seconds from now.  Given both, the earlier wins."""
        if timeout is not None:
            limit = time.monotonic() + timeout
            deadline = limit if deadline is None else min(deadline, limit)
        self._deadline = deadline
        self._cancelled = False

    @classmethod
    def from_limits(cls, timeout: float | None = None,
                    deadline: float | None = None
                    ) -> "CancellationToken | None":
        """The uniform limit→token rule every frontend shares: no limit,
        no token (the per-batch check then costs nothing at all);
        otherwise one token merging both bounds, earlier wins."""
        if timeout is None and deadline is None:
            return None
        return cls(deadline=deadline, timeout=timeout)

    # ------------------------------------------------------------------
    @property
    def deadline(self) -> float | None:
        return self._deadline

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self._deadline is not None \
            and time.monotonic() >= self._deadline

    @property
    def aborted(self) -> bool:
        """Cancelled or past deadline — non-raising form of :meth:`check`
        for teardown paths that must not throw (``StoreOp._close``)."""
        return self._cancelled or self.expired

    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cancellation; the executing thread aborts at its next
        batch boundary.  Idempotent, callable from any thread."""
        self._cancelled = True

    def check(self) -> None:
        """Raise if the query must stop.  This is the per-batch check:
        the common path is two reads and no syscall."""
        if self._cancelled:
            raise QueryCancelled("query cancelled")
        deadline = self._deadline
        if deadline is not None and time.monotonic() >= deadline:
            raise QueryTimeout("query deadline exceeded")

    # ------------------------------------------------------------------
    def remaining(self) -> float | None:
        """Seconds until the deadline (0.0 if past), or None."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.monotonic())

    def bound_timeout(self, timeout: float | None) -> float | None:
        """``timeout`` clipped so a blocking wait (e.g. on an in-flight
        producer) returns by this token's deadline."""
        remaining = self.remaining()
        if remaining is None:
            return timeout
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else (
            "expired" if self.expired else "live")
        return f"CancellationToken({state})"
