"""Vector-at-a-time pipelined execution engine."""

from .base import PhysicalOperator, QueryContext
from .cancellation import CancellationToken
from .compile import compile_plan
from .cost import DEFAULT_COST_MODEL, CostMeter, CostModel
from .executor import (ExecutionStats, NodeStats, QueryResult, collect_stats,
                       execute_plan)
from .store import (MODE_MATERIALIZE, MODE_SPECULATE, SpeculationEstimate,
                    StoreOp, StoreRequest, StoreStats)

__all__ = [
    "CancellationToken", "CostMeter", "CostModel", "DEFAULT_COST_MODEL",
    "ExecutionStats", "MODE_MATERIALIZE", "MODE_SPECULATE", "NodeStats",
    "PhysicalOperator", "QueryContext", "QueryResult",
    "SpeculationEstimate", "StoreOp", "StoreRequest", "StoreStats",
    "collect_stats", "compile_plan", "execute_plan",
]
