"""Blocking sort operator and shared multi-key ordering utility.

Cancellation: the consume loop is a per-input-batch cancellation point;
the final lexsort over the consumed input is one uninterruptible numpy
call.
"""

from __future__ import annotations

import numpy as np

from ..columnar.batch import Batch, concat_batches
from ..plan.logical import Sort
from .base import PhysicalOperator, QueryContext


def sort_indices(batch: Batch,
                 sort_keys: list[tuple[str, bool]]) -> np.ndarray:
    """Row order for multi-key sorting with per-key direction.

    Descending string keys are handled by sorting on negated dictionary
    codes (numpy cannot negate object arrays).
    """
    columns = []
    for name, ascending in reversed(sort_keys):  # lexsort: last = primary
        values = batch.column(name)
        if not ascending:
            if values.dtype.kind == "O":
                _, codes = np.unique(values, return_inverse=True)
                values = -codes.astype(np.int64)
            else:
                values = -values.astype(np.float64) \
                    if values.dtype.kind == "f" else -values.astype(np.int64)
        elif values.dtype.kind == "O":
            _, codes = np.unique(values, return_inverse=True)
            values = codes.astype(np.int64)
        columns.append(values)
    return np.lexsort(columns)


class SortOp(PhysicalOperator):
    """Full blocking sort."""

    def __init__(self, ctx: QueryContext, logical: Sort,
                 child: PhysicalOperator) -> None:
        super().__init__(ctx, logical, [child], child.schema)
        self._sort_keys = logical.sort_keys
        self._result: Batch | None = None
        self._emitted = 0
        self._done_building = False

    def _build(self) -> None:
        child = self.children[0]
        batches = []
        rows = 0
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = child.next()
            if batch is None:
                break
            rows += len(batch)
            batches.append(batch)
        data = concat_batches(batches, schema=self.schema)
        order = sort_indices(data, self._sort_keys)
        self._result = data.take(order)
        self.charge(self.ctx.cost_model.sort_cost(rows))
        self._done_building = True

    def _next(self) -> Batch | None:
        if not self._done_building:
            self._build()
        assert self._result is not None
        if self._emitted >= len(self._result):
            return None
        stop = min(self._emitted + self.ctx.vector_size, len(self._result))
        batch = self._result.slice(self._emitted, stop)
        self._emitted = stop
        return batch

    def progress(self) -> float:
        if not self._done_building:
            return self.children[0].progress()
        total = len(self._result) if self._result is not None else 0
        return 1.0 if total == 0 else self._emitted / total

    def cost_progress(self) -> float:
        # Blocking: essentially all cost is spent once the build is done.
        if not self._done_building:
            return self.children[0].cost_progress()
        return 1.0
