"""Streaming UNION ALL and LIMIT operators."""

from __future__ import annotations

from ..columnar.batch import Batch
from ..plan.logical import Limit, UnionAll
from .base import PhysicalOperator, QueryContext


class UnionAllOp(PhysicalOperator):
    """Concatenate the streams of all children (child order preserved).

    Column names are normalized to the first child's names — UNION ALL
    matches by position, and the re-aggregation plans built by the
    proactive binning rule rely on that.
    """

    def __init__(self, ctx: QueryContext, logical: UnionAll,
                 children: list[PhysicalOperator]) -> None:
        schema = children[0].schema
        super().__init__(ctx, logical, children, schema)
        self._current = 0

    def _next(self) -> Batch | None:
        while self._current < len(self.children):
            self.ctx.token.check()  # per-child-batch cancellation point
            batch = self.children[self._current].next()
            if batch is not None:
                self.charge(len(batch) * self.ctx.cost_model.union_tuple)
                if batch.names != self.schema.names:
                    rename = dict(zip(batch.names, self.schema.names))
                    batch = batch.rename(rename)
                return batch
            self._current += 1
        return None

    def progress(self) -> float:
        if not self.children:
            return 1.0
        done = self._current / len(self.children)
        if self._current < len(self.children):
            done += self.children[self._current].progress() \
                / len(self.children)
        return min(done, 1.0)


class LimitOp(PhysicalOperator):
    """Emit rows ``offset .. offset+limit`` of the child stream."""

    def __init__(self, ctx: QueryContext, logical: Limit,
                 child: PhysicalOperator) -> None:
        super().__init__(ctx, logical, [child], child.schema)
        self._to_skip = logical.offset
        self._remaining = logical.limit
        self._exhausted = False

    def _next(self) -> Batch | None:
        if self._exhausted or self._remaining == 0:
            return None
        child = self.children[0]
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = child.next()
            if batch is None:
                self._exhausted = True
                return None
            self.charge(len(batch) * self.ctx.cost_model.limit_tuple)
            if self._to_skip >= len(batch):
                self._to_skip -= len(batch)
                continue
            if self._to_skip > 0:
                batch = batch.slice(self._to_skip, len(batch))
                self._to_skip = 0
            if len(batch) > self._remaining:
                batch = batch.slice(0, self._remaining)
            self._remaining -= len(batch)
            if self._remaining == 0:
                self._exhausted = True
            return batch
