"""Deterministic cost accounting for the pipelined engine.

The paper's benefit metric (Eq. 1) is driven by the *CPU time* to compute a
result.  Wall-clock time in Python is noisy and machine-dependent, so every
physical operator additionally charges deterministic **cost units**
proportional to the work it performs (tuples consumed/produced, bytes
materialized).  All recycler decisions and all figure reproductions run on
cost units; wall time is still measured and reported alongside.

The constants below encode the *relative* expense of operations in a
vectorized engine: materialization is deliberately priced high relative to
streaming work (the central tension the paper addresses), and reuse of a
cached result is priced low but not free.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Per-tuple / per-byte unit costs charged by physical operators."""

    scan_tuple: float = 1.0
    table_function_tuple: float = 1.0
    filter_tuple: float = 0.4
    project_expr_tuple: float = 0.25     # per computed (non-passthrough) expr
    aggregate_input_tuple: float = 1.5
    aggregate_group: float = 1.0
    join_build_tuple: float = 1.2
    join_probe_tuple: float = 1.0
    join_output_tuple: float = 0.5
    topn_tuple: float = 0.8
    sort_tuple_log: float = 0.15         # * n * log2(n)
    union_tuple: float = 0.05
    limit_tuple: float = 0.05
    distinct_input_tuple: float = 1.5

    # recycling-specific costs
    store_materialize_tuple: float = 0.6
    store_materialize_byte: float = 0.004
    store_buffer_tuple: float = 0.1      # speculation buffering overhead
    reuse_tuple: float = 0.15            # emitting a cached tuple

    def sort_cost(self, n: int) -> float:
        if n <= 1:
            return 0.0
        import math
        return self.sort_tuple_log * n * math.log2(n)


DEFAULT_COST_MODEL = CostModel()


class CostMeter:
    """Accumulates cost units for one query execution."""

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def charge(self, units: float) -> float:
        self.total += units
        return units
