"""Bounded top-N operator (the paper's ``topN``).

Vectorwise's ``topN`` keeps a heap of N rows at O(M log N); the vectorized
equivalent here accumulates candidates and periodically compacts them down
to the best ``limit + offset`` rows, giving the same bounded memory and an
amortized cost charged per input tuple.  Output is emitted in sort order,
so ``Limit(k)`` over a cached ``topN(10000)`` result — the proactive top-N
strategy — is exact.
"""

from __future__ import annotations

from ..columnar.batch import Batch, concat_batches
from ..plan.logical import TopN
from .base import PhysicalOperator, QueryContext
from .sort import sort_indices


class TopNOp(PhysicalOperator):
    """Blocking bounded ORDER BY ... OFFSET/LIMIT."""

    #: compact the candidate buffer when it exceeds this multiple of N
    COMPACT_FACTOR = 4

    def __init__(self, ctx: QueryContext, logical: TopN,
                 child: PhysicalOperator) -> None:
        super().__init__(ctx, logical, [child], child.schema)
        self._sort_keys = logical.sort_keys
        self._keep = logical.limit + logical.offset
        self._offset = logical.offset
        self._limit = logical.limit
        self._result: Batch | None = None
        self._emitted = 0
        self._done_building = False

    def _build(self) -> None:
        child = self.children[0]
        candidates: list[Batch] = []
        buffered = 0
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = child.next()
            if batch is None:
                break
            self.charge(len(batch) * self.ctx.cost_model.topn_tuple)
            candidates.append(batch)
            buffered += len(batch)
            if buffered > self.COMPACT_FACTOR * self._keep:
                compacted = self._best(candidates)
                candidates = [compacted]
                buffered = len(compacted)
        best = self._best(candidates)
        self._result = best.slice(
            min(self._offset, len(best)),
            min(self._offset + self._limit, len(best)))
        self._done_building = True

    def _best(self, candidates: list[Batch]) -> Batch:
        data = concat_batches(candidates, schema=self.schema)
        order = sort_indices(data, self._sort_keys)
        return data.take(order[:self._keep])

    def _next(self) -> Batch | None:
        if not self._done_building:
            self._build()
        assert self._result is not None
        if self._emitted >= len(self._result):
            return None
        stop = min(self._emitted + self.ctx.vector_size, len(self._result))
        batch = self._result.slice(self._emitted, stop)
        self._emitted = stop
        return batch

    def progress(self) -> float:
        if not self._done_building:
            return self.children[0].progress()
        total = len(self._result) if self._result is not None else 0
        return 1.0 if total == 0 else self._emitted / total

    def cost_progress(self) -> float:
        # Blocking: essentially all cost is spent once the build is done.
        if not self._done_building:
            return self.children[0].cost_progress()
        return 1.0
