"""Shard runtime: the parent-side manager of worker processes.

:class:`ShardRuntime` owns everything the sharded mode allocates —
one segment per registered table, one ring per worker, the worker
processes themselves — and exposes the two calls the recycler makes:

* :meth:`eligible` — can this prepared query run remotely?  Only cold
  plans qualify: no reuse substitutions, no cached scans, and every
  scanned table (and invoked table function) must be shared at exactly
  the version the query's snapshot pins (DDL since pool creation falls
  back to local execution, which is always correct).  Table functions
  ship to workers when they pickle — :class:`TableBackedFunction`
  rebinds over the worker's shared-memory tables — and opaque
  (unpicklable) functions simply keep their plans local.
* :meth:`execute` — lease a worker, dispatch the plan, stream the
  result back pickle-free, and survive worker death by respawning and
  requeueing up to ``retry_limit`` times before failing the query with
  :class:`ShardError`.

Cancellation: while a task is in flight the parent polls the query's
token; tripping it writes the task's sequence number into the worker's
ring cancel slot, and the worker aborts within one batch.  Deadlines
additionally ship with the task as remaining seconds.

Lifecycle: :meth:`close` (idempotent; called by the owning pool and by
``Database.close``) stops the workers and unlinks every segment — the
runtime is the sole owner of every shared-memory name it created, so a
closed database provably leaves nothing in ``/dev/shm``.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from typing import TYPE_CHECKING

from ...columnar import shm as shm_codec
from ...errors import ReproError
from ...plan.logical import CachedScan, PlanNode, Scan, TableFunctionScan
from ..executor import ExecutionStats, NodeStats
from ..store import StoreStats
from .transport import DEFAULT_RING_BYTES, ShmRing, spill_name
from .worker import worker_main

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...db import Database

_START_TIMEOUT = 120.0


class ShardError(ReproError):
    """A sharded execution failed permanently (retries exhausted)."""


class ShardUnavailable(ShardError):
    """The runtime cannot take the query (closed mid-flight); the
    recycler falls back to local in-process execution."""


class _WorkerDied(Exception):
    """Internal: the leased worker process died; respawn and requeue."""


class _Worker:
    __slots__ = ("index", "generation", "process", "conn", "ring", "seq")

    def __init__(self, index: int, generation: int, process, conn,
                 ring: ShmRing) -> None:
        self.index = index
        self.generation = generation
        self.process = process
        self.conn = conn
        self.ring = ring
        self.seq = 0


class RemoteOutcome:
    """What one remote execution returned to the recycler."""

    __slots__ = ("table", "stats", "stores")

    def __init__(self, table, stats: ExecutionStats,
                 stores: list[tuple[int, object, StoreStats]]) -> None:
        self.table = table
        self.stats = stats
        #: ``(post-order position, table, StoreStats)`` per store the
        #: worker materialized — the parent replays admission.
        self.stores = stores


class ShardRuntime:
    """N worker processes sharing this database's registered tables."""

    def __init__(self, db: "Database", workers: int,
                 ring_bytes: int = DEFAULT_RING_BYTES,
                 retry_limit: int = 2) -> None:
        if workers < 1:
            raise ShardError("shard runtime needs at least one worker")
        self.workers = workers
        self.ring_bytes = ring_bytes
        self.retry_limit = retry_limit
        self._vector_size = db.recycler.vector_size
        self._cost_model = db.recycler.cost_model
        self._ctx = multiprocessing.get_context("spawn")
        self._closed = False
        self._lock = threading.Condition()
        self.stats = {"remote_queries": 0, "local_fallbacks": 0,
                      "worker_deaths": 0, "requeues": 0, "spills": 0}

        # Share every registered table once, pinning the versions the
        # workers serve; queries against later versions run locally.
        snapshot = db.catalog.snapshot()
        self._segments: list = []
        self._table_specs: list[tuple[str, str]] = []
        self._table_versions: dict[str, int] = {}
        for name in snapshot.table_names():
            segment = shm_codec.share_table(snapshot.table(name))
            self._segments.append(segment)
            self._table_specs.append((name, segment.name))
            self._table_versions[name.lower()] = \
                snapshot.table_version(name)

        # Ship every table function that pickles (TableBackedFunction
        # rebinds over the worker's shared tables); opaque callables
        # stay parent-only and keep their plans local.
        self._function_specs: list[tuple[str, bytes, object, float]] = []
        self._function_versions: dict[str, int] = {}
        for name in snapshot.function_names():
            entry = snapshot.function_entry(name)
            try:
                blob = pickle.dumps(entry.function)
            except Exception:
                continue
            self._function_specs.append(
                (name, blob, entry.schema, entry.invocation_cost))
            self._function_versions[name.lower()] = \
                snapshot.function_version(name)

        self._workers: list[_Worker] = []
        self._free: list[_Worker] = []
        try:
            for index in range(workers):
                worker = self._spawn(index, generation=0)
                self._workers.append(worker)
                self._free.append(worker)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int, generation: int) -> _Worker:
        ring = ShmRing.create(self.ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(index, child_conn, ring.name, self._table_specs,
                  self._function_specs, self._vector_size,
                  self._cost_model),
            name=f"repro-shard-{index}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(_START_TIMEOUT):
            process.kill()
            ring.close()
            raise ShardError(f"shard worker {index} failed to start")
        ready = parent_conn.recv()
        assert ready[0] == "ready", ready
        return _Worker(index, generation, process, parent_conn, ring)

    def _respawn(self, worker: _Worker) -> _Worker:
        """Replace a dead worker in place (caller holds the lease)."""
        self._reap(worker, sweep_spills=True)
        replacement = self._spawn(worker.index, worker.generation + 1)
        with self._lock:
            self._workers[self._workers.index(worker)] = replacement
        return replacement

    def _reap(self, worker: _Worker, sweep_spills: bool) -> None:
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=10)
        if sweep_spills and worker.seq:
            # The worker may have died between writing a spill segment
            # and reporting it; spill names are deterministic, so probe.
            for index in range(8):
                try:
                    spill = shm_codec.attach_segment(
                        spill_name(worker.ring.name, worker.seq, index))
                except FileNotFoundError:
                    break
                shm_codec.close_segment(spill, unlink=True)
        worker.ring.close()

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def _lease(self) -> _Worker:
        with self._lock:
            while not self._free:
                if self._closed:
                    raise ShardUnavailable("shard runtime is closed")
                self._lock.wait(timeout=1.0)
            if self._closed:
                raise ShardUnavailable("shard runtime is closed")
            return self._free.pop()

    def _release(self, worker: _Worker) -> None:
        with self._lock:
            if not self._closed and worker in self._workers:
                self._free.append(worker)
                self._lock.notify()

    # ------------------------------------------------------------------
    # the recycler-facing interface
    # ------------------------------------------------------------------
    def eligible(self, prepared) -> bool:
        """Cold plans over shared tables only (see module docstring)."""
        if self._closed:
            return False
        if prepared.reuses:
            self.stats["local_fallbacks"] += 1
            return False
        snapshot = prepared.snapshot
        for node in prepared.executed_plan.walk():
            remote_ok = self._node_remote_ok(node, snapshot)
            if not remote_ok:
                self.stats["local_fallbacks"] += 1
                return False
        return True

    def _node_remote_ok(self, node: PlanNode, snapshot) -> bool:
        if isinstance(node, CachedScan):
            return False
        if isinstance(node, TableFunctionScan):
            shared = self._function_versions.get(node.function)
            return shared is not None and snapshot is not None \
                and snapshot.function_version(node.function) == shared
        if isinstance(node, Scan):
            shared = self._table_versions.get(node.table.lower())
            if shared is None or snapshot is None or \
                    snapshot.table_version(node.table) != shared:
                return False
        return True

    def execute(self, prepared, cancel_token=None) -> RemoteOutcome:
        """Run ``prepared.executed_plan`` on a worker; see class doc."""
        plan = prepared.executed_plan
        nodes = list(plan.walk())
        position_of = {id(node): position
                       for position, node in enumerate(nodes)}
        store_positions = sorted(position_of[key]
                                 for key in prepared.stores)
        attempts = 0
        while True:
            worker = self._lease()
            try:
                outcome = self._dispatch(worker, plan, store_positions,
                                         cancel_token)
            except _WorkerDied:
                self.stats["worker_deaths"] += 1
                try:
                    worker = self._respawn(worker)
                finally:
                    self._release(worker)
                attempts += 1
                if attempts > self.retry_limit:
                    raise ShardError(
                        f"query failed after {attempts} worker"
                        f" death(s)") from None
                self.stats["requeues"] += 1
                continue
            except BaseException:
                self._release(worker)
                raise
            self._release(worker)
            self.stats["remote_queries"] += 1
            return outcome

    # ------------------------------------------------------------------
    def _dispatch(self, worker: _Worker, plan: PlanNode,
                  store_positions: list[int],
                  cancel_token) -> RemoteOutcome:
        worker.seq += 1
        seq = worker.seq
        remaining = cancel_token.remaining() \
            if cancel_token is not None else None
        try:
            worker.conn.send(("task", seq, plan, store_positions,
                              remaining))
        except (BrokenPipeError, OSError):
            raise _WorkerDied from None
        poll_interval = 0.05 if cancel_token is not None else 0.5
        cancel_sent = False
        while True:
            try:
                if worker.conn.poll(poll_interval):
                    message = worker.conn.recv()
                    break
            except (EOFError, OSError):
                raise _WorkerDied from None
            if not worker.process.is_alive():
                # drain a result that raced the death notification
                try:
                    if worker.conn.poll(0):
                        message = worker.conn.recv()
                        break
                except (EOFError, OSError):
                    pass
                raise _WorkerDied from None
            if cancel_token is not None and not cancel_sent \
                    and cancel_token.aborted:
                worker.ring.set_cancel(seq)
                cancel_sent = True
        kind = message[0]
        if kind == "err":
            if cancel_token is not None:
                # a parent-initiated abort surfaces as the parent's own
                # QueryCancelled/QueryTimeout type, not the worker's
                cancel_token.check()
            raise message[2]
        assert kind == "ok" and message[1] == seq, message
        return self._decode(worker, message[2])

    def _decode(self, worker: _Worker, payload: dict) -> RemoteOutcome:
        table = self._decode_section(worker, payload["root"])
        stores = []
        for position, section, meta in payload["stores"]:
            stores.append((position,
                           self._decode_section(worker, section),
                           StoreStats(measured_cost=meta[0], rows=meta[1],
                                      size_bytes=meta[2],
                                      store_overhead=meta[3])))
        node_stats = {
            position: NodeStats(self_cost=ns[0], cumulative_cost=ns[1],
                                rows_out=ns[2], bytes_out=ns[3],
                                exhausted=ns[4])
            for position, ns in payload["node_stats"].items()}
        stats = ExecutionStats(total_cost=payload["total_cost"],
                               wall_seconds=payload["wall_seconds"],
                               node_stats=node_stats,
                               store_overhead=payload["store_overhead"],
                               num_stored=payload["num_stored"],
                               physical_root=None, remote=True)
        return RemoteOutcome(table, stats, stores)

    def _decode_section(self, worker: _Worker, section):
        if section[0] == "ring":
            _, offset, nbytes, advance = section
            try:
                table, _ = shm_codec.decode_table(
                    worker.ring.view(offset, nbytes), copy=True)
            finally:
                worker.ring.consume(advance)
            return table
        _, name, _nbytes = section
        self.stats["spills"] += 1
        spill = shm_codec.attach_segment(name)
        try:
            table, _ = shm_codec.decode_table(spill.buf, copy=True)
        finally:
            shm_codec.close_segment(spill, unlink=True)
        return table

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop every worker and unlink every shared-memory segment
        this runtime created.  Idempotent; safe while queries run —
        in-flight remote queries fail over to local execution via
        :class:`ShardUnavailable`."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
            workers = list(self._workers)
            self._workers.clear()
            self._lock.notify_all()
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=5)
            self._reap(worker, sweep_spills=False)
        for segment in self._segments:
            shm_codec.close_segment(segment, unlink=True)
        self._segments.clear()

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{self.workers} workers"
        return f"ShardRuntime({state})"
