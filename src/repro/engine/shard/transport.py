"""Shared-memory result ring: pickle-free batch transport, worker → parent.

One ring per worker, single-producer/single-consumer, with the *data
plane* in shared memory and the *control plane* on the worker's
``multiprocessing.Pipe``: the worker encodes result tables into the
ring (``repro.columnar.shm`` codec), then sends a tiny metadata message
naming the ``(offset, length, advance)`` of each section; the parent
copies the payload out and advances the tail.  Only metadata ever
crosses the pipe — no batch is pickled.

Synchronization is by alternation, not atomics: a worker runs one task
at a time, writing ring sections strictly before its result message and
never touching the ring again until the next task, which the parent
sends strictly after consuming the sections.  The pipe's send/recv
syscalls order the shared-memory writes between the processes, so no
torn read of ``head``/``tail`` is possible.  The one concurrently
written slot is ``cancel_seq`` (parent writes while the worker runs):
it carries a small monotonic sequence number whose high word is always
zero, so even a torn 8-byte write is harmless.

Results larger than the ring spill to a one-off segment with a
deterministic name (``<ring>o<seq>x<idx>``) so the parent can sweep
spills of a worker that died before its result message arrived.
"""

from __future__ import annotations

import struct

from ...columnar import shm as shm_codec

#: ring header: int64 head, int64 tail (bytes, monotonic), int64
#: cancel_seq, int64 pad.
_HEADER = 32
_HEAD = 0
_TAIL = 8
_CANCEL = 16
_INT = struct.Struct("<q")

DEFAULT_RING_BYTES = 16 * 1024 * 1024


class ShmRing:
    """The per-worker result ring (see module docstring)."""

    def __init__(self, segment, owner: bool) -> None:
        self.segment = segment
        self.owner = owner
        self.buf = segment.buf
        self.capacity = len(self.buf) - _HEADER

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, nbytes: int = DEFAULT_RING_BYTES) -> "ShmRing":
        segment = shm_codec.create_segment(_HEADER + nbytes)
        segment.buf[:_HEADER] = b"\0" * _HEADER
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        return cls(shm_codec.attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self.segment.name

    def close(self) -> None:
        self.buf = None
        shm_codec.close_segment(self.segment, unlink=self.owner)

    # ------------------------------------------------------------------
    def _load(self, slot: int) -> int:
        return _INT.unpack_from(self.buf, slot)[0]

    def _store(self, slot: int, value: int) -> None:
        _INT.pack_into(self.buf, slot, value)

    # ------------------------------------------------------------------
    # writer (worker) side
    # ------------------------------------------------------------------
    def reserve(self, nbytes: int) -> tuple[int, int] | None:
        """Claim ``nbytes`` of contiguous ring space.

        Returns ``(buffer_offset, advance)`` — ``advance`` includes any
        wrap padding and is what the reader passes to :meth:`consume` —
        or ``None`` when the payload can never fit (spill to a one-off
        segment).  Space is always available by alternation: the parent
        consumed every prior section before sending the current task.
        """
        if nbytes > self.capacity:
            return None
        head = self._load(_HEAD)
        tail = self._load(_TAIL)
        pos = head % self.capacity
        pad = self.capacity - pos if pos + nbytes > self.capacity else 0
        advance = pad + nbytes
        if advance > self.capacity - (head - tail):
            # Cannot happen under the one-task-at-a-time protocol unless
            # a single result's sections exceed the ring; spill instead.
            return None
        self._store(_HEAD, head + advance)
        return _HEADER + (pos + pad) % self.capacity, advance

    # ------------------------------------------------------------------
    # reader (parent) side
    # ------------------------------------------------------------------
    def view(self, offset: int, nbytes: int) -> memoryview:
        return memoryview(self.buf)[offset:offset + nbytes]

    def consume(self, advance: int) -> None:
        self._store(_TAIL, self._load(_TAIL) + advance)

    # ------------------------------------------------------------------
    # cancellation slot
    # ------------------------------------------------------------------
    def set_cancel(self, seq: int) -> None:
        """Parent: request cancellation of task ``seq`` (and every
        earlier one — sequence numbers are per-worker monotonic)."""
        self._store(_CANCEL, seq)

    def cancel_seq(self) -> int:
        """Worker: the highest task sequence the parent cancelled."""
        return self._load(_CANCEL)


def spill_name(ring_name: str, seq: int, index: int) -> str:
    """Deterministic name for an overflow segment, reconstructable by
    the parent when the worker dies before reporting it."""
    return f"{ring_name.lstrip('/')}o{seq}x{index}"
