"""Process-sharded execution: worker processes over shared-memory tables.

The recycler stays authoritative in the parent process — matching,
subsumption, in-flight sharing, and cache admission are unchanged —
while *cold plan execution* fans out to worker processes that map the
registered tables zero-copy from shared memory and return results
pickle-free through a shared-memory ring.  See
``docs/ARCHITECTURE.md`` ("Execution modes").
"""

from .pool import ShardError, ShardRuntime, ShardUnavailable

__all__ = ["ShardError", "ShardRuntime", "ShardUnavailable"]
