"""Shard worker: one process hosting an engine over shared tables.

Spawned (never forked — the parent runs a maintenance thread) by
:class:`~repro.engine.shard.pool.ShardRuntime`.  On startup the worker
attaches every registered-table segment — fixed-width columns map as
zero-copy views, strings decode once — and builds a private
:class:`~repro.columnar.catalog.Catalog` over them.  It then serves
tasks from its pipe one at a time:

* a task names an executed logical plan (pickled — control plane, not
  batch data), the post-order positions to materialize for the
  recycler, and the remaining deadline;
* execution runs the ordinary engine (:func:`execute_plan`) under a
  :class:`_ShardToken` that additionally polls the ring's cancel slot
  per batch, so the parent can abort a running task within one batch;
* the result table and every materialized store table are encoded into
  the ring (or a deterministic spill segment) and a metadata-only
  message reports their sections plus per-node statistics — the parent
  replays store decisions, admits to the cache, and annotates the
  recycler graph from these.

Store requests here are always ``MODE_MATERIALIZE`` collectors: the
speculation benefit model lives in the parent, which replays
``decide`` with the *exact* measured numbers on return — the same
end-of-stream exact decision a thread-mode ``StoreOp`` makes.
"""

from __future__ import annotations

import pickle

from ...columnar import shm as shm_codec
from ...columnar.catalog import Catalog, TableBackedFunction
from ...columnar.table import Table
from ...errors import ExecutionError
from ..cancellation import CancellationToken
from ..cost import CostModel
from ..executor import execute_plan
from ..store import MODE_MATERIALIZE, StoreRequest
from .transport import ShmRing, spill_name


class _ShardToken(CancellationToken):
    """A cancellation token that also polls the ring's cancel slot.

    The parent cancels task ``seq`` by writing ``seq`` into the slot;
    sequence numbers are per-worker monotonic, so ``cancel_seq >= seq``
    means *this* task.  The poll is one 8-byte read per batch.
    """

    __slots__ = ("_ring", "_seq")

    def __init__(self, ring: ShmRing, seq: int,
                 timeout: float | None = None) -> None:
        super().__init__(timeout=timeout)
        self._ring = ring
        self._seq = seq

    def _poll(self) -> None:
        if not self._cancelled and self._ring.cancel_seq() >= self._seq:
            self.cancel()

    def check(self) -> None:
        self._poll()
        super().check()

    @property
    def aborted(self) -> bool:
        self._poll()
        return self._cancelled or self.expired


def _ship_table(ring: ShmRing, table: Table, seq: int, index: int):
    """Encode ``table`` into the ring, spilling oversized results to a
    one-off segment; returns the section descriptor for the message."""
    nbytes = shm_codec.encoded_nbytes(table)
    reserved = ring.reserve(nbytes)
    if reserved is None:
        name = spill_name(ring.name, seq, index)
        spill = shm_codec.create_segment(nbytes, name=name)
        shm_codec.encode_table(table, spill.buf)
        spill.close()  # the parent attaches, decodes, and unlinks
        return ("spill", name, nbytes)
    offset, advance = reserved
    shm_codec.encode_table(table, ring.buf, offset=offset)
    return ("ring", offset, nbytes, advance)


def _run_task(catalog: Catalog, ring: ShmRing, msg: tuple,
              vector_size: int, cost_model: CostModel) -> dict:
    _, seq, plan, store_positions, remaining = msg
    nodes = list(plan.walk())
    collected: dict[int, tuple[Table, object]] = {}
    stores = {}
    for position in store_positions:
        stores[id(nodes[position])] = StoreRequest(
            mode=MODE_MATERIALIZE, tag=position,
            on_complete=lambda table, stats, tag:
                collected.__setitem__(tag, (table, stats)))
    token = _ShardToken(ring, seq, timeout=remaining)
    result = execute_plan(plan, catalog, stores=stores,
                          vector_size=vector_size, cost_model=cost_model,
                          query_id=seq, token=token)
    sections = {"root": _ship_table(ring, result.table, seq, 0)}
    store_payload = []
    for index, position in enumerate(sorted(collected)):
        table, sstats = collected[position]
        store_payload.append((
            position, _ship_table(ring, table, seq, index + 1),
            (sstats.measured_cost, sstats.rows, sstats.size_bytes,
             sstats.store_overhead)))
    stats = result.stats
    sections["stores"] = store_payload
    sections["total_cost"] = stats.total_cost
    sections["wall_seconds"] = stats.wall_seconds
    sections["store_overhead"] = stats.store_overhead
    sections["num_stored"] = stats.num_stored
    sections["node_stats"] = {
        position: (ns.self_cost, ns.cumulative_cost, ns.rows_out,
                   ns.bytes_out, ns.exhausted)
        for position, ns in stats.node_stats.items()}
    return sections


def worker_main(worker_id: int, conn, ring_name: str,
                table_specs: list[tuple[str, str]],
                function_specs: list[tuple[str, bytes, object, float]],
                vector_size: int, cost_model: CostModel) -> None:
    """Entry point of one shard worker process (spawn target)."""
    ring = ShmRing.attach(ring_name)
    catalog = Catalog()
    segments = []  # keep the mappings alive behind the zero-copy views
    for table_name, segment_name in table_specs:
        table, segment = shm_codec.attach_table(segment_name)
        segments.append(segment)
        catalog.register_table(table_name, table, compute_stats=False)
    for function_name, blob, schema, invocation_cost in function_specs:
        function = pickle.loads(blob)
        if isinstance(function, TableBackedFunction):
            # rebuild over this process's (zero-copy shared) table
            function.bind(catalog)
        catalog.register_function(function_name, function, schema,
                                  invocation_cost=invocation_cost)
    conn.send(("ready", worker_id))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent went away
        if msg[0] == "stop":
            break
        seq = msg[1]
        try:
            payload = _run_task(catalog, ring, msg, vector_size,
                                cost_model)
            reply = ("ok", seq, payload)
        except BaseException as exc:
            reply = ("err", seq, exc)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception:
            # an exception that cannot pickle: degrade to its repr
            conn.send(("err", seq,
                       ExecutionError(f"shard worker failed: {reply!r}")))
    try:
        conn.close()
    except OSError:  # pragma: no cover - teardown best effort
        pass
