"""Run a physical plan to completion and collect execution statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..columnar.batch import VECTOR_SIZE
from ..columnar.catalog import CatalogView
from ..columnar.table import Table
from ..errors import QueryAborted
from ..plan.logical import PlanNode
from .base import PhysicalOperator, QueryContext
from .cancellation import CancellationToken
from .compile import compile_plan
from .cost import DEFAULT_COST_MODEL, CostModel
from .scan import ReuseScanOp
from .store import StoreOp, StoreRequest


@dataclass
class NodeStats:
    """Per-logical-node execution measurements."""

    self_cost: float
    cumulative_cost: float   # subtree cost, store overheads excluded
    rows_out: int
    bytes_out: int
    #: the operator ran to end-of-stream — only exhausted nodes carry
    #: complete measurements worth annotating into the recycler graph.
    #: Shipped across the process boundary in sharded mode, where the
    #: parent has no physical tree to inspect.
    exhausted: bool = False


@dataclass
class ExecutionStats:
    """Everything measured while executing one query."""

    total_cost: float
    wall_seconds: float
    #: keyed by the logical node's post-order position in the executed
    #: plan — stable across queries, unlike ``id()`` which the allocator
    #: reuses once plans are garbage-collected.
    node_stats: dict[int, NodeStats] = field(default_factory=dict)
    store_overhead: float = 0.0
    reuse_cost: float = 0.0
    num_reused: int = 0
    num_stored: int = 0
    physical_root: PhysicalOperator | None = None
    #: the plan ran in a shard worker process: ``physical_root`` is
    #: None and graph annotation walks ``node_stats`` by plan position
    #: instead (``Recycler._annotate_remote``).
    remote: bool = False


@dataclass
class QueryResult:
    """A materialized result plus its execution statistics.

    ``table`` is the full query result as an immutable columnar
    :class:`~repro.columnar.table.Table` (``table.to_rows()`` for a
    row-tuple view).  ``stats`` carries deterministic cost units, wall
    time, and per-plan-node measurements; ``result.record`` — attached
    by the recycler after finalize — is the
    :class:`~repro.recycler.recycler.QueryRecord` log entry with reuse
    and stall counters.
    """

    table: Table
    stats: ExecutionStats
    #: the recycler's QueryRecord for this query, attached by
    #: ``Recycler.execute`` after finalize (opaque to the engine).
    record: object | None = None


def execute_plan(plan: PlanNode, catalog: CatalogView,
                 stores: Mapping[int, StoreRequest] | None = None,
                 vector_size: int = VECTOR_SIZE,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 query_id: int = 0,
                 token: CancellationToken | None = None) -> QueryResult:
    """Compile and run ``plan``; returns the result and statistics.

    ``token`` makes the run abortable: operators check it per batch and
    raise :class:`~repro.errors.QueryCancelled` /
    :class:`~repro.errors.QueryTimeout` mid-execution.  On such an
    abort the operator tree is still closed — with the token tripped,
    pending store operators *reject* instead of draining their input
    (see ``StoreOp._close``), so an aborted run never feeds the cache.
    """
    ctx = QueryContext(catalog, vector_size=vector_size,
                       cost_model=cost_model, query_id=query_id,
                       token=token)
    root = compile_plan(plan, ctx, stores)
    started = time.perf_counter()
    batches = []
    try:
        root.open()
        while True:
            batch = root.next()
            if batch is None:
                break
            batches.append(batch)
    except QueryAborted:
        # Cooperative abort — possibly mid-open (a deadline can expire
        # while a table function runs in _open): tear the tree down
        # (store operators see the tripped token and abort rather than
        # drain, firing on_abort) and let the error unwind to the
        # recycler, which abandons the prepared query.
        root.close()
        raise
    root.close()
    wall = time.perf_counter() - started
    schema = plan.output_schema(catalog)
    table = Table.from_batches(schema, batches)
    stats = collect_stats(root, ctx, wall, plan=plan)
    return QueryResult(table=table, stats=stats)


def collect_stats(root: PhysicalOperator, ctx: QueryContext,
                  wall_seconds: float,
                  plan: PlanNode | None = None) -> ExecutionStats:
    """Aggregate per-operator measurements after a run.

    ``plan`` (the executed logical plan) provides the stable node ids;
    operators whose logical node is not part of it get fresh negative
    keys so nothing silently collides.
    """
    stats = ExecutionStats(total_cost=ctx.meter.total,
                           wall_seconds=wall_seconds,
                           physical_root=root)
    node_ids: dict[int, int] = {}
    if plan is not None:
        node_ids = {id(node): position
                    for position, node in enumerate(plan.walk())}
    _collect(root, stats, node_ids)
    return stats


def _collect(op: PhysicalOperator, stats: ExecutionStats,
             node_ids: dict[int, int]) -> float:
    """Post-order; returns subtree cost with store overheads excluded."""
    subtree = sum(_collect(child, stats, node_ids)
                  for child in op.children)
    if isinstance(op, StoreOp):
        stats.store_overhead += op.self_cost
        stats.num_stored += 1 if op.state == "materializing" else 0
        return subtree  # store overhead excluded from node costs
    subtree += op.self_cost
    if isinstance(op, ReuseScanOp):
        stats.reuse_cost += op.self_cost
        stats.num_reused += 1
    if op.logical is not None:
        key = node_ids.get(id(op.logical))
        if key is None:
            key = -1 - len(stats.node_stats)
        stats.node_stats[key] = NodeStats(
            self_cost=op.self_cost,
            cumulative_cost=subtree,
            rows_out=op.rows_out,
            bytes_out=op.bytes_out,
            exhausted=op.exhausted)
    return subtree
