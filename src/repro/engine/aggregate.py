"""Blocking hash aggregation (GROUP BY) and duplicate elimination.

The operator consumes its whole input, groups with the shared
:mod:`grouping` utilities, then streams the grouped result in vectors.
Scalar aggregation (no group keys) always emits exactly one row; on empty
input the aggregates default to zero (the engine has no NULLs — a
documented simplification).

Cancellation: the consume loop checks the query's token per input batch,
so a cancelled query aborts during the build; the vectorized grouping
itself (one numpy pass over the consumed input) runs to completion and
the abort lands at the next emitted batch.
"""

from __future__ import annotations

import numpy as np

from ..columnar import types as t
from ..columnar.batch import Batch, concat_batches
from ..errors import ExecutionError
from ..plan.logical import Aggregate, Distinct
from .base import PhysicalOperator, QueryContext
from .grouping import GroupedRows, count_distinct_per_group, factorize


class AggregateOp(PhysicalOperator):
    """Vectorized blocking GROUP BY."""

    def __init__(self, ctx: QueryContext, logical: Aggregate,
                 child: PhysicalOperator) -> None:
        schema = logical.output_schema(ctx.catalog)
        super().__init__(ctx, logical, [child], schema)
        self._group_keys = logical.group_keys
        self._aggregates = logical.aggregates
        self._result: Batch | None = None
        self._emitted = 0
        self._done_building = False

    # ------------------------------------------------------------------
    def _build(self) -> None:
        child = self.children[0]
        batches: list[Batch] = []
        rows = 0
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = child.next()
            if batch is None:
                break
            rows += len(batch)
            self.charge(len(batch)
                        * self.ctx.cost_model.aggregate_input_tuple)
            batches.append(batch)
        self._result = self._aggregate(batches, rows)
        self.charge(len(self._result)
                    * self.ctx.cost_model.aggregate_group)
        self._done_building = True

    def _aggregate(self, batches: list[Batch], rows: int) -> Batch:
        child_schema = self.children[0].schema
        if rows == 0:
            return self._empty_result(child_schema)
        data = concat_batches(batches)
        key_arrays = [expr.eval(data) for _, expr in self._group_keys]
        agg_inputs = {}
        for agg in self._aggregates:
            if agg.arg is not None:
                agg_inputs[agg.name] = np.asarray(agg.arg.eval(data))

        columns: dict[str, np.ndarray] = {}
        if self._group_keys:
            codes, _ = factorize(key_arrays)
            grouped = GroupedRows(codes)
            for (name, _), arr in zip(self._group_keys, key_arrays):
                columns[name] = grouped.representatives(arr)
            for agg in self._aggregates:
                if agg.func == "count_distinct":
                    columns[agg.name] = count_distinct_per_group(
                        codes, agg_inputs[agg.name])
                else:
                    columns[agg.name] = _grouped_agg(
                        agg.func, grouped, agg_inputs.get(agg.name))
        else:
            for agg in self._aggregates:
                columns[agg.name] = _scalar_agg(agg.func, rows,
                                                agg_inputs.get(agg.name))
        return Batch(columns)

    def _empty_result(self, child_schema) -> Batch:
        if self._group_keys:
            return Batch.empty(self.schema.names, self.schema.types)
        columns = {}
        for agg in self._aggregates:
            dtype = self.schema.type_of(agg.name)
            if dtype is t.STRING:
                empty = np.empty(1, dtype=object)
                empty[0] = ""
                columns[agg.name] = empty
            else:
                columns[agg.name] = np.zeros(1, dtype=dtype.numpy_dtype)
        return Batch(columns)

    # ------------------------------------------------------------------
    def _next(self) -> Batch | None:
        if not self._done_building:
            self._build()
        assert self._result is not None
        if self._emitted >= len(self._result):
            return None
        stop = min(self._emitted + self.ctx.vector_size, len(self._result))
        batch = self._result.slice(self._emitted, stop)
        self._emitted = stop
        return batch

    def progress(self) -> float:
        if not self._done_building:
            return self.children[0].progress()
        total = len(self._result) if self._result is not None else 0
        return 1.0 if total == 0 else self._emitted / total

    def cost_progress(self) -> float:
        # Blocking: essentially all cost is spent once the build is done.
        if not self._done_building:
            return self.children[0].cost_progress()
        return 1.0


def _grouped_agg(func: str, grouped: GroupedRows,
                 values: np.ndarray | None) -> np.ndarray:
    if func == "count_star":
        return grouped.reduce_count()
    if values is None:
        raise ExecutionError(f"aggregate {func} missing its argument")
    if func == "sum":
        result = grouped.reduce_sum(_widen_for_sum(values))
        return result
    if func == "count":
        return grouped.reduce_count()
    if func == "avg":
        sums = grouped.reduce_sum(values.astype(np.float64))
        return sums / grouped.reduce_count()
    if func == "min":
        return grouped.reduce_min(values)
    if func == "max":
        return grouped.reduce_max(values)
    raise ExecutionError(f"unknown aggregate {func!r}")


def _scalar_agg(func: str, rows: int,
                values: np.ndarray | None) -> np.ndarray:
    if func == "count_star":
        return np.array([rows], dtype=np.int64)
    if values is None:
        raise ExecutionError(f"aggregate {func} missing its argument")
    if func == "count_distinct":
        return np.array([len(np.unique(values))], dtype=np.int64)
    if func == "sum":
        return np.array([_widen_for_sum(values).sum()])
    if func == "count":
        return np.array([len(values)], dtype=np.int64)
    if func == "avg":
        return np.array([float(values.astype(np.float64).mean())])
    if func == "min":
        if values.dtype.kind == "O":
            out = np.empty(1, dtype=object)
            out[0] = min(values.tolist())
            return out
        return np.array([values.min()], dtype=values.dtype)
    if func == "max":
        if values.dtype.kind == "O":
            out = np.empty(1, dtype=object)
            out[0] = max(values.tolist())
            return out
        return np.array([values.max()], dtype=values.dtype)
    raise ExecutionError(f"unknown aggregate {func!r}")


def _widen_for_sum(values: np.ndarray) -> np.ndarray:
    """Sum bools and narrow ints as int64, floats as float64."""
    if values.dtype.kind == "b":
        return values.astype(np.int64)
    if values.dtype.kind in ("i", "u"):
        return values.astype(np.int64)
    return values.astype(np.float64)


class DistinctOp(PhysicalOperator):
    """Blocking duplicate elimination over all columns."""

    def __init__(self, ctx: QueryContext, logical: Distinct,
                 child: PhysicalOperator) -> None:
        super().__init__(ctx, logical, [child], child.schema)
        self._result: Batch | None = None
        self._emitted = 0
        self._done_building = False

    def _build(self) -> None:
        child = self.children[0]
        batches = []
        rows = 0
        while True:
            self.ctx.token.check()  # per-input-batch cancellation point
            batch = child.next()
            if batch is None:
                break
            rows += len(batch)
            self.charge(len(batch)
                        * self.ctx.cost_model.distinct_input_tuple)
            batches.append(batch)
        data = concat_batches(batches, schema=self.schema)
        if len(data) == 0:
            self._result = data
        else:
            codes, _ = factorize([data.column(n) for n in data.names])
            grouped = GroupedRows(codes)
            first_rows = grouped.order[grouped.starts]
            self._result = data.take(np.sort(first_rows))
        self._done_building = True

    def _next(self) -> Batch | None:
        if not self._done_building:
            self._build()
        assert self._result is not None
        if self._emitted >= len(self._result):
            return None
        stop = min(self._emitted + self.ctx.vector_size, len(self._result))
        batch = self._result.slice(self._emitted, stop)
        self._emitted = stop
        return batch

    def progress(self) -> float:
        if not self._done_building:
            return self.children[0].progress()
        total = len(self._result) if self._result is not None else 0
        return 1.0 if total == 0 else self._emitted / total

    def cost_progress(self) -> float:
        # Blocking: essentially all cost is spent once the build is done.
        if not self._done_building:
            return self.children[0].cost_progress()
        return 1.0
