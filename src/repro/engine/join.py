"""Hash join: build on the right child, stream-probe the left child.

Supports inner, left/right/full outer, semi, and anti joins with
equality keys plus an optional extra (non-equi) predicate evaluated over
the combined row — the way correlated EXISTS conditions (e.g. TPC-H
Q21's ``l2.l_suppkey <> l1.l_suppkey``) are expressed after unnesting.

The engine has no NULLs: outer padding uses type defaults (0, 0.0,
empty string).  Consumers that need a match indicator compare against a
key column's default (all generated keys are positive).

Right/full outer joins reuse the same radix/searchsorted build: a
matched-mask over the build side is updated on every probe batch, and
once the probe side is exhausted the unmatched build rows are emitted in
build order with the probe columns padded — one extra pass over the
build table, no second index.

Cancellation: both the build and the probe loop are per-batch
cancellation points, so a cancelled query aborts mid-build (input
batches consumed so far are dropped) or mid-probe within one batch.
"""

from __future__ import annotations

import numpy as np

from ..columnar import types as t
from ..columnar.batch import Batch, concat_batches
from ..columnar.table import Schema
from ..plan.logical import Join
from .base import PhysicalOperator, QueryContext


def _pad_value(dtype: t.DataType):
    if dtype is t.STRING:
        return ""
    return 0


#: re-densify packed key codes before the code space reaches this bound
#: (int64 headroom: the next column's cardinality can never push a
#: re-densified code — at most ``num_rows`` distinct values — past 2^63).
_RADIX_LIMIT = 2 ** 53


class _BuildIndex:
    """Hash index over the build side's key columns.

    A single integer key sorts the build values once (stable) and
    probes by binary search.  Every other key shape — multi-column,
    strings, floats, dates — is *packed* onto that same path: each key
    column factorizes to dense per-column codes (``np.unique``), the
    codes radix-combine into one int64 per row, and whenever the
    combined code space would approach int64 overflow the partial codes
    re-densify through another ``np.unique`` pass.  Probing maps probe
    values onto the build dictionaries by binary search (misses become
    the never-present code -1) and reuses the sorted probe.

    Match order is byte-identical to the per-row dict this replaces:
    probe-major, build matches in build order — the final argsort is
    stable and packing is injective on build keys.  NaN keys never
    match (``NaN != NaN`` fails the probe equality check), exactly as
    dict lookups of fresh float objects never matched.
    """

    def __init__(self, data: Batch, keys: list[str]) -> None:
        self.data = data
        self.num_rows = len(data)
        key_arrays = [data.column(k) for k in keys]
        self._single_int = (len(key_arrays) == 1
                            and key_arrays[0].dtype.kind in ("i", "u"))
        if self._single_int:
            values = key_arrays[0].astype(np.int64)
        else:
            values = self._pack_build(key_arrays)
        self._order = np.argsort(values, kind="stable")
        self._sorted = values[self._order]

    # ------------------------------------------------------------------
    # composite-key packing
    # ------------------------------------------------------------------
    def _pack_build(self, key_arrays: list[np.ndarray]) -> np.ndarray:
        #: per column: the sorted build-side value dictionary.
        self._uniques: list[np.ndarray] = []
        #: per column after the first: the sorted partial-code
        #: dictionary of a re-densify step, or None when none was needed.
        self._redensify: list[np.ndarray | None] = []
        codes: np.ndarray | None = None
        card = 1
        for arr in key_arrays:
            uniques, col_codes = np.unique(arr, return_inverse=True)
            col_codes = col_codes.astype(np.int64, copy=False)
            self._uniques.append(uniques)
            col_card = max(len(uniques), 1)
            if codes is None:
                codes, card = col_codes, col_card
                continue
            if card * col_card >= _RADIX_LIMIT:
                packed = np.unique(codes)
                codes = np.searchsorted(packed, codes)
                card = len(packed)
                self._redensify.append(packed)
            else:
                self._redensify.append(None)
            codes = codes * col_card + col_codes
            card *= col_card
        if codes is None:  # pragma: no cover - joins always have keys
            codes = np.zeros(self.num_rows, dtype=np.int64)
        return codes

    def _pack_probe(self, key_arrays: list[np.ndarray]) -> np.ndarray:
        n = len(key_arrays[0])
        valid = np.ones(n, dtype=bool)
        codes: np.ndarray | None = None
        for i, arr in enumerate(key_arrays):
            uniques = self._uniques[i]
            col_card = max(len(uniques), 1)
            if len(uniques):
                idx = np.searchsorted(uniques, arr)
                clipped = np.minimum(idx, len(uniques) - 1)
                valid &= (idx < len(uniques)) \
                    & np.asarray(uniques[clipped] == arr, dtype=bool)
                col_codes = clipped.astype(np.int64, copy=False)
            else:  # empty build side: nothing can match
                valid[:] = False
                col_codes = np.zeros(n, dtype=np.int64)
            if codes is None:
                codes = col_codes
                continue
            packed = self._redensify[i - 1]
            if packed is not None:
                idx = np.searchsorted(packed, codes)
                clipped = np.minimum(idx, len(packed) - 1)
                valid &= (idx < len(packed)) & (packed[clipped] == codes)
                codes = clipped
            codes = codes * col_card + col_codes
        assert codes is not None
        # -1 never occurs among (non-negative) build codes: a probe row
        # that missed any per-column dictionary finds no match.
        return np.where(valid, codes, -1)

    # ------------------------------------------------------------------
    def probe(self, key_arrays: list[np.ndarray]
              ) -> tuple[np.ndarray, np.ndarray]:
        """Return (probe_positions, build_positions) for all matches.

        ``probe_positions`` repeats a probe row index once per matching
        build row; both arrays are aligned.
        """
        if self._single_int:
            values = key_arrays[0].astype(np.int64)
        else:
            values = self._pack_probe(key_arrays)
        lo = np.searchsorted(self._sorted, values, side="left")
        hi = np.searchsorted(self._sorted, values, side="right")
        counts = hi - lo
        probe_pos = np.repeat(np.arange(len(values)), counts)
        if len(probe_pos) == 0:
            return probe_pos, probe_pos.copy()
        # ranges [lo, hi) per probe row, flattened
        offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]])
        within = np.arange(counts.sum()) - np.repeat(offsets, counts)
        build_sorted_pos = np.repeat(lo, counts) + within
        return probe_pos, self._order[build_sorted_pos]


class HashJoinOp(PhysicalOperator):
    """Pipelined hash join (blocking on the build/right side)."""

    def __init__(self, ctx: QueryContext, logical: Join,
                 left: PhysicalOperator, right: PhysicalOperator) -> None:
        schema = logical.output_schema(ctx.catalog)
        super().__init__(ctx, logical, [left, right], schema)
        self._kind = logical.kind
        self._left_keys = logical.left_keys
        self._right_keys = logical.right_keys
        self._extra = logical.extra
        self._index: _BuildIndex | None = None
        self._right_schema: Schema = right.schema
        self._left_schema: Schema = left.schema
        #: right/full outer: which build rows matched any probe row.
        self._build_matched: np.ndarray | None = None
        self._tail_emitted = False

    # ------------------------------------------------------------------
    def _build(self) -> None:
        right = self.children[1]
        batches = []
        while True:
            self.ctx.token.check()  # per-build-batch cancellation point
            batch = right.next()
            if batch is None:
                break
            self.charge(len(batch) * self.ctx.cost_model.join_build_tuple)
            batches.append(batch)
        data = concat_batches(batches, schema=self._right_schema)
        self._index = _BuildIndex(data, self._right_keys)
        if self._kind in ("right", "full"):
            self._build_matched = np.zeros(self._index.num_rows,
                                           dtype=bool)

    # ------------------------------------------------------------------
    def _next(self) -> Batch | None:
        if self._index is None:
            self._build()
        assert self._index is not None
        left = self.children[0]
        while True:
            self.ctx.token.check()  # per-probe-batch cancellation point
            batch = left.next()
            if batch is None:
                return self._right_tail()
            self.charge(len(batch) * self.ctx.cost_model.join_probe_tuple)
            result = self._probe_batch(batch)
            if result is not None and len(result) > 0:
                self.charge(len(result)
                            * self.ctx.cost_model.join_output_tuple)
                return result
            # empty output for this probe batch: keep pulling

    def _probe_batch(self, batch: Batch) -> Batch | None:
        assert self._index is not None
        key_arrays = [batch.column(k) for k in self._left_keys]
        probe_pos, build_pos = self._index.probe(key_arrays)

        if self._extra is not None and len(probe_pos) > 0:
            combined = self._combine(batch, probe_pos, build_pos)
            keep = np.asarray(self._extra.eval(combined), dtype=bool)
            probe_pos, build_pos = probe_pos[keep], build_pos[keep]

        kind = self._kind
        if kind in ("right", "full"):
            assert self._build_matched is not None
            self._build_matched[build_pos] = True
        if kind in ("inner", "right"):
            # right outer emits matched pairs per batch; its padded
            # build-side tail streams after the probe side is exhausted
            if len(probe_pos) == 0:
                return None
            return self._combine(batch, probe_pos, build_pos)
        if kind == "semi":
            matched = np.unique(probe_pos)
            if len(matched) == 0:
                return None
            return batch.take(matched)
        if kind == "anti":
            matched_mask = np.zeros(len(batch), dtype=bool)
            matched_mask[probe_pos] = True
            if matched_mask.all():
                return None
            return batch.filter(~matched_mask)
        # left/full outer: matched rows expanded + unmatched probe rows
        # padded (full outer adds its build-side tail at end of stream)
        matched_mask = np.zeros(len(batch), dtype=bool)
        matched_mask[probe_pos] = True
        pieces: list[Batch] = []
        if len(probe_pos) > 0:
            pieces.append(self._combine(batch, probe_pos, build_pos))
        unmatched = np.flatnonzero(~matched_mask)
        if len(unmatched) > 0:
            pieces.append(self._pad(batch.take(unmatched)))
        if not pieces:
            return None
        if len(pieces) == 1:
            return pieces[0]
        return concat_batches(pieces)

    def _right_tail(self) -> Batch | None:
        """Unmatched build rows, probe columns padded — emitted once,
        after the probe side is exhausted (right/full outer only)."""
        if self._kind not in ("right", "full") or self._tail_emitted:
            return None
        self._tail_emitted = True
        assert self._index is not None and self._build_matched is not None
        unmatched = np.flatnonzero(~self._build_matched)
        if len(unmatched) == 0:
            return None
        self.charge(len(unmatched)
                    * self.ctx.cost_model.join_output_tuple)
        n = len(unmatched)
        columns: dict[str, np.ndarray] = {}
        for name in self._left_schema.names:
            dtype = self._left_schema.type_of(name)
            if dtype is t.STRING:
                arr = np.empty(n, dtype=object)
                arr[:] = ""
            else:
                arr = np.full(n, _pad_value(dtype),
                              dtype=dtype.numpy_dtype)
            columns[name] = arr
        for name in self._right_schema.names:
            columns[name] = self._index.data.column(name)[unmatched]
        return Batch(columns)

    def _combine(self, batch: Batch, probe_pos: np.ndarray,
                 build_pos: np.ndarray) -> Batch:
        assert self._index is not None
        columns: dict[str, np.ndarray] = {}
        for name in batch.names:
            columns[name] = batch.column(name)[probe_pos]
        for name in self._right_schema.names:
            columns[name] = self._index.data.column(name)[build_pos]
        return Batch(columns)

    def _pad(self, probe_rows: Batch) -> Batch:
        columns = dict(probe_rows.arrays)
        n = len(probe_rows)
        for name in self._right_schema.names:
            dtype = self._right_schema.type_of(name)
            if dtype is t.STRING:
                arr = np.empty(n, dtype=object)
                arr[:] = ""
            else:
                arr = np.full(n, _pad_value(dtype),
                              dtype=dtype.numpy_dtype)
            columns[name] = arr
        return Batch(columns)
