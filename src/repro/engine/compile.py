"""Compile logical plans into physical operator trees.

The recycler participates by handing the compiler a mapping
``id(logical_node) -> StoreRequest``; the compiled operator for such a node
gets wrapped in a :class:`~repro.engine.store.StoreOp`.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import PlanError
from ..plan.logical import (Aggregate, CachedScan, Distinct, Join, Limit,
                            PlanNode, Project, Scan, Select, Sort,
                            TableFunctionScan, TopN, UnionAll)
from .aggregate import AggregateOp, DistinctOp
from .base import PhysicalOperator, QueryContext
from .filter import FilterOp
from .join import HashJoinOp
from .project import ProjectOp
from .scan import ReuseScanOp, TableFunctionOp, TableScanOp
from .setops import LimitOp, UnionAllOp
from .sort import SortOp
from .store import StoreOp, StoreRequest
from .topn import TopNOp


def compile_plan(plan: PlanNode, ctx: QueryContext,
                 stores: Mapping[int, StoreRequest] | None = None
                 ) -> PhysicalOperator:
    """Build the physical tree for ``plan``; wrap nodes that have a
    pending :class:`StoreRequest` (keyed by ``id(logical_node)``)."""
    stores = stores or {}
    op = _compile(plan, ctx, stores)
    return op


def _compile(node: PlanNode, ctx: QueryContext,
             stores: Mapping[int, StoreRequest]) -> PhysicalOperator:
    op = _compile_bare(node, ctx, stores)
    request = stores.get(id(node))
    if request is not None:
        op = StoreOp(ctx, op, request)
    return op


def _compile_bare(node: PlanNode, ctx: QueryContext,
                  stores: Mapping[int, StoreRequest]) -> PhysicalOperator:
    if isinstance(node, Scan):
        return TableScanOp(ctx, node)
    if isinstance(node, TableFunctionScan):
        return TableFunctionOp(ctx, node)
    if isinstance(node, CachedScan):
        return ReuseScanOp(ctx, node, node.handle, node.rename, node.schema)
    if isinstance(node, Select):
        return FilterOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Project):
        return ProjectOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Aggregate):
        return AggregateOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Distinct):
        return DistinctOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Join):
        left = _compile(node.left, ctx, stores)
        right = _compile(node.right, ctx, stores)
        return HashJoinOp(ctx, node, left, right)
    if isinstance(node, TopN):
        return TopNOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Sort):
        return SortOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, Limit):
        return LimitOp(ctx, node, _compile(node.child, ctx, stores))
    if isinstance(node, UnionAll):
        children = [_compile(c, ctx, stores) for c in node.children]
        return UnionAllOp(ctx, node, children)
    raise PlanError(f"cannot compile logical node {node.op_name!r}")
