"""The ``store`` operator (paper Section II, III-D).

A store operator sits on top of a subtree and either

* **materializes** its input (decision already made from history),
* **buffers** it while *speculating* — extrapolating the input's final
  cost and size from run-time progress, then deciding — or
* **passes tuples along** untouched,

never interrupting the tuple flow.  The recycler stays decoupled from the
engine through a :class:`StoreRequest` of callbacks.

``on_complete`` feeds the recycler's **version-tagged admission**: the
completed result carries the producing query's catalog-snapshot
versions, and the cache refuses to publish it when a concurrent DDL has
already superseded any table it was computed from — so a store that
finishes scanning an old table incarnation (including the drain in
:meth:`StoreOp._close`) can never plant a stale entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..columnar.batch import Batch
from ..columnar.table import Table
from ..errors import QueryAborted
from .base import PhysicalOperator, QueryContext
from .scan import ReuseScanOp

MODE_MATERIALIZE = "materialize"
MODE_SPECULATE = "speculate"


@dataclass
class SpeculationEstimate:
    """Extrapolated properties of an in-flight result."""

    est_cost: float
    est_size_bytes: int
    est_rows: int
    progress: float
    exact: bool  # True when the stream finished before the decision


@dataclass
class StoreStats:
    """Measured properties of a fully produced result."""

    measured_cost: float      # cumulative subtree cost units, this run
    rows: int
    size_bytes: int
    store_overhead: float     # cost charged by the store itself
    wall_seconds: float = 0.0
    #: (handle, emit_cost) per cached result reused below this store —
    #: lets the recycler reconstruct the *base* cost (Eq. 2 inverse).
    reused: list[tuple[object, float]] = field(default_factory=list)


@dataclass
class StoreRequest:
    """What the recycler asks a store operator to do.

    ``tag`` is opaque to the engine (the recycler's graph node).
    ``decide`` is only consulted in speculation mode; ``on_complete`` fires
    when a result was fully materialized, and ``on_abort`` (optional) when
    speculation rejected the result.
    """

    mode: str
    tag: object = None
    on_complete: Callable[[Table, StoreStats, object], None] | None = None
    decide: Callable[[SpeculationEstimate, object], bool] | None = None
    on_abort: Callable[[object], None] | None = None
    buffer_budget_bytes: int = 32 * 1024 * 1024
    min_progress: float = 0.05


_STATE_BUFFERING = "buffering"
_STATE_MATERIALIZING = "materializing"
_STATE_PASSING = "passing"


class StoreOp(PhysicalOperator):
    """Materialize / speculate / pass through (transparent to the plan)."""

    def __init__(self, ctx: QueryContext, child: PhysicalOperator,
                 request: StoreRequest) -> None:
        super().__init__(ctx, child.logical, [child], child.schema)
        self.request = request
        if request.mode == MODE_MATERIALIZE:
            self._state = _STATE_MATERIALIZING
        elif request.mode == MODE_SPECULATE:
            self._state = _STATE_BUFFERING
        else:
            raise ValueError(f"unknown store mode {request.mode!r}")
        self._buffer: list[Batch] = []
        self._buffered_rows = 0
        self._buffered_bytes = 0
        self._finished = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def _next(self) -> Batch | None:
        child = self.children[0]
        batch = child.next()
        if batch is None:
            self._on_end_of_stream()
            return None
        if self._state == _STATE_MATERIALIZING:
            self._retain(batch, charge_materialize=True)
        elif self._state == _STATE_BUFFERING:
            self.charge(len(batch) * self.ctx.cost_model.store_buffer_tuple)
            self._retain(batch, charge_materialize=False)
            self._maybe_decide()
        return batch

    def _retain(self, batch: Batch, charge_materialize: bool) -> None:
        self._buffer.append(batch)
        self._buffered_rows += len(batch)
        nbytes = batch.nbytes()
        self._buffered_bytes += nbytes
        if charge_materialize:
            model = self.ctx.cost_model
            self.charge(len(batch) * model.store_materialize_tuple
                        + nbytes * model.store_materialize_byte)

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def _maybe_decide(self) -> None:
        progress = self.children[0].progress()
        over_budget = self._buffered_bytes > self.request.buffer_budget_bytes
        if progress < self.request.min_progress and not over_budget:
            return
        estimate = self._estimate(progress, exact=False)
        self._apply_decision(estimate)

    def _estimate(self, progress: float, exact: bool) -> SpeculationEstimate:
        if exact or progress >= 1.0:
            return SpeculationEstimate(
                est_cost=self.children[0].cumulative_cost(),
                est_size_bytes=self._buffered_bytes,
                est_rows=self._buffered_rows,
                progress=1.0, exact=True)
        progress = max(progress, 1e-6)
        # Cost extrapolates by *cost* progress (blocking subtrees have
        # already accrued nearly all their cost); size by row progress.
        cost_progress = max(self.children[0].cost_progress(), progress)
        return SpeculationEstimate(
            est_cost=self.children[0].cumulative_cost() / cost_progress,
            est_size_bytes=int(self._buffered_bytes / progress),
            est_rows=int(self._buffered_rows / progress),
            progress=progress, exact=False)

    def _apply_decision(self, estimate: SpeculationEstimate) -> None:
        decide = self.request.decide
        accept = bool(decide(estimate, self.request.tag)) if decide else False
        if accept:
            self._state = _STATE_MATERIALIZING
            # Buffered tuples were only charged buffering cost; charge the
            # materialization premium retroactively.
            model = self.ctx.cost_model
            self.charge(self._buffered_rows * model.store_materialize_tuple
                        + self._buffered_bytes
                        * model.store_materialize_byte)
        else:
            self._state = _STATE_PASSING
            self._buffer = []
            self._buffered_rows = 0
            self._buffered_bytes = 0
            if self.request.on_abort is not None:
                self.request.on_abort(self.request.tag)

    # ------------------------------------------------------------------
    def _close(self) -> None:
        """Drain and finish a pending materialization.

        A parent (e.g. the ``Limit`` the proactive top-N strategy places
        above a store) may stop pulling early.  A store that decided to
        materialize still owes the cache the *complete* result — that is
        the very cost the proactive strategy signed up for — so it keeps
        pulling its child to exhaustion.  An undecided speculative store
        first decides from the current extrapolation.

        A **cancelled or past-deadline query is the exception**: its
        store must neither drain the child (that is exactly the work
        cancellation exists to stop) nor publish the partial buffer.
        With the context token tripped the store aborts instead —
        ``on_complete`` never fires, so nothing reaches the cache, and
        ``on_abort`` releases the in-flight registration so consumers
        stalled on this node wake immediately (the recycler's
        ``abandon`` then retires the whole token as a backstop).
        """
        if self._finished:
            return
        if self.ctx.token.aborted:
            self._finished = True
            if self._state != _STATE_PASSING:
                self._apply_decision_reject()
            return
        if self._state == _STATE_BUFFERING:
            progress = self.children[0].progress()
            if progress >= self.request.min_progress:
                self._apply_decision(self._estimate(progress, exact=False))
            else:
                self._apply_decision_reject()
        if self._state == _STATE_MATERIALIZING:
            child = self.children[0]
            try:
                while True:
                    batch = child.next()
                    if batch is None:
                        break
                    self._retain(batch, charge_materialize=True)
            except QueryAborted:
                # The deadline (or a cancel) fired while draining for
                # the *cache* — the query's own answer is already
                # delivered, so give up on materializing instead of
                # failing a finished query.
                self._finished = True
                self._apply_decision_reject()
                return
            self._on_end_of_stream()

    def _apply_decision_reject(self) -> None:
        self._state = _STATE_PASSING
        self._buffer = []
        self._buffered_rows = 0
        self._buffered_bytes = 0
        if self.request.on_abort is not None:
            self.request.on_abort(self.request.tag)

    def _on_end_of_stream(self) -> None:
        if self._finished:
            return
        self._finished = True
        if self._state == _STATE_BUFFERING:
            # Stream ended before a decision: decide with exact numbers.
            self._apply_decision(self._estimate(1.0, exact=True))
        if self._state == _STATE_MATERIALIZING:
            table = Table.from_batches(self.schema, self._buffer)
            reused = [(op._handle, op.self_cost)
                      for op in self.children[0].walk()
                      if isinstance(op, ReuseScanOp)]
            stats = StoreStats(
                measured_cost=self.children[0].cumulative_cost(),
                rows=table.num_rows,
                size_bytes=table.nbytes(),
                store_overhead=self.self_cost,
                reused=reused)
            if self.request.on_complete is not None:
                self.request.on_complete(table, stats, self.request.tag)
