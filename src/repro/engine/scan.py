"""Leaf operators: base-table scan, table-function scan, cached-result scan.

Leaves emit one vector per ``next()`` call, so the base class's
per-batch token check makes every scan loop a cancellation point; the
one-shot table-function invocation in ``TableFunctionOp._open`` is
guarded by the check in ``PhysicalOperator.open`` (it cannot be
interrupted once running — cancellation is cooperative).

Snapshot semantics (online DDL): ``ctx.catalog`` is the query's pinned
:class:`~repro.columnar.catalog.CatalogSnapshot`.  ``TableScanOp``
resolves its table exactly once, at construction, against that
snapshot and holds the immutable :class:`~repro.columnar.table.Table`
for its whole lifetime — there is **no mid-execution re-resolution**,
so a concurrent ``register_table``/``append_rows``/``drop_table`` can
never make one query observe a mix of old and new rows.
"""

from __future__ import annotations

from ..columnar.batch import Batch
from ..columnar.table import Schema, Table
from ..plan.logical import PlanNode, Scan, TableFunctionScan
from .base import PhysicalOperator, QueryContext


class TableScanOp(PhysicalOperator):
    """Scan a base table, emitting only the requested columns."""

    def __init__(self, ctx: QueryContext, logical: Scan) -> None:
        table = ctx.catalog.table(logical.table).select(logical.columns)
        super().__init__(ctx, logical, [], table.schema)
        self._table = table
        self._offset = 0

    def _next(self) -> Batch | None:
        if self._offset >= self._table.num_rows:
            return None
        stop = min(self._offset + self.ctx.vector_size,
                   self._table.num_rows)
        batch = self._table.to_batch().slice(self._offset, stop)
        self._offset = stop
        self.charge(len(batch) * self.ctx.cost_model.scan_tuple)
        return batch

    def progress(self) -> float:
        total = self._table.num_rows
        return 1.0 if total == 0 else self._offset / total


class TableFunctionOp(PhysicalOperator):
    """Evaluate a catalog table function once, then stream its result.

    The per-invocation cost registered in the catalog is charged up front —
    this is what makes e.g. the SkyServer cone search an expensive (and
    therefore cache-worthy) leaf.
    """

    def __init__(self, ctx: QueryContext, logical: TableFunctionScan) -> None:
        entry = ctx.catalog.function_entry(logical.function)
        super().__init__(ctx, logical, [], entry.schema)
        self._entry = entry
        self._args = logical.args
        self._table: Table | None = None
        self._offset = 0

    def _open(self) -> None:
        self._table = self.ctx.catalog.call_function(self._entry.name,
                                                     self._args)
        self.charge(self._entry.invocation_cost)

    def _next(self) -> Batch | None:
        assert self._table is not None, "operator not opened"
        if self._offset >= self._table.num_rows:
            return None
        stop = min(self._offset + self.ctx.vector_size,
                   self._table.num_rows)
        batch = self._table.to_batch().slice(self._offset, stop)
        self._offset = stop
        self.charge(len(batch) * self.ctx.cost_model.table_function_tuple)
        return batch

    def progress(self) -> float:
        if self._table is None or self._table.num_rows == 0:
            return 1.0 if self._table is not None else 0.0
        return self._offset / self._table.num_rows


class ReuseScanOp(PhysicalOperator):
    """Stream a cached (recycled) result, optionally renaming columns.

    ``handle`` is any object with a ``table`` attribute (the recycler's
    cache entry); ``rename`` maps cached (graph) column names to the names
    the consuming query expects.
    """

    def __init__(self, ctx: QueryContext, logical: PlanNode | None,
                 handle, rename: dict[str, str] | None,
                 schema: Schema) -> None:
        super().__init__(ctx, logical, [], schema)
        self._handle = handle
        self._rename = dict(rename or {})
        self._offset = 0
        self._table: Table | None = None

    def _open(self) -> None:
        table = self._handle.table
        if self._rename:
            table = table.rename(self._rename)
        # Project/order to the expected schema (cached results may carry
        # extra columns when column subsumption applied).
        self._table = table.select(self.schema.names)

    def _next(self) -> Batch | None:
        assert self._table is not None, "operator not opened"
        if self._offset >= self._table.num_rows:
            return None
        stop = min(self._offset + self.ctx.vector_size,
                   self._table.num_rows)
        batch = self._table.to_batch().slice(self._offset, stop)
        self._offset = stop
        self.charge(len(batch) * self.ctx.cost_model.reuse_tuple)
        return batch

    def progress(self) -> float:
        if self._table is None:
            return 0.0
        total = self._table.num_rows
        return 1.0 if total == 0 else self._offset / total
