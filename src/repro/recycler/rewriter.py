"""Rewriting rules 2 and 3 of the recycler (paper Section II).

Rule 1 (bottom-up match/insert) lives in :mod:`repro.recycler.matching`.
This module implements

* **reuse substitution** (top-down): the highest query subtrees whose
  graph node has a cached result are replaced by a
  :class:`~repro.plan.logical.CachedScan`; when exact matching found no
  cached result, subsumption edges are consulted and a compensation plan
  is built instead (Section IV-A);
* **store planning**: deciding which nodes of the plan-to-execute receive
  ``store`` operators — history-based materialize decisions at rewrite
  time, and speculation stores on never-executed expensive-looking nodes
  (decided at run time, Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..columnar.catalog import CatalogView
from ..engine.cost import CostModel
from ..engine.store import (MODE_MATERIALIZE, MODE_SPECULATE, StoreRequest)
from ..plan.logical import (Aggregate, CachedScan, Distinct, PlanNode,
                            TableFunctionScan, TopN)
from .cache import RecyclerCache
from .benefit import BenefitModel
from .config import RecyclerConfig
from .graph import GraphNode, RecyclerGraph
from .inflight import InFlightRegistry
from .matching import MatchResult
from .subsumption import SubsumptionIndex, build_compensation


@dataclass
class ReuseInfo:
    """One reuse performed by the rewriter."""

    target: GraphNode        # the query node's graph node
    provider: GraphNode      # whose cached result was used
    kind: str                # "exact" | "subsumption"


@dataclass
class RewriteOutcome:
    """Result of the reuse-substitution pass."""

    plan: PlanNode
    reuses: list[ReuseInfo] = field(default_factory=list)
    #: cached entries *not* consumed because recomputing the subtree is
    #: cheaper than re-emitting the stored rows (cost-gated reuse).
    cost_skips: int = 0


def substitute_reuse(plan: PlanNode, matches: MatchResult,
                     graph: RecyclerGraph, cache: RecyclerCache,
                     subsumption: SubsumptionIndex | None,
                     config: RecyclerConfig,
                     catalog: CatalogView,
                     cost_model: CostModel | None = None
                     ) -> RewriteOutcome:
    """Top-down reuse substitution over a matched query tree.

    Replaced subtrees disappear from the executed plan; untouched nodes
    keep their identity so the match annotations stay valid.  Nodes whose
    children changed are re-created and re-registered under the same
    annotation.

    ``catalog`` is the query's pinned
    :class:`~repro.columnar.catalog.CatalogSnapshot`: a cached entry is
    only consumed when its version tags equal the snapshot's versions of
    the same tables/functions, in **either** direction — a post-DDL query
    must not reuse a pre-DDL result that invalidation has not swept yet,
    and a pre-DDL query must not reuse a post-DDL result (it owes its
    caller the snapshot it pinned).

    ``cost_model`` (passed when the plan optimizer is enabled) arms the
    per-subplan reuse-vs-recompute gate: a cached entry whose re-emission
    (``rows * reuse_tuple``, the exact charge of ``ReuseScanOp``) costs
    at least the subtree's measured base cost is *skipped* — recomputing
    is no slower and the children below it stay free to reuse their own,
    genuinely profitable, entries.  ``None`` reuses unconditionally (the
    paper's behaviour, and the ``optimize_plans=False`` path).
    """
    outcome = RewriteOutcome(plan=plan)

    def versions_current(graph_node: GraphNode, entry) -> bool:
        table_versions, function_versions = catalog.versions_for(
            graph_node.tables, graph_node.functions)
        return entry.versions_match(table_versions, function_versions)

    def rewrite(node: PlanNode) -> PlanNode:
        match = matches.of(node)
        graph_node = match.graph_node

        entry = graph_node.entry
        if entry is not None and not versions_current(graph_node, entry):
            entry = None  # another catalog incarnation's result
        if entry is not None and cost_model is not None and \
                graph_node.bcost > 0 and graph_node.rows >= 0 and \
                graph_node.rows * cost_model.reuse_tuple >= \
                graph_node.bcost:
            outcome.cost_skips += 1
            entry = None  # recomputing beats re-emitting this result
        if entry is not None:
            rename = {g: q for q, g in match.mapping.items()}
            schema = node.output_schema(catalog)
            outcome.reuses.append(
                ReuseInfo(graph_node, graph_node, "exact"))
            cache.note_reuse(entry)
            return CachedScan(entry, schema, rename=rename,
                              label=f"reuse:{graph_node.node_id}")

        if subsumption is not None and config.subsumption:
            provider = subsumption.find_cached_subsumer(graph_node)
            if provider is not None and provider.entry is not None and \
                    versions_current(provider, provider.entry):
                child_mapping = (matches.of(node.children[0]).mapping
                                 if node.children else {})
                compensation = build_compensation(
                    node, provider, match.mapping, child_mapping, catalog)
                if compensation is not None:
                    outcome.reuses.append(
                        ReuseInfo(graph_node, provider, "subsumption"))
                    cache.note_reuse(provider.entry)
                    # Subsumption references are tracked on the provider
                    # (paper Section IV-A requirement (b)).
                    graph.add_refs(provider, 1.0)
                    cache.refresh(provider)
                    return compensation

        new_children = [rewrite(child) for child in node.children]
        if all(new is old for new, old in
               zip(new_children, node.children)):
            return node
        replacement = node.with_children(new_children)
        matches.register(replacement, match)
        return replacement

    outcome.plan = rewrite(plan)
    return outcome


#: node types the paper designates for speculative stores: expected to be
#: expensive with small results ("e.g., the final result of a query, or
#: the result of an aggregation").
_SPECULATION_ELIGIBLE = (Aggregate, TopN, Distinct, TableFunctionScan)


@dataclass
class StorePlan:
    """Store requests keyed by ``id(plan node)`` plus bookkeeping."""

    requests: dict[int, StoreRequest] = field(default_factory=dict)
    history_targets: list[GraphNode] = field(default_factory=list)
    speculative_targets: list[GraphNode] = field(default_factory=list)


class StorePlanner:
    """Implements the final rewriting rule: inject store operators."""

    def __init__(self, graph: RecyclerGraph, model: BenefitModel,
                 cache: RecyclerCache, inflight: InFlightRegistry,
                 config: RecyclerConfig,
                 cost_model: CostModel | None = None) -> None:
        self.graph = graph
        self.model = model
        self.cache = cache
        self.inflight = inflight
        self.config = config
        self.cost_model = cost_model or CostModel()

    def plan_stores(self, executed_plan: PlanNode, matches: MatchResult,
                    producer_token: object,
                    on_complete, on_abort,
                    snapshot: CatalogView | None = None) -> StorePlan:
        """Choose store targets in ``executed_plan``.

        ``on_complete(table, stats, graph_node)`` /
        ``on_abort(graph_node)`` are the recycler callbacks wired into
        every request.

        ``snapshot`` is the query's pinned catalog view: a store is not
        even planned on a node whose dependencies a concurrent DDL has
        already moved past the snapshot — admission would reject the
        result anyway, so skipping avoids the materialization work and
        spares consumers a pointless in-flight wait.
        """
        plan = StorePlan()
        chosen: set[int] = set()
        root = executed_plan
        for node in executed_plan.walk():
            if isinstance(node, CachedScan) or not matches.contains(node):
                continue  # reuse leaves / compensation nodes
            match = matches.of(node)
            graph_node = match.graph_node
            if graph_node.is_materialized or \
                    graph_node.node_id in chosen:
                continue
            if not self.graph.is_live(graph_node):
                continue  # truncated while this query was stalled
            if snapshot is not None and \
                    self._snapshot_behind(graph_node, snapshot):
                continue  # DDL already outran this query's snapshot
            if self.inflight.producer_of(graph_node) is not None:
                continue  # a concurrent query is already producing it
            request = self._history_request(match, on_complete)
            if request is None:
                request = self._speculative_request(
                    node, match, node is root, on_complete, on_abort)
            if request is None:
                continue
            # First registration wins: plans on different stripes can
            # race to produce a shared node, and a cancelled (abandoned)
            # query must not plant a registration its finalize will
            # never release — either way, losing means no store.
            if not self.inflight.register(graph_node, producer_token):
                continue
            plan.requests[id(node)] = request
            chosen.add(graph_node.node_id)
            if request.mode == MODE_MATERIALIZE:
                plan.history_targets.append(graph_node)
            else:
                plan.speculative_targets.append(graph_node)
        return plan

    def _snapshot_behind(self, graph_node: GraphNode,
                         snapshot: CatalogView) -> bool:
        """True when the live catalog's versions of the node's
        dependencies have moved past ``snapshot``'s."""
        snap_tables, snap_functions = snapshot.versions_for(
            graph_node.tables, graph_node.functions)
        live_tables, live_functions = self.graph.catalog.versions_for(
            graph_node.tables, graph_node.functions)
        return (snap_tables, snap_functions) != \
            (live_tables, live_functions)

    # ------------------------------------------------------------------
    def _history_request(self, match, on_complete) -> StoreRequest | None:
        """History mode: materialization decided at rewrite time from
        recycler-graph statistics — only for results *seen before*."""
        if not self.config.history_enabled:
            return None
        graph_node = match.graph_node
        seen_before = (not match.inserted and graph_node.exec_count >= 1
                       and graph_node.size_bytes >= 0)
        if not seen_before:
            return None
        if self.graph.effective_refs(graph_node) < \
                self.config.store_min_refs:
            return None
        if graph_node.bcost < self.config.min_store_cost:
            return None
        # Materializing must beat its own overhead: writing the result
        # plus re-emitting it on reuse has to cost clearly less than
        # recomputing it (keeps plain scans out of the cache).
        overhead = (graph_node.size_bytes
                    * self.cost_model.store_materialize_byte
                    + max(graph_node.rows, 0)
                    * (self.cost_model.store_materialize_tuple
                       + self.cost_model.reuse_tuple))
        if self.model.true_cost(graph_node) < \
                self.config.store_overhead_factor * overhead:
            return None
        benefit = self.model.benefit(graph_node)
        if benefit < self.config.benefit_threshold:
            return None
        if not self.cache.would_admit(benefit, graph_node.size_bytes):
            return None
        return StoreRequest(mode=MODE_MATERIALIZE, tag=graph_node,
                            on_complete=on_complete)

    def _speculative_request(self, node: PlanNode, match, is_root: bool,
                             on_complete, on_abort) -> StoreRequest | None:
        """Speculation: buffer + decide at run time, for nodes that have
        never been executed (no statistics to decide from)."""
        if not self.config.speculation_enabled:
            return None
        graph_node = match.graph_node
        if graph_node.exec_count > 0:
            return None  # stats exist; history already said no
        if not is_root and not isinstance(node, _SPECULATION_ELIGIBLE):
            return None
        return StoreRequest(
            mode=MODE_SPECULATE, tag=graph_node,
            on_complete=on_complete, decide=self._decide, on_abort=on_abort,
            buffer_budget_bytes=self.config.speculation_buffer_bytes,
            min_progress=self.config.speculation_min_progress)

    def _decide(self, estimate, graph_node: GraphNode) -> bool:
        """Run-time speculative decision (paper Section III-D): Eq. 1 with
        the constant importance factor, checked against the cache."""
        if estimate.est_cost < self.config.speculation_min_cost:
            return False
        benefit = self.model.speculative_benefit(
            estimate.est_cost, estimate.est_size_bytes)
        if benefit < self.config.speculation_benefit_threshold:
            return False
        return self.cache.would_admit(benefit, estimate.est_size_bytes)
