"""The benefit metric (paper Section III-C).

``B(R) = cost(R) * hR / size(R)`` where

* ``cost(R)`` is the *true cost*: the stored base cost minus the base
  costs of the node's direct materialized descendants (Eq. 2) — if a DMD
  is cached, recomputation would start from it;
* ``hR`` is the importance factor: how many past queries (aged, Eq. 5)
  would have used this result given the current cache content;
* ``size(R)`` is the result's memory footprint.

This module also implements the incremental ``hR`` maintenance of
Algorithm 2 (on admission) and Eq. 4 (on eviction), and the reference
bookkeeping performed after each query's matching pass.
"""

from __future__ import annotations

from ..plan.logical import PlanNode
from .graph import GraphNode, RecyclerGraph
from .matching import MatchResult


class BenefitModel:
    """Benefit computation plus hR bookkeeping over a recycler graph."""

    def __init__(self, graph: RecyclerGraph,
                 speculation_h: float = 0.001) -> None:
        self.graph = graph
        self.speculation_h = speculation_h

    # ------------------------------------------------------------------
    # Eq. 2 and Eq. 1
    # ------------------------------------------------------------------
    def true_cost(self, node: GraphNode) -> float:
        """Base cost minus the base costs of direct materialized
        descendants (Eq. 2)."""
        cost = node.bcost
        for dmd in self.graph.dmds(node):
            cost -= dmd.bcost
        return max(cost, 0.0)

    def benefit(self, node: GraphNode,
                size_override: int | None = None) -> float:
        """Eq. 1 for a node with known (or overridden) size."""
        size = size_override if size_override is not None \
            else node.size_bytes
        if size is None or size < 0:
            return 0.0
        refs = self.graph.effective_refs(node)
        return self.true_cost(node) * refs / max(size, 1)

    def speculative_benefit(self, est_cost: float, est_size: int) -> float:
        """Eq. 1 with the paper's small constant importance factor."""
        return est_cost * self.speculation_h / max(est_size, 1)

    def truncation_score(self, node: GraphNode) -> float:
        """Victim-ordering key for cost-aware truncation: Eq. 1 is
        already benefit *per byte* (true cost × aged references / size),
        so the cheapest nodes to lose are exactly the lowest-benefit
        ones.  Never-executed nodes (unknown size/cost) score 0 and go
        first — they carry no measured value at all."""
        return self.benefit(node)

    # ------------------------------------------------------------------
    # reference bookkeeping after matching (Section III-C)
    # ------------------------------------------------------------------
    def record_query_references(self, plan: PlanNode,
                                matches: MatchResult) -> list[GraphNode]:
        """Increment ``hR`` of every pre-existing matched node that would
        have answered part of this query.

        A node is credited unless (a) this query inserted it, or (b) an
        ancestor *within the same matched region* is already materialized
        (the ancestor's result would have been used instead).  Returns the
        credited nodes (useful for cache refreshes).
        """
        credited: list[GraphNode] = []
        seen: set[int] = set()

        def visit(node: PlanNode, blocked: bool) -> None:
            match = matches.of(node)
            if match.inserted:
                # An inserted node starts a fresh region below: matched
                # descendants root their own shared subtrees.
                blocked = False
            else:
                graph_node = match.graph_node
                if not blocked and graph_node.node_id not in seen:
                    seen.add(graph_node.node_id)
                    self.graph.add_refs(graph_node, 1.0)
                    credited.append(graph_node)
                if graph_node.is_materialized:
                    blocked = True
            for child in node.children:
                visit(child, blocked)

        visit(plan, False)
        return credited

    # ------------------------------------------------------------------
    # Algorithm 2 (admission) and Eq. 4 (eviction)
    # ------------------------------------------------------------------
    def on_admit(self, node: GraphNode) -> list[GraphNode]:
        """Adjust descendants' ``hR`` when ``node`` is materialized.

        Every DMD and potential DMD loses the queries that will now be
        answered by ``node`` (Eq. 3 / Algorithm 2).  Returns the adjusted
        nodes so the cache can refresh the materialized ones' benefits.
        """
        h_node = self.graph.effective_refs(node)
        region = self.graph.materialized_frontier_region(node)
        for descendant in region:
            self.graph.add_refs(descendant, -h_node)
        return region

    def on_evict(self, node: GraphNode) -> list[GraphNode]:
        """Inverse adjustment when ``node`` leaves the cache (Eq. 4)."""
        h_node = self.graph.effective_refs(node)
        region = self.graph.materialized_frontier_region(node)
        for descendant in region:
            self.graph.add_refs(descendant, h_node)
        return region
