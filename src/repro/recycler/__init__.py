"""The recycler: intermediate-result recycling for pipelined engines."""

from .benefit import BenefitModel
from .cache import CacheCounters, CacheEntry, RecyclerCache
from .config import (ALL_MODES, MODE_HIST, MODE_OFF, MODE_PA, MODE_SPEC,
                     RecyclerConfig)
from .graph import GraphNode, RecyclerGraph
from .inflight import InFlightRegistry
from .maintenance import (ActivityTracker, MaintenanceManager,
                          MaintenanceStats)
from .matching import MatchResult, NodeMatch, match_tree
from .proactive import ProactiveRewriter
from .recycler import PreparedQuery, QueryRecord, Recycler
from .rewriter import ReuseInfo, StorePlanner, substitute_reuse
from .striping import LockStripes, plan_fingerprint
from .subsumption import SubsumptionIndex, build_compensation, subsumes

__all__ = [
    "ALL_MODES", "ActivityTracker", "BenefitModel", "CacheCounters",
    "CacheEntry", "GraphNode",
    "InFlightRegistry", "LockStripes", "MODE_HIST", "MODE_OFF", "MODE_PA",
    "MODE_SPEC", "MaintenanceManager", "MaintenanceStats", "MatchResult",
    "NodeMatch", "PreparedQuery", "ProactiveRewriter", "QueryRecord",
    "Recycler", "RecyclerCache", "RecyclerConfig", "RecyclerGraph",
    "ReuseInfo", "StorePlanner", "SubsumptionIndex", "build_compensation",
    "match_tree", "plan_fingerprint", "subsumes", "substitute_reuse",
]
