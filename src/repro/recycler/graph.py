"""The recycler graph (paper Sections II, III-A, III-B).

An AND-DAG unifying the optimized plans of all past queries.  Exactly
matching subtrees are stored once; each node carries

* a *graph-namespace* copy of its logical plan node (newly assigned column
  names are made unique by appending ``@<query id>``),
* the canonical parameter key / hash key / column-bitmask signature used
  by Algorithm 1's candidate lookup,
* per-node parent hash indexes plus a global leaf index,
* statistics: references ``hR`` (with lazy aging, Eq. 5), base cost,
  cardinality, result size, execution count, and
* the cache entry when the node's result is materialized.

Insertion uses optimistic concurrency control at node granularity: the
inserter validates that the anchor (child node or leaf bucket) was not
concurrently modified since matching read it, and otherwise raises
:class:`~repro.errors.ConcurrencyConflict` so the caller re-matches that
node — the backwards-validation restart of Section III-B.

Thread safety: matching reads (candidate lookups, version reads) run
lock-free; every mutation — insertion, aging, reference adjustment,
truncation — happens under the graph's internal lock, and insertion
validates the anchor versions inside that lock, which is what makes the
optimistic protocol sound under real threads.
"""

from __future__ import annotations

import heapq
import threading
from typing import Callable, Iterator

from ..columnar.catalog import Catalog, CatalogView
from ..columnar.table import Schema
from ..errors import ConcurrencyConflict, RecyclerError
from ..plan.logical import PlanNode, Scan, TableFunctionScan


class GraphNode:
    """One operator of the recycler graph."""

    __slots__ = (
        "node_id", "plan", "op_name", "params", "hashkey", "sig",
        "children", "parent_index", "assigned", "schema",
        "refs_raw", "age_event", "bcost", "rows", "size_bytes",
        "exec_count", "inserted_by", "last_access_event",
        "entry", "subsumers", "version", "tables", "functions",
        "table_incarnations", "function_incarnations",
    )

    def __init__(self, node_id: int, plan: PlanNode,
                 children: list["GraphNode"], assigned: list[str],
                 schema: Schema, inserted_by: int) -> None:
        self.node_id = node_id
        self.plan = plan
        self.op_name = plan.op_name
        self.params = plan.params_key(None)
        self.hashkey = plan.hashkey()
        self.sig = plan.signature(None)
        self.children = children
        self.parent_index: dict[tuple, list[GraphNode]] = {}
        self.assigned = assigned
        self.schema = schema
        # statistics (paper Fig. 3 annotations)
        self.refs_raw = 0.0
        self.age_event = 0
        self.bcost = 0.0
        self.rows = -1          # -1: never executed / unknown
        self.size_bytes = -1
        self.exec_count = 0
        self.inserted_by = inserted_by
        self.last_access_event = 0
        # cache / subsumption state
        self.entry = None       # CacheEntry | None
        self.subsumers: list[GraphNode] = []
        self.version = 0
        # dependency sets (catalog versioning): which base tables and
        # table functions this node's whole subtree reads — precomputed
        # so cache admission/invalidation never re-walks the plan.
        self.tables = frozenset(
            p.table for p in plan.walk() if isinstance(p, Scan))
        self.functions = frozenset(
            p.function for p in plan.walk()
            if isinstance(p, TableFunctionScan))
        # incarnation stamps of the inserting query's snapshot (set by
        # RecyclerGraph.insert_node): a drop or re-register bumps the
        # live incarnation past these, making the node *version-dead* —
        # unmatchable by new snapshots and collectable by GC.
        self.table_incarnations: dict[str, int] = {}
        self.function_incarnations: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def is_materialized(self) -> bool:
        return self.entry is not None

    @property
    def output_names(self) -> list[str]:
        return self.schema.names

    def parents(self) -> Iterator["GraphNode"]:
        # Snapshot the buckets: concurrent insertion may add a new hash
        # key while lock-free matching or benefit maintenance iterates.
        for bucket in list(self.parent_index.values()):
            yield from bucket

    def candidate_parents(self, hashkey: tuple,
                          sig: int) -> list["GraphNode"]:
        """Parents matching the hash key whose signature equals ``sig``.

        Exact bisimilar matches have identical (mapped) input column sets,
        so signature equality is a sound prune for exact matching.
        """
        return [p for p in self.parent_index.get(hashkey, ())
                if p.sig == sig]

    def matches_incarnations(self, view) -> bool:
        """Whether this node's incarnation stamps agree with ``view``
        (a :class:`~repro.columnar.catalog.CatalogView`).  Appends bump
        versions but not incarnations, so graph history survives the
        paper's committed-update model; a drop or full re-register makes
        this False forever — the node is version-dead."""
        for table in self.tables:
            if self.table_incarnations.get(table) != \
                    view.table_incarnation(table):
                return False
        for function in self.functions:
            if self.function_incarnations.get(function) != \
                    view.function_incarnation(function):
                return False
        return True

    def _register_parent(self, parent: "GraphNode") -> None:
        self.parent_index.setdefault(parent.hashkey, []).append(parent)
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mat = "*" if self.is_materialized else ""
        return (f"GraphNode#{self.node_id}{mat}({self.op_name},"
                f" refs={self.refs_raw:.2f}, bcost={self.bcost:.0f})")


class RecyclerGraph:
    """The unified AND-DAG over all past query plans."""

    def __init__(self, catalog: Catalog, alpha: float = 0.995) -> None:
        self.catalog = catalog
        self.alpha = alpha
        self.nodes: list[GraphNode] = []
        #: global hash table for leaves (paper: used to find candidate
        #: leaf nodes during matching), keyed by the leaf's hash key.
        self.leaf_index: dict[tuple, list[GraphNode]] = {}
        #: per-bucket insertion counters: the leaf analogue of a node's
        #: ``version``, validated by OCC leaf insertion.
        self._leaf_versions: dict[tuple, int] = {}
        #: global query-event counter driving lazy aging (Eq. 5).
        self.event = 0
        self._next_id = 0
        #: ids of nodes currently in the graph — O(1) liveness probe so
        #: store planning can skip nodes truncated while the planning
        #: query was blocked on an in-flight producer.
        self._live: set[int] = set()
        #: guards all mutations; matching reads stay lock-free (OCC).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # events & aging
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Advance the aging clock by one query event."""
        with self._lock:
            self.event += 1
            return self.event

    def effective_refs(self, node: GraphNode) -> float:
        """``hR`` after lazy aging to the current event (Eq. 5)."""
        with self._lock:
            self._age(node)
            return max(node.refs_raw, 0.0)

    def _age(self, node: GraphNode) -> None:
        if node.age_event == self.event or self.alpha >= 1.0:
            node.age_event = self.event
            return
        delta = self.event - node.age_event
        node.refs_raw *= self.alpha ** delta
        node.age_event = self.event

    def add_refs(self, node: GraphNode, amount: float) -> None:
        """Age, then adjust raw ``hR`` (used by Alg. 2 / Eq. 3 / Eq. 4)."""
        with self._lock:
            self._age(node)
            node.refs_raw += amount

    def record_execution(self, node: GraphNode, bcost: float, rows: int,
                         size_bytes: int) -> None:
        """Annotate measured statistics after an execution (atomically:
        finalize of different plans sharing ``node`` may race, and the
        ``exec_count`` increment is a read-modify-write)."""
        with self._lock:
            node.bcost = bcost
            node.rows = rows
            node.size_bytes = size_bytes
            node.exec_count += 1
            node.last_access_event = self.event

    def record_measurement(self, node: GraphNode, bcost: float, rows: int,
                           size_bytes: int) -> None:
        """Store-completion statistics (atomic like
        :meth:`record_execution`, but no execution-count bump — the
        producing query's finalize annotation owns that)."""
        with self._lock:
            node.bcost = bcost
            node.rows = rows
            node.size_bytes = size_bytes

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidate_leaves(self, hashkey: tuple, sig: int) -> list[GraphNode]:
        return [n for n in self.leaf_index.get(hashkey, ())
                if n.sig == sig]

    def leaf_bucket_version(self, hashkey: tuple) -> int:
        """Insertion counter of one leaf bucket.  Matching reads it before
        scanning candidates; leaf insertion validates it (leaf OCC)."""
        return self._leaf_versions.get(hashkey, 0)

    def is_live(self, node: GraphNode) -> bool:
        """Whether ``node`` is still part of the graph (not truncated).

        Lock-free set probe: callers holding a stale reference (matched
        before a truncation ran) use it to skip ghost nodes."""
        return node.node_id in self._live

    def leaves_for_table_any_columns(self,
                                     hashkey_prefix: tuple
                                     ) -> list[GraphNode]:
        """All leaf nodes sharing a hash key (signature ignored) —
        used by column subsumption on scans."""
        return list(self.leaf_index.get(hashkey_prefix, ()))

    # ------------------------------------------------------------------
    # insertion (optimistic, node granularity)
    # ------------------------------------------------------------------
    def insert_node(self, query_node: PlanNode,
                    graph_children: list[GraphNode],
                    input_mapping: dict[str, str],
                    assigned_mapping: dict[str, str],
                    query_id: int,
                    expected_versions: list[int] | None = None,
                    expected_leaf_version: int | None = None,
                    catalog: CatalogView | None = None
                    ) -> GraphNode:
        """Copy ``query_node`` into the graph (atomically).

        ``expected_versions`` carries the versions of the anchor children
        observed during matching; ``expected_leaf_version`` carries the
        leaf bucket's insertion counter for leaf inserts.  A mismatch
        means a concurrent insertion changed the neighbourhood and the
        caller must re-match (:class:`ConcurrencyConflict`).

        ``catalog`` is the inserting query's pinned snapshot (schema
        resolution must agree with what the query was bound against);
        it defaults to the live catalog for legacy callers.
        """
        with self._lock:
            if expected_versions is not None:
                for child, version in zip(graph_children,
                                          expected_versions):
                    if child.version != version:
                        raise ConcurrencyConflict(
                            f"node {child.node_id} changed during"
                            f" matching")
            if not graph_children and expected_leaf_version is not None \
                    and self._leaf_versions.get(query_node.hashkey(), 0) \
                    != expected_leaf_version:
                raise ConcurrencyConflict(
                    f"leaf bucket {query_node.hashkey()!r} changed"
                    f" during matching")
            graph_plan = query_node.remapped(
                input_mapping, assigned_mapping,
                [c.plan for c in graph_children])
            assigned = [assigned_mapping.get(n, n)
                        for n in query_node.assigned_names()]
            schema = self._graph_schema(query_node, input_mapping,
                                        assigned_mapping, self._next_id,
                                        catalog or self.catalog)
            node = GraphNode(self._next_id, graph_plan, graph_children,
                             assigned, schema, query_id)
            view = catalog or self.catalog
            node.table_incarnations, node.function_incarnations = \
                view.incarnations_for(node.tables, node.functions)
            self._next_id += 1
            node.age_event = self.event
            # A fresh node counts as accessed *now*: its inserting query
            # is still running, so truncation must treat it as recent.
            node.last_access_event = self.event
            self.nodes.append(node)
            self._live.add(node.node_id)
            if not graph_children:
                self.leaf_index.setdefault(node.hashkey, []).append(node)
                self._leaf_versions[node.hashkey] = \
                    self._leaf_versions.get(node.hashkey, 0) + 1
            else:
                for child in graph_children:
                    child._register_parent(node)
            return node

    def _graph_schema(self, query_node: PlanNode,
                      input_mapping: dict[str, str],
                      assigned_mapping: dict[str, str],
                      node_id: int,
                      catalog: CatalogView | None = None) -> Schema:
        """The node's output schema in graph namespace.

        Computed positionally from the (collision-free) query-namespace
        schema: assigned outputs take their graph-unique names, the rest
        translate through the input mapping.  Two *pass-through* columns
        from different unified subtrees can still collide (each came from
        a different original query); such survivors are disambiguated
        with a node-unique suffix — matching pairs names positionally, so
        the rename is transparent to every consumer.
        """
        query_schema = query_node.output_schema(catalog or self.catalog)
        names: list[str] = []
        seen: set[str] = set()
        for name in query_schema.names:
            graph_name = assigned_mapping.get(name) \
                or input_mapping.get(name, name)
            while graph_name in seen:
                graph_name = f"{graph_name}@n{node_id}"
            seen.add(graph_name)
            names.append(graph_name)
        return Schema(names, query_schema.types)

    # ------------------------------------------------------------------
    # structure queries used by the benefit machinery
    # ------------------------------------------------------------------
    def dmds(self, node: GraphNode) -> list[GraphNode]:
        """Direct materialized descendants (paper Section III-C)."""
        out: list[GraphNode] = []
        seen: set[int] = set()

        def descend(current: GraphNode) -> None:
            for child in current.children:
                if child.node_id in seen:
                    continue
                seen.add(child.node_id)
                if child.is_materialized:
                    out.append(child)
                else:
                    descend(child)

        descend(node)
        return out

    def materialized_frontier_region(self, node: GraphNode
                                     ) -> list[GraphNode]:
        """All descendants reachable without crossing a materialized node,
        *including* the materialized frontier itself — exactly the set
        Algorithm 2 adjusts (DMDs and potential DMDs)."""
        out: list[GraphNode] = []
        seen: set[int] = set()

        def descend(current: GraphNode) -> None:
            for child in current.children:
                if child.node_id in seen:
                    continue
                seen.add(child.node_id)
                out.append(child)
                if not child.is_materialized:
                    descend(child)

        descend(node)
        return out

    def materialized_ancestor_frontier(self, node: GraphNode
                                       ) -> list[GraphNode]:
        """Nearest materialized ancestors (stop climbing at each)."""
        out: list[GraphNode] = []
        seen: set[int] = set()

        def climb(current: GraphNode) -> None:
            for parent in current.parents():
                if parent.node_id in seen:
                    continue
                seen.add(parent.node_id)
                if parent.is_materialized:
                    out.append(parent)
                else:
                    climb(parent)

        climb(node)
        return out

    # ------------------------------------------------------------------
    # truncation (paper Section II: "the recycler graph has to be
    # truncated periodically ... e.g. by periodically removing subtrees
    # that have not been accessed for some time")
    # ------------------------------------------------------------------
    def truncate(self, min_idle_events: int,
                 pinned: set[int] | frozenset[int] = frozenset(),
                 stop: Callable[[], bool] | None = None,
                 stats: dict | None = None) -> int:
        """Remove nodes idle for more than ``min_idle_events`` query
        events.

        A node is kept when it was accessed recently, is materialized,
        is **pinned** (``pinned`` carries node ids that must survive —
        the recycler pins every in-flight node, since a producer holds a
        direct reference it will annotate and admit through), or is a
        (transitive) child of a kept node — subtrees stay intact so the
        remaining statistics and matching structure are consistent.
        Returns the number of removed nodes.

        ``stop`` is a cooperative cancellation hook (the maintenance
        manager passes its shutdown flag): it is consulted at the two
        phase boundaries — before the keep-set scan and again before
        the mutation is applied — and a fired stop abandons the cycle
        with the graph untouched, so shutdown mid-maintenance is prompt
        and never leaves a half-truncated graph.  ``stats``, when
        given, receives ``bytes_reclaimed`` — the summed result-size
        annotations of the removed nodes (sizes are unknown, counted 0,
        for nodes that never executed).
        """
        with self._lock:
            if stop is not None and stop():
                return 0
            cutoff = self.event - min_idle_events
            keep = self._keep_closure([
                node for node in self.nodes
                if node.is_materialized or
                node.node_id in pinned or
                node.last_access_event >= cutoff
            ])
            if stop is not None and stop():
                return 0
            removed = [n for n in self.nodes if n.node_id not in keep]
            return self._remove_nodes(removed, stats)

    def _keep_closure(self, seeds: list[GraphNode]) -> set[int]:
        """Ids of ``seeds`` plus every (transitive) child — the set a
        sweep must preserve so remaining structure stays consistent
        (a kept node's children are always kept).  Caller holds the
        lock."""
        keep: set[int] = set()
        stack = list(seeds)
        while stack:
            node = stack.pop()
            if node.node_id in keep:
                continue
            keep.add(node.node_id)
            stack.extend(node.children)
        return keep

    def _remove_nodes(self, removed: list[GraphNode],
                      stats: dict | None = None) -> int:
        """Detach ``removed`` from every index (caller holds the lock
        and guarantees the complement is child-closed).  Returns the
        number of removed nodes; accumulates ``bytes_reclaimed`` into
        ``stats``."""
        if not removed:
            return 0
        if stats is not None:
            stats["bytes_reclaimed"] = \
                stats.get("bytes_reclaimed", 0) + sum(
                    n.size_bytes for n in removed if n.size_bytes > 0)
        removed_ids = {n.node_id for n in removed}
        self.nodes = [n for n in self.nodes
                      if n.node_id not in removed_ids]
        self._live.difference_update(removed_ids)
        for node in removed:
            for child in node.children:
                bucket = child.parent_index.get(node.hashkey)
                if bucket and node in bucket:
                    bucket.remove(node)
                    child.version += 1
            if not node.children:
                bucket = self.leaf_index.get(node.hashkey)
                if bucket and node in bucket:
                    bucket.remove(node)
                    self._leaf_versions[node.hashkey] = \
                        self._leaf_versions.get(node.hashkey, 0) + 1
        for node in self.nodes:
            if node.subsumers:
                node.subsumers = [s for s in node.subsumers
                                  if s.node_id not in removed_ids]
        return len(removed)

    def truncate_budgeted(self, min_idle_events: int,
                          pinned: set[int] | frozenset[int] = frozenset(),
                          budget_bytes: int | None = None,
                          score: Callable[[GraphNode], float] | None = None,
                          stop: Callable[[], bool] | None = None,
                          stats: dict | None = None) -> tuple[int, bool]:
        """Cost-aware truncation: remove idle subtrees **lowest
        benefit-per-byte first**, stopping at a byte budget.

        Eligibility is the same as :meth:`truncate` (idle beyond
        ``min_idle_events``, not materialized, not pinned, not below a
        kept node); the difference is the order and the stopping rule —
        victims are drained through a min-heap on ``score`` (the
        recycler passes Eq. 1 benefit, which is already per byte), a
        node only becomes eligible once every parent was removed (so
        the survivor set stays child-closed at every prefix), and the
        cycle honours the byte budget: a victim whose size would push
        reclaimed bytes past ``budget_bytes`` is *skipped* — not taken,
        and its children stay locked this cycle — while smaller victims
        keep draining, so one oversized idle subtree can never starve
        truncation of everything behind it.  ``stop`` (the maintenance
        manager folds its time budget and the shutdown flag into it)
        ends the drain outright.

        Returns ``(removed, exhausted)`` where ``exhausted`` is True
        when eligible victims remained at the cut — the signal behind
        ``Database.summary()["maintenance"]["budget_exhausted_cycles"]``.
        """
        with self._lock:
            if stop is not None and stop():
                return 0, False
            cutoff = self.event - min_idle_events
            keep = self._keep_closure([
                node for node in self.nodes
                if node.is_materialized or
                node.node_id in pinned or
                node.last_access_event >= cutoff
            ])
            candidates = [n for n in self.nodes if n.node_id not in keep]
            if not candidates:
                return 0, False
            if score is None:
                def score(node: GraphNode) -> float:
                    return 0.0  # degenerate order: structure-only drain
            # Every parent of a candidate is itself a candidate (the
            # keep set is child-closed), so counting raw parents gives
            # the in-candidate in-degree directly.
            pending_parents = {
                n.node_id: sum(1 for _ in n.parents())
                for n in candidates}
            heap = [(score(n), n.node_id, n) for n in candidates
                    if pending_parents[n.node_id] == 0]
            heapq.heapify(heap)
            selected: list[GraphNode] = []
            selected_ids: set[int] = set()
            reclaimed = 0
            exhausted = False
            while heap:
                if stop is not None and stop():
                    exhausted = True
                    break
                _, _, node = heapq.heappop(heap)
                size = max(node.size_bytes, 0)
                if budget_bytes is not None and \
                        reclaimed + size > budget_bytes:
                    # over budget: skip this victim (its children stay
                    # locked behind it this cycle) but keep draining —
                    # smaller victims may still fit
                    exhausted = True
                    continue
                selected.append(node)
                selected_ids.add(node.node_id)
                reclaimed += size
                for child in node.children:
                    if child.node_id in keep or \
                            child.node_id in selected_ids:
                        continue
                    pending_parents[child.node_id] -= 1
                    if pending_parents[child.node_id] == 0:
                        heapq.heappush(
                            heap, (score(child), child.node_id, child))
            return self._remove_nodes(selected, stats), exhausted

    # ------------------------------------------------------------------
    # version-dead GC (online DDL follow-up): a drop or re-register
    # bumps a table's *incarnation*, so nodes stamped with the old
    # incarnation can never be matched by a new snapshot again — pure
    # bookkeeping waste whatever their benefit says.
    # ------------------------------------------------------------------
    def is_version_dead(self, node: GraphNode) -> bool:
        """Whether ``node``'s incarnation stamps can never match the
        live catalog again (incarnations only grow)."""
        return not node.matches_incarnations(self.catalog)

    def version_dead_count(self) -> int:
        """How many nodes are version-dead right now (tests, reports)."""
        with self._lock:
            return sum(1 for n in self.nodes if self.is_version_dead(n))

    def has_version_dead(self) -> bool:
        """Lock-free probe: is there anything for GC to sweep?

        Deliberately takes no lock — incarnation stamps are immutable
        after insertion and the node list is only ever appended or
        wholesale-replaced, so the scan is safe and at worst misses a
        node racing in (the next cycle catches it).  The maintenance
        path uses this so a DDL-free cycle never acquires the rewrite
        stripes just to find an empty sweep."""
        return any(self.is_version_dead(n) for n in list(self.nodes))

    def collect_version_dead(self,
                             pinned: set[int] | frozenset[int] = frozenset(),
                             stop: Callable[[], bool] | None = None,
                             stats: dict | None = None) -> int:
        """Sweep every version-dead subtree, pinning in-flight nodes.

        Keeps a dead node when it is **pinned** (an in-flight producer
        holds a direct reference it will annotate) or **materialized**
        (its entry is owned by the cache; the DDL invalidation sweep
        evicts those, after which the next GC cycle collects the node),
        plus the children of anything kept — the same child-closure rule
        as :meth:`truncate`.  Idle age is irrelevant here: dead nodes
        are collected however recently they were accessed, because no
        future snapshot can reference them.
        """
        with self._lock:
            if stop is not None and stop():
                return 0
            if not any(self.is_version_dead(n) for n in self.nodes):
                return 0
            keep = self._keep_closure([
                node for node in self.nodes
                if not self.is_version_dead(node) or
                node.is_materialized or
                node.node_id in pinned
            ])
            if stop is not None and stop():
                return 0
            removed = [n for n in self.nodes if n.node_id not in keep]
            return self._remove_nodes(removed, stats)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Summary counters (tests, reports).  Locked: a monitoring
        thread may call this mid-insertion, and iterating the leaf
        index races dict growth."""
        with self._lock:
            return {
                "nodes": len(self.nodes),
                "leaves": sum(len(v) for v in self.leaf_index.values()),
                "materialized": sum(1 for n in self.nodes
                                    if n.is_materialized),
                "event": self.event,
            }

    def check_invariants(self) -> None:
        """Structural sanity checks (used by tests and debug builds)."""
        for node in self.nodes:
            for child in node.children:
                bucket = child.parent_index.get(node.hashkey, [])
                if node not in bucket:
                    raise RecyclerError(
                        f"parent index of {child!r} misses {node!r}")
            if not node.children:
                if node not in self.leaf_index.get(node.hashkey, []):
                    raise RecyclerError(f"leaf index misses {node!r}")
