"""Striped locks for the recycler's rewrite/finalize critical sections.

PR 1 funnelled every rewrite and finalize through one coarse ``RLock``,
serializing sessions even when their plans shared nothing.  The stripe
table shards that lock: each query hashes its *plan-subgraph
fingerprint* — the root anchor hash key of the (sub)plan it rewrites —
to one of N stripes, so

* two sessions rewriting the **same** plan shape land on the same stripe
  and stay serialized (store planning's check-then-register on a shared
  node must not interleave), while
* sessions rewriting **disjoint** subgraphs proceed fully in parallel.

Plans that are distinct but share interior subtrees may land on
different stripes; correctness there rests on the per-structure locks
(graph / cache / in-flight registry are each internally synchronized)
and on store planning honouring the in-flight registry's
first-registration-wins verdict (see ``StorePlanner.plan_stores``).

The fingerprint hash is salted per-process (``hash`` of tuples of
strings follows ``PYTHONHASHSEED``), which is fine: stripe assignment
only needs to be stable *within* a process, and query results are
required to be identical under any assignment — the stress suite pins
``PYTHONHASHSEED`` and checks exactly that.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from ..plan.logical import PlanNode


def plan_fingerprint(plan: PlanNode) -> tuple:
    """The stripe key of a plan: anchor hashes over the whole subgraph.

    Walk-order ``(op, params)`` pairs — mapping-independent, so
    re-issues of one query pattern (different sessions, different
    aliases) collide on purpose while distinct patterns spread across
    stripes.  The root hash key alone would be far too coarse (every
    ``GROUP BY`` query shares ``("aggregate", 1)``), collapsing all
    aggregation traffic onto one stripe.
    """
    return tuple((node.op_name, node.params_key(None))
                 for node in plan.walk())


class LockStripes:
    """A fixed table of reentrant locks indexed by key hash."""

    def __init__(self, n_stripes: int) -> None:
        if n_stripes < 1:
            raise ValueError("need at least one stripe")
        self._locks = tuple(threading.RLock() for _ in range(n_stripes))

    def __len__(self) -> int:
        return len(self._locks)

    def index_of(self, key: object) -> int:
        return hash(key) % len(self._locks)

    def for_key(self, key: object) -> threading.RLock:
        """The stripe guarding ``key`` (stable within this process)."""
        return self._locks[self.index_of(key)]

    @contextmanager
    def all(self) -> Iterator[None]:
        """Acquire every stripe (table-order, so nested ``all()`` calls
        cannot deadlock) — used by whole-recycler maintenance such as
        truncation and cache flushes that must exclude all rewrites."""
        acquired = []
        try:
            for lock in self._locks:
                lock.acquire()
                acquired.append(lock)
            yield
        finally:
            for lock in reversed(acquired):
                lock.release()
