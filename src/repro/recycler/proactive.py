"""Proactive recycling strategies (paper Section IV-B).

A proactive strategy rewrites a query into a *more expensive* variant
whose intermediate result has higher reuse potential:

* **top-N caching** — ``topN(Q, N)`` becomes ``limit(N)`` over
  ``topN(Q, N_max)``: a bounded heap of 10 000 rows costs practically the
  same as one of N rows, and the larger result subsumes every smaller
  request;
* **cube caching with selections** — ``γFα(σ_p(c)(R))`` becomes
  ``γFα''(σ_p(c)(γ∪cFα'(R)))`` when the selection column(s) have few
  distinct values: the extended aggregate (the "cube") is predicate-free
  and shared by all queries that differ only in ``p(c)``;
* **cube caching with binning** — a range predicate over a
  high-cardinality ordered column is decomposed into bin-contained and
  residual parts using a catalog :class:`~repro.columnar.BinningSpec`
  (e.g. calendar years); the contained part triggers cube caching on the
  bin column, the residual is recomputed, and a final re-aggregation
  unions the two.

The aggregate decomposition follows the standard rules: ``sum -> sum of
sums``, ``count -> sum of counts``, ``min/max -> min/max``, ``avg ->
sum(sum)/sum(count)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..columnar.catalog import BinningSpec, Catalog, CatalogView
from ..expr.analysis import (NEG_INF, POS_INF, conjoin, profile_predicate,
                             split_conjuncts)
from ..expr.nodes import AggSpec, And, Arith, Cmp, Col, Expr, Func, Lit
from ..columnar import types as t
from ..plan.logical import (Aggregate, Limit, PlanNode, Project, Scan,
                            Select, TopN, UnionAll, map_plan)
from .config import RecyclerConfig


@dataclass
class ProactiveApplication:
    """One strategy application (for steering, traces and tests)."""

    strategy: str                 # "topn" | "cube_select" | "cube_binning"
    #: the shared subtree whose recycling potential motivated the rewrite
    #: (the inner topN / the cube aggregate) — the steering anchor.
    anchor: PlanNode | None = None


@dataclass
class ProactiveResult:
    plan: PlanNode
    applications: list[ProactiveApplication] = field(default_factory=list)


class ProactiveRewriter:
    """Applies the three proactive strategies to a logical plan."""

    def __init__(self, catalog: CatalogView, config: RecyclerConfig) -> None:
        self.catalog = catalog
        self.config = config

    def apply(self, plan: PlanNode,
              catalog: CatalogView | None = None) -> ProactiveResult:
        """Rewrite ``plan``; ``catalog`` (a per-query
        :class:`~repro.columnar.catalog.CatalogSnapshot`) pins the
        statistics and binning specs the rules read, so a concurrent DDL
        cannot steer a rewrite against tables the query will not scan.
        """
        if catalog is not None and catalog is not self.catalog:
            # Rewriters are stateless beyond (catalog, config): rebinding
            # per query keeps the shared instance thread-safe.
            return ProactiveRewriter(catalog, self.config).apply(plan)
        result = ProactiveResult(plan=plan)

        def visit(node: PlanNode, children: list[PlanNode]) -> PlanNode:
            node = node.with_children(children) \
                if any(new is not old for new, old in
                       zip(children, node.children)) else node
            rewritten = self._try_topn(node, result)
            if rewritten is not None:
                return rewritten
            rewritten = self._try_cube(node, result)
            if rewritten is not None:
                return rewritten
            return node

        result.plan = map_plan(plan, visit)
        return result

    # ------------------------------------------------------------------
    # top-N caching
    # ------------------------------------------------------------------
    def _try_topn(self, node: PlanNode,
                  result: ProactiveResult) -> PlanNode | None:
        if not isinstance(node, TopN):
            return None
        n_max = self.config.proactive_topn_limit
        if node.limit + node.offset >= n_max:
            return None
        inner = TopN(node.children[0], node.sort_keys, n_max, 0)
        result.applications.append(
            ProactiveApplication("topn", anchor=inner))
        return Limit(inner, node.limit, node.offset)

    # ------------------------------------------------------------------
    # cube caching (with selections / with binning)
    # ------------------------------------------------------------------
    def _try_cube(self, node: PlanNode,
                  result: ProactiveResult) -> PlanNode | None:
        if not isinstance(node, Aggregate):
            return None
        child = node.children[0]

        # Paper: Q = γFα(P(σp(c)(R))) — the selection may sit anywhere in
        # the plan P below the aggregate; search for a qualifying one.
        for select in _selects_below(node):
            rewritten = self._try_cube_on_select(node, select, result)
            if rewritten is not None:
                return rewritten
        # Binning only handles a selection directly under the aggregate
        # (the Q1 shape of Fig. 5 right).
        if isinstance(child, Select) and _decomposable(node.aggregates):
            rewritten = self._cube_with_binning(node, child)
            if rewritten is not None:
                result.applications.append(ProactiveApplication(
                    "cube_binning", anchor=_find_anchor(rewritten)))
                return rewritten
        return None

    def _try_cube_on_select(self, agg: Aggregate, select: Select,
                            result: ProactiveResult) -> PlanNode | None:
        columns = sorted(select.predicate.columns())
        if not columns:
            return None
        # The predicate must be evaluable above the aggregate's input.
        input_names = set(
            agg.children[0].output_schema(self.catalog).names)
        if not set(columns) <= input_names:
            return None
        passthrough_keys = {name for name, expr in agg.group_keys
                            if isinstance(expr, Col) and expr.name == name}
        if set(columns) <= passthrough_keys:
            # Pull-up special case (Q16 shape): the selection columns are
            # already group keys, so the selection commutes with the
            # aggregation unchanged — any aggregate function qualifies.
            rewritten = self._pull_selection_above(agg, select)
            if rewritten is not None:
                result.applications.append(ProactiveApplication(
                    "cube_select", anchor=_find_anchor(rewritten)))
            return rewritten
        if not _decomposable(agg.aggregates):
            return None
        if self._distinct_product(select, columns) is None:
            return None
        rewritten = self._cube_with_selection(agg, select, columns,
                                              select.predicate, None)
        if rewritten is not None:
            result.applications.append(ProactiveApplication(
                "cube_select", anchor=_find_anchor(rewritten)))
        return rewritten

    def _pull_selection_above(self, agg: Aggregate,
                              select: Select) -> PlanNode | None:
        source = _remove_select(agg.children[0], select)
        if source is None:
            return None
        cube = Aggregate(source, agg.group_keys, agg.aggregates)
        return Select(cube, select.predicate)

    def _distinct_product(self, select: Select,
                          columns: list[str]) -> int | None:
        """Product of distinct counts if all columns are known base-table
        columns under the threshold; None otherwise."""
        product = 1
        for column in columns:
            count = self._distinct_count(select, column)
            if count is None or count <= 0:
                return None
            product *= count
            if product > self.config.proactive_group_threshold:
                return None
        return product

    def _distinct_count(self, below: PlanNode, column: str) -> int | None:
        """Distinct count of ``column``, resolved against the scans in the
        subtree (TPC-H-style globally unique column names)."""
        for node in below.walk():
            if isinstance(node, Scan) and column in node.columns:
                count = self.catalog.distinct_count(node.table, column)
                return count if count > 0 else None
        return None

    def _cube_with_selection(self, agg: Aggregate, select: Select,
                             extra_key_columns: list[str],
                             predicate: Expr,
                             presel: Expr | None) -> PlanNode | None:
        """``γFα(σp(R))`` -> ``γFα''(σp(γ∪cFα'(R)))`` (Fig. 5 left).

        ``presel`` optionally keeps a residual predicate *below* the cube
        (used by the binning strategy for non-binned conjuncts).
        """
        source_or_none = _remove_select(agg.children[0], select)
        if source_or_none is None:
            return None
        source: PlanNode = source_or_none
        if presel is not None:
            source = Select(source, presel)
        inner_keys = [(name, expr) for name, expr in agg.group_keys]
        existing = {name for name, _ in agg.group_keys}
        for column in extra_key_columns:
            if column not in existing:
                inner_keys.append((column, Col(column)))
        partials, finalize = _decompose(agg.aggregates)
        cube = Aggregate(source, inner_keys, partials)
        filtered = Select(cube, predicate)
        return finalize(filtered, agg.group_keys)

    def _cube_with_binning(self, agg: Aggregate,
                           select: Select) -> PlanNode | None:
        """Fig. 5 right: split one range conjunct into bin-contained and
        residual parts, cube-cache the contained part, union the rest."""
        profile = profile_predicate(select.predicate)
        for column, crange in profile.ranges.items():
            if crange.values is not None:
                continue  # equality constraints are not range-binnable
            spec = self._binning_spec(select, column)
            if spec is None:
                continue
            decomposed = _decompose_range(column, crange, spec,
                                          self.catalog, select)
            if decomposed is None:
                continue
            bin_expr, contained_pred, residual_pred = decomposed
            rest = [c for c in split_conjuncts(select.predicate)
                    if column not in c.columns()]
            presel = conjoin(rest) if rest else None
            bin_name = f"__bin_{column}"
            # Contained part: cube over the bin column.
            partials, finalize = _decompose(agg.aggregates)
            inner_keys = list(agg.group_keys) + [(bin_name, bin_expr)]
            source: PlanNode = select.children[0]
            if presel is not None:
                source = Select(source, presel)
            cube = Aggregate(source, inner_keys, partials)
            filtered_cube = Select(
                cube, contained_pred.rename({column: bin_name}))
            if residual_pred is None:
                # The whole range is bin-aligned: no residual recompute.
                return finalize(filtered_cube, agg.group_keys)
            contained = Aggregate(
                filtered_cube,
                [(name, Col(name)) for name, _ in agg.group_keys],
                _reagg_partials(partials))
            # Residual part: recompute directly with the leftover range.
            residual_conjuncts = ([presel] if presel is not None else []) \
                + [residual_pred]
            residual = Aggregate(
                Select(select.children[0], conjoin(residual_conjuncts)),
                agg.group_keys, partials)
            union = UnionAll([contained, residual])
            return finalize(union, agg.group_keys)
        return None

    def _binning_spec(self, below: PlanNode,
                      column: str) -> BinningSpec | None:
        for node in below.walk():
            if isinstance(node, Scan) and column in node.columns:
                return self.catalog.binning_for(node.table, column)
        return None


# ----------------------------------------------------------------------
# aggregate decomposition helpers
# ----------------------------------------------------------------------
_DECOMPOSABLE = ("sum", "count", "count_star", "min", "max", "avg")


def _decomposable(aggs: list[AggSpec]) -> bool:
    return all(a.func in _DECOMPOSABLE for a in aggs)


def _decompose(aggs: list[AggSpec]):
    """Split aggregates into inner partials + a finalizer.

    Returns ``(partials, finalize)`` where ``finalize(child, group_keys)``
    builds the outer re-aggregation (plus a projection when an ``avg``
    needs ``sum/count`` recombination).
    """
    partials: list[AggSpec] = []
    recipe: list[tuple] = []
    names_used: set[str] = set()

    def fresh(base: str) -> str:
        name = f"__pa_{base}"
        suffix = 0
        while name in names_used:
            suffix += 1
            name = f"__pa_{base}_{suffix}"
        names_used.add(name)
        return name

    count_partial: str | None = None

    def ensure_count() -> str:
        nonlocal count_partial
        if count_partial is None:
            count_partial = fresh("count")
            partials.append(AggSpec("count_star", None, count_partial))
        return count_partial

    for agg in aggs:
        if agg.func == "sum":
            name = fresh(agg.name)
            partials.append(AggSpec("sum", agg.arg, name))
            recipe.append(("sum", agg.name, name))
        elif agg.func in ("count", "count_star"):
            recipe.append(("count", agg.name, ensure_count()))
        elif agg.func in ("min", "max"):
            name = fresh(agg.name)
            partials.append(AggSpec(agg.func, agg.arg, name))
            recipe.append((agg.func, agg.name, name))
        else:  # avg
            sum_name = fresh(f"{agg.name}_sum")
            partials.append(AggSpec("sum", agg.arg, sum_name))
            recipe.append(("avg", agg.name, sum_name, ensure_count()))

    def finalize(child: PlanNode,
                 group_keys: list[tuple[str, Expr]]) -> PlanNode:
        outer_keys = [(name, Col(name)) for name, _ in group_keys]
        outer_aggs: list[AggSpec] = []
        needs_project = False
        for step in recipe:
            if step[0] == "avg":
                _, out, sum_name, count_name = step
                outer_aggs.append(AggSpec("sum", Col(sum_name),
                                          f"__f_{out}_sum"))
                outer_aggs.append(AggSpec("sum", Col(count_name),
                                          f"__f_{out}_cnt"))
                needs_project = True
            else:
                kind, out, source = step
                func = "sum" if kind in ("sum", "count") else kind
                outer_aggs.append(AggSpec(func, Col(source), out))
        plan: PlanNode = Aggregate(child, outer_keys, outer_aggs)
        if needs_project:
            outputs: list[tuple[str, Expr]] = \
                [(name, Col(name)) for name, _ in group_keys]
            for step in recipe:
                if step[0] == "avg":
                    _, out, _, _ = step
                    outputs.append((out,
                                    Arith("/", Col(f"__f_{out}_sum"),
                                          Col(f"__f_{out}_cnt"))))
                else:
                    outputs.append((step[1], Col(step[1])))
            plan = Project(plan, outputs)
        return plan

    return partials, finalize


def _reagg_partials(partials: list[AggSpec]) -> list[AggSpec]:
    """Re-aggregate partial columns onto themselves (partial -> partial),
    used by the binning strategy's contained branch so both union inputs
    carry identically named partial aggregates."""
    out = []
    for partial in partials:
        func = "sum" if partial.func in ("sum", "count", "count_star") \
            else partial.func
        out.append(AggSpec(func, Col(partial.name), partial.name))
    return out


def _selects_below(agg: Aggregate):
    """Select nodes in the subtree below an aggregate, deepest first."""
    for node in agg.children[0].walk():
        if isinstance(node, Select):
            yield node


def _remove_select(root: PlanNode, target: Select) -> PlanNode | None:
    """A copy of ``root`` with ``target`` replaced by its child; ``None``
    when ``target`` does not occur in the subtree."""
    if root is target:
        return target.children[0]
    found = False

    def rebuild(node: PlanNode) -> PlanNode:
        nonlocal found
        if node is target:
            found = True
            return node.children[0]
        new_children = [rebuild(child) for child in node.children]
        if all(new is old for new, old in zip(new_children,
                                              node.children)):
            return node
        return node.with_children(new_children)

    result = rebuild(root)
    return result if found else None


def _find_anchor(plan: PlanNode) -> PlanNode | None:
    """The shared cube aggregate inside a rewritten plan: the deepest
    Aggregate whose group keys extend the query's own (heuristically, the
    first Aggregate found bottom-up)."""
    for node in plan.walk():
        if isinstance(node, Aggregate):
            return node
    return None


# ----------------------------------------------------------------------
# range decomposition for binning
# ----------------------------------------------------------------------
def _decompose_range(column: str, crange, spec: BinningSpec,
                     catalog: Catalog, select: Select):
    """Split ``lo <= column <= hi`` into a predicate over whole bins plus
    residual day/value ranges.  Returns
    ``(bin_expr, contained_pred, residual_pred)`` or ``None`` when the
    range does not span at least one whole bin.

    ``contained_pred`` is expressed over the *bin value* (the caller
    renames the column reference onto the cube's bin output), and
    ``residual_pred`` over the original column.
    """
    bounds = _column_bounds(column, crange, catalog, select)
    if bounds is None:
        return None
    lo, hi = bounds  # inclusive value range of the selection

    if spec.kind == "year":
        bin_expr: Expr = Func("year", [Col(column)])
        lo_year = int(t.years_of([lo])[0])
        hi_year = int(t.years_of([hi])[0])
        first_full = lo_year if lo == t.first_day_of_year(lo_year) \
            else lo_year + 1
        last_full = hi_year if hi == t.first_day_of_year(hi_year + 1) - 1 \
            else hi_year - 1
        if last_full < first_full:
            return None
        contained = And([Cmp(">=", Col(column), Lit(first_full)),
                         Cmp("<=", Col(column), Lit(last_full))])
        start_full = t.first_day_of_year(first_full)
        end_full = t.first_day_of_year(last_full + 1) - 1
        residual_parts: list[Expr] = []
        if lo < start_full:
            residual_parts.append(
                And([Cmp(">=", Col(column), Lit(lo, t.DATE)),
                     Cmp("<", Col(column), Lit(start_full, t.DATE))]))
        if hi > end_full:
            residual_parts.append(
                And([Cmp(">", Col(column), Lit(end_full, t.DATE)),
                     Cmp("<=", Col(column), Lit(hi, t.DATE))]))
        residual = None if not residual_parts else (
            residual_parts[0] if len(residual_parts) == 1
            else _or_all(residual_parts))
        return bin_expr, contained, residual

    # width binning over integers
    width = spec.width
    bin_expr = Func("bin", [Col(column), Lit(width)])
    first_full = lo // width if lo % width == 0 else lo // width + 1
    last_full = (hi + 1) // width - 1
    if last_full < first_full:
        return None
    contained = And([Cmp(">=", Col(column), Lit(int(first_full))),
                     Cmp("<=", Col(column), Lit(int(last_full)))])
    residual_parts: list[Expr] = []
    if lo < first_full * width:
        residual_parts.append(
            And([Cmp(">=", Col(column), Lit(int(lo))),
                 Cmp("<", Col(column), Lit(int(first_full * width)))]))
    if hi >= (last_full + 1) * width:
        residual_parts.append(
            And([Cmp(">=", Col(column), Lit(int((last_full + 1) * width))),
                 Cmp("<=", Col(column), Lit(int(hi)))]))
    residual = None if not residual_parts else (
        residual_parts[0] if len(residual_parts) == 1
        else _or_all(residual_parts))
    return bin_expr, contained, residual


def _or_all(parts: list[Expr]) -> Expr:
    from ..expr.nodes import Or
    return Or(parts)


def _column_bounds(column: str, crange, catalog: Catalog,
                   select: Select) -> tuple[int, int] | None:
    """Inclusive integer bounds of the selection range, filling open ends
    from catalog min/max statistics."""
    lo, hi = crange.low, crange.high
    lo_inc, hi_inc = crange.low_inclusive, crange.high_inclusive
    stats_range = None
    for node in select.walk():
        if isinstance(node, Scan) and column in node.columns:
            stats_range = catalog.column_range(node.table, column)
            break
    if lo is NEG_INF:
        if stats_range is None:
            return None
        lo, lo_inc = stats_range[0], True
    if hi is POS_INF:
        if stats_range is None:
            return None
        hi, hi_inc = stats_range[1], True
    if not isinstance(lo, (int,)) or not isinstance(hi, (int,)):
        try:
            lo, hi = int(lo), int(hi)
        except (TypeError, ValueError):
            return None
    lo = lo if lo_inc else lo + 1
    hi = hi if hi_inc else hi - 1
    if hi < lo:
        return None
    return int(lo), int(hi)
