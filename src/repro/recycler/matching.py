"""Matching query trees against the recycler graph (Algorithm 1).

A bottom-up pass over the optimized query tree.  For every node it either
finds the unique exactly-matching graph node (bisimilarity: same operator,
equal parameters under the accumulated name mapping, exactly matching
children) or inserts a graph-namespace copy.

Name mappings (paper Section III-A/B): the mapping carried with each query
node translates *query* column names into *graph* column names.  Leaves
seed it with the identity over base-table columns; every matched or
inserted node extends it with pairs for the output names it newly assigns
(query alias -> graph-unique name).  Parameter equality is always checked
under the mapping, so differing aliases across queries still unify.

Canonical-form invariant: with ``RecyclerConfig.optimize_plans`` on (the
default), every tree reaching this module has already been rewritten to
canonical form by ``plan.optimizer.PlanOptimizer`` — stacked Selects
merged with sorted conjuncts, identity Projects elided, literals
dtype-normalized, commutative children ordered.  Matching itself stays
purely structural; equivalence is resolved *before* it, never here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..columnar.catalog import CatalogView
from ..errors import ConcurrencyConflict
from ..plan.logical import PlanNode
from .graph import GraphNode, RecyclerGraph

#: how often a conflicting insertion is retried before giving up; real
#: concurrent sessions (``Database.pool``) hit retries whenever two
#: threads race to insert the same neighbourhood.
MAX_INSERT_RETRIES = 16


@dataclass
class NodeMatch:
    """Per-query-node result of the matching pass."""

    graph_node: GraphNode
    #: query output name -> graph output name, for this node's outputs.
    mapping: dict[str, str]
    #: True when this query inserted the node (no prior exact match).
    inserted: bool


@dataclass
class MatchResult:
    """Matching annotations for a whole query tree."""

    by_node: dict[int, NodeMatch] = field(default_factory=dict)
    inserted_count: int = 0
    matched_count: int = 0
    #: OCC restarts performed during this pass (Section III-B).
    conflicts: int = 0

    def of(self, node: PlanNode) -> NodeMatch:
        return self.by_node[id(node)]

    def register(self, node: PlanNode, match: NodeMatch) -> None:
        self.by_node[id(node)] = match

    def contains(self, node: PlanNode) -> bool:
        return id(node) in self.by_node


def match_tree(plan: PlanNode, graph: RecyclerGraph, catalog: CatalogView,
               query_id: int,
               subsumption_hook=None) -> MatchResult:
    """Run the Algorithm-1 pass over ``plan``.

    ``subsumption_hook(graph_node)`` is invoked for every *inserted* node
    so the subsumption index can add edges (Section IV-A) without this
    module depending on it.
    """
    result = MatchResult()
    _match_node(plan, graph, catalog, query_id, result, subsumption_hook)
    return result


def _match_node(node: PlanNode, graph: RecyclerGraph, catalog: CatalogView,
                query_id: int, result: MatchResult,
                subsumption_hook) -> NodeMatch:
    child_matches = [
        _match_node(child, graph, catalog, query_id, result,
                    subsumption_hook)
        for child in node.children
    ]
    for attempt in range(MAX_INSERT_RETRIES):
        try:
            match = _match_or_insert(node, child_matches, graph, catalog,
                                     query_id, subsumption_hook)
            break
        except ConcurrencyConflict:
            result.conflicts += 1
            if attempt == MAX_INSERT_RETRIES - 1:
                raise
    result.register(node, match)
    if match.inserted:
        result.inserted_count += 1
    else:
        result.matched_count += 1
    return match


def _match_or_insert(node: PlanNode, child_matches: list[NodeMatch],
                     graph: RecyclerGraph, catalog: CatalogView, query_id: int,
                     subsumption_hook) -> NodeMatch:
    input_mapping = _merge_mappings(child_matches)
    output_names = node.output_schema(catalog).names

    if not node.children:
        # Read the bucket version BEFORE scanning candidates: leaf
        # insertion validates it, so a racing insert into this bucket
        # forces a re-match instead of a duplicate leaf.
        expected_leaf_version = graph.leaf_bucket_version(node.hashkey())
        candidate_pool = graph.candidate_leaves(node.hashkey(),
                                                node.signature(None))
        params = node.params_key(None)
        expected_versions: list[int] = []
    else:
        expected_leaf_version = None
        # Same ordering as the leaf path: versions are read BEFORE the
        # candidate scan, so an insert racing ahead of the scan bumps a
        # version we already captured and fails OCC validation instead
        # of slipping a duplicate past a stale candidate snapshot.
        expected_versions = [m.graph_node.version for m in child_matches]
        anchor = child_matches[0].graph_node
        candidate_pool = anchor.candidate_parents(
            node.hashkey(), node.signature(input_mapping))
        params = node.params_key(input_mapping)

    graph_children = [m.graph_node for m in child_matches]
    for candidate in candidate_pool:
        if candidate.children != graph_children:
            continue
        if candidate.params != params:
            continue
        if not node.children and \
                not candidate.matches_incarnations(catalog):
            # A drop or full re-register superseded the incarnation this
            # leaf was stamped with: its history describes a different
            # dataset, so the query inserts a fresh leaf instead — the
            # stale subtree above it becomes unreachable to matching
            # (interior candidates require child identity) and is
            # collected by version-dead GC.  Appends bump versions but
            # not incarnations, so update history still unifies.
            continue
        # Exact match found; there is at most one (paper: identical
        # subtrees are unified), so stop searching — except that one
        # version-dead twin may coexist with the current-incarnation
        # leaf in a bucket, which the incarnation gate above skips.
        mapping = _output_mapping(node, candidate, output_names)
        candidate.last_access_event = graph.event
        return NodeMatch(candidate, mapping, inserted=False)

    assigned_mapping = {name: f"{name}@q{query_id}"
                        for name in node.assigned_names()}
    inserted = graph.insert_node(node, graph_children, input_mapping,
                                 assigned_mapping, query_id,
                                 expected_versions or None,
                                 expected_leaf_version,
                                 catalog=catalog)
    if subsumption_hook is not None:
        subsumption_hook(inserted)
    mapping = _output_mapping(node, inserted, output_names)
    return NodeMatch(inserted, mapping, inserted=True)


def _merge_mappings(child_matches: list[NodeMatch]) -> dict[str, str]:
    """Combine the children's output mappings into one input mapping.

    Children of a join have disjoint visible names (the binder guarantees
    it for inner/left joins; semi/anti keep only left columns visible but
    the right side's names are still needed to translate join keys).
    Later children never override earlier ones on collision.
    """
    if len(child_matches) == 1:
        return child_matches[0].mapping
    merged: dict[str, str] = {}
    for match in child_matches:
        for query_name, graph_name in match.mapping.items():
            merged.setdefault(query_name, graph_name)
    return merged


def _output_mapping(node: PlanNode, graph_node,
                    output_names: list[str]) -> dict[str, str]:
    """The query->graph mapping for this node's output columns.

    Outputs are matched positionally against the graph node's schema:
    parameter equality implies the two operators emit identical columns
    in identical order, even when the queries differ in which outputs
    they aliased (one query's pass-through may be another's alias).
    Leaves use the shared base-table / function vocabulary directly.

    Positional pairing is sound only because *every* parameter key —
    including the scan leaf's — pins output order.  If leaves matched
    with their column set unordered, a pass-through chain above two
    differently-ordered scans would silently swap names (a ``GROUP BY
    k`` could reuse a ``GROUP BY g`` entry).  Cross-order scan sharing
    is instead recovered by the plan optimizer, which canonicalizes
    scan column order wherever it is not visible in the root schema.
    """
    if not node.children:
        return {name: name for name in output_names}
    return dict(zip(output_names, graph_node.schema.names))
