"""Subsumption (paper Section IV-A).

A cached result *subsumes* a requested one when the latter can be derived
from it: **column subsumption** (project away columns) and **tuple
subsumption** (re-apply a stricter selection; re-aggregate a finer GROUP
BY; take a prefix of a larger top-N).  Subsumption relationships are kept
as specialized OR-edges ("subsumption edges") attached to graph nodes,
consulted only after exact matching failed, and kept transitively minimal
— a node records only its most specific subsumers (paper Fig. 4).

All subsumption *tests* run in the graph namespace (both operands are
graph nodes); only the compensation plans are rendered back into the
querying query's namespace.

The optimizer's canonical form feeds this module too: its final
``split_sargable_select`` step re-splits sargable conjuncts out of
merged Selects precisely so range predicates stay visible as
single-conjunct Select nodes that the tuple-subsumption tests can
compare.
"""

from __future__ import annotations

import threading

from ..columnar.catalog import Catalog
from ..columnar.table import Schema
from ..expr.analysis import profile_predicate
from ..expr.implication import implies, profile_implies
from ..expr.nodes import AggSpec, Arith, Col, Expr
from ..plan.logical import (Aggregate, CachedScan, Limit, PlanNode, Project,
                            Scan, Select, TopN)
from .graph import GraphNode, RecyclerGraph

_SUBSUMABLE_OPS = ("scan", "select", "project", "aggregate", "topn")


class SubsumptionIndex:
    """Maintains subsumption edges and answers subsumer lookups.

    Edge construction compares every inserted node against its siblings;
    with many same-shaped variants (e.g. hundreds of Q19-style selections
    differing only in literals) re-canonicalizing the predicates per pair
    is quadratic in practice.  Per-node predicate profiles are therefore
    cached for the lifetime of the graph node.
    """

    def __init__(self, graph: RecyclerGraph) -> None:
        self.graph = graph
        #: node_id -> (PredicateProfile, residual key frozenset)
        self._select_profiles: dict[int, tuple] = {}
        #: guards edge lists and the profile cache; ``on_insert`` is
        #: invoked from the lock-free matching pass of every session.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # edge maintenance (invoked for every inserted node)
    # ------------------------------------------------------------------
    def on_insert(self, node: GraphNode) -> None:
        if node.op_name not in _SUBSUMABLE_OPS:
            return
        with self._lock:
            for sibling in self._siblings(node):
                if self._subsumes_cached(sibling, node):
                    self._add_edge(node, sibling)
                if self._subsumes_cached(node, sibling):
                    self._add_edge(sibling, node)

    def _subsumes_cached(self, a: GraphNode, b: GraphNode) -> bool:
        """``subsumes`` with per-node profile caching for selections."""
        if a.op_name == "select" and b.op_name == "select" \
                and a.children == b.children:
            profile_a, keys_a = self._select_profile(a)
            profile_b, keys_b = self._select_profile(b)
            return profile_implies(profile_b, profile_a,
                                   stronger_residual_keys=keys_b,
                                   weaker_residual_keys=keys_a)
        return subsumes(a, b)

    def _select_profile(self, node: GraphNode) -> tuple:
        cached = self._select_profiles.get(node.node_id)
        if cached is None:
            profile = profile_predicate(node.plan.predicate)
            cached = (profile, profile.residual_keys())
            self._select_profiles[node.node_id] = cached
        return cached

    def _siblings(self, node: GraphNode) -> list[GraphNode]:
        """Nodes sharing this node's children (or its leaf table)."""
        if not node.children:
            pool = self.graph.leaves_for_table_any_columns(node.hashkey)
            return [s for s in pool if s is not node]
        anchor = node.children[0]
        return [p for p in anchor.parents()
                if p is not node
                and p.op_name == node.op_name
                and p.children == node.children]

    def _add_edge(self, node: GraphNode, subsumer: GraphNode) -> None:
        """Record ``subsumer`` ⊇ ``node``, keeping the edge set minimal:
        drop the new edge if an existing, more specific subsumer already
        leads to it transitively, and drop existing edges the new subsumer
        makes redundant."""
        for existing in node.subsumers:
            if existing is subsumer:
                return
            if self._subsumes_cached(subsumer, existing):
                return  # subsumer reachable via the more specific existing
        node.subsumers = [e for e in node.subsumers
                          if not self._subsumes_cached(e, subsumer)]
        node.subsumers.append(subsumer)

    # ------------------------------------------------------------------
    # lookup (only called when exact matching found no cached result)
    # ------------------------------------------------------------------
    def find_cached_subsumer(self, node: GraphNode) -> GraphNode | None:
        """Breadth-first over subsumption edges: the nearest (most
        specific) subsumer with a materialized result."""
        with self._lock:
            return self._find_cached_subsumer(node)

    def _find_cached_subsumer(self, node: GraphNode) -> GraphNode | None:
        queue = list(node.subsumers)
        seen = {node.node_id}
        while queue:
            candidate = queue.pop(0)
            if candidate.node_id in seen:
                continue
            seen.add(candidate.node_id)
            if candidate.is_materialized:
                return candidate
            queue.extend(candidate.subsumers)
        return None


# ----------------------------------------------------------------------
# the subsumption test (graph namespace)
# ----------------------------------------------------------------------
def subsumes(a: GraphNode, b: GraphNode) -> bool:
    """True when ``b``'s result is derivable from ``a``'s result."""
    if a.op_name != b.op_name:
        return False
    if a.children != b.children:
        return False
    pa, pb = a.plan, b.plan
    if isinstance(pa, Scan) and isinstance(pb, Scan):
        return pa.table == pb.table and \
            set(pb.columns) <= set(pa.columns)
    if isinstance(pa, Select) and isinstance(pb, Select):
        return implies(pb.predicate, pa.predicate)
    if isinstance(pa, Project) and isinstance(pb, Project):
        available = {e.key() for _, e in pa.outputs}
        return all(e.key() in available for _, e in pb.outputs)
    if isinstance(pa, Aggregate) and isinstance(pb, Aggregate):
        return _aggregate_subsumes(pa, pb)
    if isinstance(pa, TopN) and isinstance(pb, TopN):
        return (pa.sort_keys == pb.sort_keys and pa.offset == 0
                and pb.offset + pb.limit <= pa.limit)
    return False


def _aggregate_subsumes(pa: Aggregate, pb: Aggregate) -> bool:
    a_keys = {e.key() for _, e in pa.group_keys}
    if not all(e.key() in a_keys for _, e in pb.group_keys):
        return False
    return all(_find_source_agg(pa, agg) is not None
               for agg in pb.aggregates)


def _find_source_agg(pa: Aggregate, agg: AggSpec):
    """The column(s) of ``pa`` from which ``agg`` can be re-derived.

    Returns ``(reagg_func, source_name)`` or for avg a
    ``("avg", sum_name, count_name)`` triple; ``None`` when impossible.
    In this NULL-free engine every ``count``/``count_star`` counts rows,
    so any count column of ``pa`` can seed any count of the request.
    """
    def find(func: str, arg_key) -> str | None:
        for candidate in pa.aggregates:
            if candidate.func == func:
                cand_key = candidate.arg.key() if candidate.arg is not None \
                    else ()
                if cand_key == arg_key:
                    return candidate.name
        return None

    def find_any_count() -> str | None:
        for candidate in pa.aggregates:
            if candidate.func in ("count", "count_star"):
                return candidate.name
        return None

    arg_key = agg.arg.key() if agg.arg is not None else ()
    if agg.func == "sum":
        name = find("sum", arg_key)
        return ("sum", name) if name else None
    if agg.func in ("count", "count_star"):
        name = find_any_count()
        return ("sum", name) if name else None
    if agg.func == "min":
        name = find("min", arg_key)
        return ("min", name) if name else None
    if agg.func == "max":
        name = find("max", arg_key)
        return ("max", name) if name else None
    if agg.func == "avg":
        sum_name = find("sum", arg_key)
        count_name = find_any_count()
        if sum_name and count_name:
            return ("avg", sum_name, count_name)
        return None
    return None


# ----------------------------------------------------------------------
# compensation plans (query namespace)
# ----------------------------------------------------------------------
def build_compensation(query_node: PlanNode, subsumer: GraphNode,
                       node_mapping: dict[str, str],
                       child_mapping: dict[str, str],
                       catalog: Catalog) -> PlanNode | None:
    """Build the plan that derives ``query_node``'s result from the cached
    result of ``subsumer``.

    ``node_mapping``/``child_mapping`` are the query->graph name mappings
    of the node and of its child (empty for leaves).  Returns ``None``
    when a compensation cannot be constructed (the caller then simply
    recomputes — losing an opportunity, never correctness).
    """
    entry = subsumer.entry
    if entry is None:
        return None
    splan = subsumer.plan
    if isinstance(query_node, Scan) and isinstance(splan, Scan):
        schema = query_node.output_schema(catalog)
        return CachedScan(entry, schema, rename={},
                          label=f"subsume:{subsumer.node_id}")
    if isinstance(query_node, Select) and isinstance(splan, Select):
        child_schema = query_node.children[0].output_schema(catalog)
        rename = {g: q for q, g in child_mapping.items()
                  if g in subsumer.schema.names}
        scan = CachedScan(entry, child_schema, rename=rename,
                          label=f"subsume:{subsumer.node_id}")
        return Select(scan, query_node.predicate)
    if isinstance(query_node, Project) and isinstance(splan, Project):
        return _project_compensation(query_node, subsumer, child_mapping,
                                     catalog)
    if isinstance(query_node, Aggregate) and isinstance(splan, Aggregate):
        return _aggregate_compensation(query_node, subsumer, child_mapping,
                                       catalog)
    if isinstance(query_node, TopN) and isinstance(splan, TopN):
        child_schema = query_node.children[0].output_schema(catalog)
        rename = {g: q for q, g in child_mapping.items()
                  if g in subsumer.schema.names}
        scan = CachedScan(entry, child_schema, rename=rename,
                          label=f"subsume:{subsumer.node_id}")
        return Limit(scan, query_node.limit, query_node.offset)
    return None


def _project_compensation(query_node: Project, subsumer: GraphNode,
                          child_mapping: dict[str, str],
                          catalog: Catalog) -> PlanNode | None:
    splan = subsumer.plan
    assert isinstance(splan, Project)
    rename: dict[str, str] = {}
    for qname, expr in query_node.outputs:
        expr_key = expr.key(child_mapping)
        source = None
        for gname, gexpr in splan.outputs:
            if gexpr.key(None) == expr_key:
                source = gname
                break
        if source is None or source in rename:
            return None
        rename[source] = qname
    schema = query_node.output_schema(catalog)
    return CachedScan(subsumer.entry, schema, rename=rename,
                      label=f"subsume:{subsumer.node_id}")


def _aggregate_compensation(query_node: Aggregate, subsumer: GraphNode,
                            child_mapping: dict[str, str],
                            catalog: Catalog) -> PlanNode | None:
    splan = subsumer.plan
    assert isinstance(splan, Aggregate)
    schema = query_node.output_schema(catalog)

    # Locate each query group key among the subsumer's keys.
    key_sources: list[tuple[str, str]] = []   # (query name, graph name)
    for qname, expr in query_node.group_keys:
        expr_key = expr.key(child_mapping)
        source = None
        for gname, gexpr in splan.group_keys:
            if gexpr.key(None) == expr_key:
                source = gname
                break
        if source is None:
            return None
        key_sources.append((qname, source))

    # Shortcut: identical key sets and identical aggregates — the cached
    # rows ARE the requested rows (column subsumption): rename only.
    if len(splan.group_keys) == len(query_node.group_keys):
        direct = _direct_rename(query_node, splan, key_sources,
                                child_mapping)
        if direct is not None:
            return CachedScan(subsumer.entry, schema, rename=direct,
                              label=f"subsume:{subsumer.node_id}")

    # General tuple subsumption: re-aggregate the finer cached result.
    agg_sources = []
    for agg in query_node.aggregates:
        source = _find_source_agg(splan, agg)
        if source is None:
            return None
        agg_sources.append(source)

    # Synthetic column names keep the cached columns clear of the query's
    # own namespace.
    synthetic: dict[str, str] = {}

    def syn(graph_name: str) -> str:
        if graph_name not in synthetic:
            synthetic[graph_name] = f"__sub{len(synthetic)}"
        return synthetic[graph_name]

    group_keys = [(qname, Col(syn(gname))) for qname, gname in key_sources]
    reaggs: list[AggSpec] = []
    post_project: list[tuple[str, Expr]] | None = None
    for agg, source in zip(query_node.aggregates, agg_sources):
        if source[0] == "avg":
            _, sum_name, count_name = source
            reaggs.append(AggSpec("sum", Col(syn(sum_name)),
                                  f"__avgsum_{agg.name}"))
            reaggs.append(AggSpec("sum", Col(syn(count_name)),
                                  f"__avgcnt_{agg.name}"))
            if post_project is None:
                post_project = [(qname, Col(qname))
                                for qname, _ in query_node.group_keys]
                post_project.extend(
                    (a.name, Col(a.name)) for a in query_node.aggregates)
            index = next(i for i, (name, _) in enumerate(post_project)
                         if name == agg.name)
            post_project[index] = (
                agg.name,
                Arith("/", Col(f"__avgsum_{agg.name}"),
                      Col(f"__avgcnt_{agg.name}")))
        else:
            func, gname = source
            reaggs.append(AggSpec(func, Col(syn(gname)), agg.name))

    needed = list(synthetic)
    cached_schema = Schema([synthetic[g] for g in needed],
                           [subsumer.schema.type_of(g) for g in needed])
    scan = CachedScan(subsumer.entry, cached_schema,
                      rename=dict(synthetic),
                      label=f"subsume:{subsumer.node_id}")
    plan: PlanNode = Aggregate(scan, group_keys, reaggs)
    if post_project is not None:
        plan = Project(plan, post_project)
    return plan


def _direct_rename(query_node: Aggregate, splan: Aggregate,
                   key_sources: list[tuple[str, str]],
                   child_mapping: dict[str, str]) -> dict[str, str] | None:
    """graph->query rename when the cached aggregate is usable verbatim."""
    rename = {gname: qname for qname, gname in key_sources}
    for agg in query_node.aggregates:
        arg_key = agg.arg.key(child_mapping) if agg.arg is not None else ()
        source = None
        for candidate in splan.aggregates:
            cand_key = candidate.arg.key() if candidate.arg is not None \
                else ()
            same_count = (agg.func in ("count", "count_star")
                          and candidate.func in ("count", "count_star"))
            if candidate.func == agg.func and cand_key == arg_key \
                    or same_count:
                source = candidate.name
                break
        if source is None or source in rename:
            return None
        rename[source] = agg.name
    return rename
