"""Recycler configuration.

The four modes mirror the paper's evaluation (Section V):

* ``off``  — no recycling at all (the "naive" baseline);
* ``hist`` — history-only: store decisions are made in the rewriting phase
  from recycler-graph statistics; a result must have been *seen before* to
  be materialized;
* ``spec`` — history + speculation: store operators are additionally
  injected on never-seen expensive-looking nodes and decide at run time via
  progress-meter extrapolation;
* ``pa``   — ``spec`` + proactive rewriting (top-N caching, cube caching
  with selections, cube caching with binning).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

MODE_OFF = "off"
MODE_HIST = "hist"
MODE_SPEC = "spec"
MODE_PA = "pa"

ALL_MODES = (MODE_OFF, MODE_HIST, MODE_SPEC, MODE_PA)


def _optimize_plans_default() -> bool:
    """Default for ``optimize_plans``, overridable via the environment
    (``REPRO_OPTIMIZE_PLANS=0`` — the CI optimizer-off job leg runs the
    stress suites through the legacy as-bound matching path)."""
    return os.environ.get("REPRO_OPTIMIZE_PLANS", "1").lower() \
        not in ("0", "false", "off", "no")


@dataclass
class RecyclerConfig:
    """Tunable parameters of the recycler (paper defaults where given)."""

    mode: str = MODE_SPEC

    #: run the canonicalizing plan-optimizer pass
    #: (:class:`~repro.plan.optimizer.PlanOptimizer`) in
    #: ``Recycler.prepare`` *before* fingerprinting and matching, so
    #: semantically equivalent plan shapes (stacked filters vs. one AND,
    #: ``1`` vs. ``1.0`` literals, identity projections, ...) normalize
    #: to one fingerprint and share one cached entry.  Also arms the
    #: per-subplan cost gate on reuse substitution.  ``False`` restores
    #: the legacy as-bound matching bit for bit.  Defaults from the
    #: ``REPRO_OPTIMIZE_PLANS`` environment variable (unset = on).
    optimize_plans: bool = field(default_factory=_optimize_plans_default)

    #: recycler cache capacity in bytes; ``None`` = unlimited.
    cache_capacity: int | None = 256 * 1024 * 1024

    #: aging factor alpha < 1 applied to every node's ``hR`` per query
    #: event (Eq. 5); 1.0 disables aging.
    alpha: float = 0.995

    #: minimum effective references for a history-mode store decision —
    #: "only materializes results that have been seen before".
    store_min_refs: float = 1.0

    #: minimum benefit (Eq. 1) for injecting a history store at all; keeps
    #: cheap-but-large results (plain scans) from being materialized.
    benefit_threshold: float = 0.02

    #: minimum base cost for a history store; pure overhead below this.
    min_store_cost: float = 100.0

    #: a history store must save at least this multiple of its own
    #: materialize+reuse overhead per reuse; keeps cheap-to-recompute
    #: results (plain scans) out of the cache even when referenced often.
    store_overhead_factor: float = 1.5

    #: the paper's constant importance factor for speculative decisions.
    speculation_h: float = 0.001

    #: speculative benefit must exceed this to materialize.  The paper
    #: admits every speculated result while cache space lasts (the cache
    #: policies are the gate), so the faithful default is 0; raise it for
    #: the ablation benches.
    speculation_benefit_threshold: float = 0.0

    #: minimum extrapolated cost for a speculative store to proceed.
    speculation_min_cost: float = 100.0

    #: progress fraction required before a speculative decision is made.
    speculation_min_progress: float = 0.05

    #: buffered bytes after which a speculative store is forced to decide.
    speculation_buffer_bytes: int = 32 * 1024 * 1024

    #: enable subsumption matching (Section IV-A).
    subsumption: bool = True

    #: proactive top-N: limit used for the proactively cached topN.
    proactive_topn_limit: int = 10000

    #: proactive cube caching: maximum distinct values of the selection
    #: column(s) pulled into the GROUP BY (Section IV-B heuristic).
    proactive_group_threshold: int = 64

    #: extension (off = paper-faithful): let the replacement policy scan
    #: all size groups instead of only the new result's own group.
    replacement_scan_all_groups: bool = False

    #: benefit-steered proactive execution (paper Section IV-B): execute
    #: the proactive variant only once its aggregate has a cached result or
    #: a history store decision; when False the variant always executes.
    proactive_benefit_steered: bool = True

    #: safety net for blocking in-flight sharing (real sessions): a query
    #: stalled on a concurrent producer gives up waiting after this many
    #: seconds and recomputes instead; ``None`` waits indefinitely.
    #: ``Recycler.abandon`` (called when a producer's execution fails)
    #: releases its registrations, so the timeout only matters for
    #: pathological cases such as a producer thread dying uncleanly.
    inflight_wait_timeout: float | None = 30.0

    #: number of rewrite/finalize lock stripes.  A query's critical
    #: sections take the stripe selected by its plan fingerprint (root
    #: anchor hash), so rewrites of disjoint plan subgraphs proceed in
    #: parallel while identical plans stay serialized.  ``1`` reproduces
    #: the old coarse-lock behaviour exactly (benchmark baseline).
    lock_stripes: int = 16

    #: background maintenance cadence in seconds; ``None`` disables the
    #: :class:`~repro.recycler.maintenance.MaintenanceManager` thread
    #: (``Database.maintain()`` still applies the triggers on demand).
    maintenance_interval_seconds: float | None = None

    #: size trigger: truncate the recycler graph once it exceeds this
    #: many nodes; ``None`` disables the size trigger.
    maintenance_graph_node_limit: int | None = 50_000

    #: idle trigger: with no query activity for this many seconds, a
    #: maintenance cycle truncates idle subtrees and refreshes cached
    #: benefits (aging moved on); ``None`` disables the idle trigger.
    maintenance_idle_seconds: float | None = 30.0

    #: nodes idle for more than this many query events are truncation
    #: candidates (paper Section II: "removing subtrees that have not
    #: been accessed for some time").
    truncate_min_idle_events: int = 256

    #: cost-aware maintenance: byte budget per cycle — a budgeted
    #: truncation stops once reclaiming the next victim would push the
    #: cycle past this many bytes (victims fall lowest benefit-per-byte
    #: first).  ``None`` removes the cap (legacy whole-sweep behaviour).
    maintenance_budget_bytes: int | None = 64 * 1024 * 1024

    #: cost-aware maintenance: wall-clock budget per cycle in seconds —
    #: GC, truncation, and benefit refresh all consult the deadline and
    #: cut the cycle short, carrying the remainder to the next cycle.
    #: ``None`` disables the time budget.
    maintenance_budget_seconds: float | None = 0.25

    #: predicted-idle trigger: a maintenance cycle spends its budget
    #: when the current inter-query gap exceeds this multiple of the
    #: EWMA gap (the activity signal threaded from ``Database`` /
    #: ``Session``) — maintenance lands in the lulls traffic actually
    #: leaves instead of waiting out ``maintenance_idle_seconds``.
    #: ``None`` disables prediction (threshold triggers only).
    maintenance_idle_gap_factor: float | None = 8.0

    #: absolute floor under the predicted-idle threshold: the current
    #: gap must also exceed this many seconds, so a back-to-back burst
    #: (EWMA gap near zero) cannot make every instant "predict idle"
    #: and grab the rewrite stripes mid-traffic.
    maintenance_idle_gap_floor_seconds: float = 0.05

    #: EWMA weight of the newest inter-query gap in the activity
    #: tracker (higher adapts faster, lower smooths bursts).
    activity_ewma_alpha: float = 0.2

    #: hit-rate feedback on the per-cycle byte budget: the effective
    #: budget is ``maintenance_budget_bytes * (1 + factor * (1 - h))``
    #: where ``h`` is the cache hit rate (reuses per query) observed
    #: since the previous cycle.  A cache that is not earning reuses is
    #: mostly dead bookkeeping, so maintenance may spend up to
    #: ``1 + factor`` times the base budget clearing it; a hot cache
    #: keeps the base budget.  ``None`` disables feedback (the budget
    #: is always exactly ``maintenance_budget_bytes``).
    maintenance_hit_rate_budget_factor: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in ALL_MODES:
            raise ValueError(f"unknown recycler mode {self.mode!r};"
                             f" expected one of {ALL_MODES}")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.lock_stripes < 1:
            raise ValueError("lock_stripes must be >= 1")
        if self.maintenance_interval_seconds is not None and \
                self.maintenance_interval_seconds <= 0:
            raise ValueError(
                "maintenance_interval_seconds must be positive or None")
        if self.truncate_min_idle_events < 0:
            raise ValueError("truncate_min_idle_events must be >= 0")
        if self.maintenance_budget_bytes is not None and \
                self.maintenance_budget_bytes < 0:
            raise ValueError(
                "maintenance_budget_bytes must be >= 0 or None")
        if self.maintenance_budget_seconds is not None and \
                self.maintenance_budget_seconds <= 0:
            raise ValueError(
                "maintenance_budget_seconds must be positive or None")
        if self.maintenance_idle_gap_factor is not None and \
                self.maintenance_idle_gap_factor <= 0:
            raise ValueError(
                "maintenance_idle_gap_factor must be positive or None")
        if self.maintenance_idle_gap_floor_seconds < 0:
            raise ValueError(
                "maintenance_idle_gap_floor_seconds must be >= 0")
        if not 0.0 < self.activity_ewma_alpha <= 1.0:
            raise ValueError("activity_ewma_alpha must be in (0, 1]")
        if self.maintenance_hit_rate_budget_factor is not None and \
                self.maintenance_hit_rate_budget_factor < 0:
            raise ValueError(
                "maintenance_hit_rate_budget_factor must be >= 0 or"
                " None")

    @property
    def history_enabled(self) -> bool:
        return self.mode in (MODE_HIST, MODE_SPEC, MODE_PA)

    @property
    def speculation_enabled(self) -> bool:
        return self.mode in (MODE_SPEC, MODE_PA)

    @property
    def proactive_enabled(self) -> bool:
        return self.mode == MODE_PA
