"""In-flight result registry.

When several concurrent queries share computation, the paper's recycler
stalls all but one until the producer either finishes materializing the
shared result or decides not to materialize it (Section V).  This registry
tracks which graph nodes currently have a producing query; the stream
harness consults it to schedule stalls in virtual time.
"""

from __future__ import annotations

from .graph import GraphNode


class InFlightRegistry:
    """graph node id -> opaque producer token (e.g. a query/stream id)."""

    def __init__(self) -> None:
        self._producers: dict[int, object] = {}

    def register(self, node: GraphNode, token: object) -> None:
        self._producers.setdefault(node.node_id, token)

    def release(self, node: GraphNode) -> None:
        self._producers.pop(node.node_id, None)

    def producer_of(self, node: GraphNode) -> object | None:
        return self._producers.get(node.node_id)

    def release_all(self, token: object) -> list[int]:
        """Drop every registration owned by ``token`` (query finished or
        aborted); returns the released node ids."""
        released = [node_id for node_id, t in self._producers.items()
                    if t == token]
        for node_id in released:
            del self._producers[node_id]
        return released

    def __len__(self) -> int:
        return len(self._producers)
