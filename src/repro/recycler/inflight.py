"""In-flight result registry.

When several concurrent queries share computation, the paper's recycler
stalls all but one until the producer either finishes materializing the
shared result or decides not to materialize it (Section V).  This
registry tracks which graph nodes currently have a producing query and
provides the real synchronization: :meth:`wait_for` blocks the calling
thread on a condition variable until the producer releases the node —
from the store-completion callback (result admitted to the cache), a
speculation abort, or the producer query's finalize/abandon.

Cancellation: a blocked consumer cannot be interrupted from its own
thread, so :meth:`cancel` marks its token dead — :meth:`wait_for`
returns immediately for a cancelled token, and :meth:`register`
*refuses* it.  Without the refusal, abandoning a waiting consumer whose
producer already finalized would leave a stale entry: the woken
consumer would plant store registrations its (never-run) finalize could
never release, wedging every later query that matches those nodes.

Ownership: ``release`` only removes a registration when the caller is
its owner.  First-registration-wins means a query that *lost* the race
must not inject a store at all (``StorePlanner`` checks the verdict);
owner-checked release is the backstop that keeps a late or duplicated
completion callback from evicting a live producer's registration.

The virtual-time stream simulator keeps using the registry purely as a
producer directory (``producer_of``) to schedule stalls in virtual time;
real sessions (:mod:`repro.session`) block for real.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from .graph import GraphNode

#: cancelled tokens remembered (FIFO-bounded); tokens are per-query
#: unique, so the bound only guards against pathological churn.
MAX_CANCELLED_TOKENS = 4096


class InFlightRegistry:
    """graph node id -> opaque producer token (e.g. a query/stream id)."""

    def __init__(self) -> None:
        self._producers: dict[int, object] = {}
        self._cancelled: OrderedDict[object, None] = OrderedDict()
        self._cond = threading.Condition(threading.Lock())

    def register(self, node: GraphNode, token: object) -> bool:
        """Register ``token`` as the producer of ``node``.  The first
        registration wins; returns True when ``token`` is now (or already
        was) the registered producer.  A cancelled token is refused."""
        with self._cond:
            if token in self._cancelled:
                return False
            current = self._producers.setdefault(node.node_id, token)
            return current == token

    def release(self, node: GraphNode, token: object = None) -> bool:
        """Release ``node``; with a ``token`` only the owner's
        registration is removed.  Returns True when an entry was
        dropped."""
        with self._cond:
            current = self._producers.get(node.node_id)
            if current is None:
                return False
            if token is not None and current != token:
                return False
            del self._producers[node.node_id]
            self._cond.notify_all()
            return True

    def producer_of(self, node: GraphNode) -> object | None:
        with self._cond:
            return self._producers.get(node.node_id)

    def active_nodes(self) -> set[int]:
        """Ids of every node currently being produced — the pin set for
        graph truncation (an in-flight node must survive maintenance)."""
        with self._cond:
            return set(self._producers)

    def release_all(self, token: object) -> list[int]:
        """Drop every registration owned by ``token`` (query finished or
        aborted); returns the released node ids."""
        with self._cond:
            released = [node_id for node_id, t in self._producers.items()
                        if t == token]
            for node_id in released:
                del self._producers[node_id]
            if released:
                self._cond.notify_all()
            return released

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel(self, token: object) -> list[int]:
        """Mark ``token`` dead: wake it if it is waiting, drop its
        registrations, and refuse any registration it attempts later.

        This is how a *waiting consumer* is abandoned (e.g. pool
        shutdown mid-query): the consumer may be blocked in
        :meth:`wait_for` on a producer that already finalized — by the
        time the cancel lands it is planning stores, and only the
        cancelled-token check keeps those registrations out."""
        with self._cond:
            if token not in self._cancelled:
                self._cancelled[token] = None
                while len(self._cancelled) > MAX_CANCELLED_TOKENS:
                    self._cancelled.popitem(last=False)
            released = [node_id for node_id, t in self._producers.items()
                        if t == token]
            for node_id in released:
                del self._producers[node_id]
            self._cond.notify_all()
            return released

    def is_cancelled(self, token: object) -> bool:
        with self._cond:
            return token in self._cancelled

    # ------------------------------------------------------------------
    def wait_for(self, node: GraphNode, token: object,
                 timeout: float | None = None) -> float:
        """Block until ``node`` has no producer other than ``token``.

        This is the paper's "the recycler stalls all but one": the caller
        must hold no recycler locks (the producer needs them to complete
        its store).  Returns the seconds actually waited; on ``timeout``
        expiry or cancellation of ``token`` it returns without the
        producer having released (callers then simply recompute instead
        of reusing).
        """
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._cond:
            while True:
                producer = self._producers.get(node.node_id)
                if producer is None or producer == token:
                    return time.monotonic() - started
                if token in self._cancelled:
                    return time.monotonic() - started
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return time.monotonic() - started
                self._cond.wait(remaining)

    def __len__(self) -> int:
        with self._cond:
            return len(self._producers)
