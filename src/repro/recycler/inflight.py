"""In-flight result registry.

When several concurrent queries share computation, the paper's recycler
stalls all but one until the producer either finishes materializing the
shared result or decides not to materialize it (Section V).  This
registry tracks which graph nodes currently have a producing query and
provides the real synchronization: :meth:`wait_for` blocks the calling
thread on a condition variable until the producer releases the node —
from the store-completion callback (result admitted to the cache), a
speculation abort, or the producer query's finalize/abandon.

The virtual-time stream simulator keeps using the registry purely as a
producer directory (``producer_of``) to schedule stalls in virtual time;
real sessions (:mod:`repro.session`) block for real.
"""

from __future__ import annotations

import threading
import time

from .graph import GraphNode


class InFlightRegistry:
    """graph node id -> opaque producer token (e.g. a query/stream id)."""

    def __init__(self) -> None:
        self._producers: dict[int, object] = {}
        self._cond = threading.Condition(threading.Lock())

    def register(self, node: GraphNode, token: object) -> bool:
        """Register ``token`` as the producer of ``node``.  The first
        registration wins; returns True when ``token`` is now (or already
        was) the registered producer."""
        with self._cond:
            current = self._producers.setdefault(node.node_id, token)
            return current == token

    def release(self, node: GraphNode) -> None:
        with self._cond:
            if self._producers.pop(node.node_id, None) is not None:
                self._cond.notify_all()

    def producer_of(self, node: GraphNode) -> object | None:
        with self._cond:
            return self._producers.get(node.node_id)

    def release_all(self, token: object) -> list[int]:
        """Drop every registration owned by ``token`` (query finished or
        aborted); returns the released node ids."""
        with self._cond:
            released = [node_id for node_id, t in self._producers.items()
                        if t == token]
            for node_id in released:
                del self._producers[node_id]
            if released:
                self._cond.notify_all()
            return released

    def wait_for(self, node: GraphNode, token: object,
                 timeout: float | None = None) -> float:
        """Block until ``node`` has no producer other than ``token``.

        This is the paper's "the recycler stalls all but one": the caller
        must hold no recycler locks (the producer needs them to complete
        its store).  Returns the seconds actually waited; on ``timeout``
        expiry it returns without the producer having released (callers
        then simply recompute instead of reusing).
        """
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._cond:
            while True:
                producer = self._producers.get(node.node_id)
                if producer is None or producer == token:
                    return time.monotonic() - started
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return time.monotonic() - started
                self._cond.wait(remaining)

    def __len__(self) -> int:
        with self._cond:
            return len(self._producers)
