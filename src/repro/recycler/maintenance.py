"""Background maintenance for a recycler (paper Section II).

The paper notes the recycler graph "has to be truncated periodically,
e.g. by periodically removing subtrees that have not been accessed for
some time" — PR 1 made :meth:`RecyclerGraph.truncate` thread-safe but
nothing ever called it.  The :class:`MaintenanceManager` is that caller:
a daemon thread owned by :class:`~repro.db.Database` that wakes on a
configurable cadence and applies two triggers:

* **size** — the graph outgrew ``maintenance_graph_node_limit`` nodes:
  truncate subtrees idle beyond ``truncate_min_idle_events`` events
  (in-flight and materialized nodes are pinned);
* **idle** — no query activity for ``maintenance_idle_seconds``:
  truncate, then refresh every cached benefit (the aging clock kept
  moving, so stored benefits drift stale while traffic is away).

``Database.close()`` (or the manager's :meth:`stop`) shuts the thread
down cleanly; :meth:`run_once` applies the triggers synchronously for
deterministic tests and for deployments that prefer an external cron.

Shutdown is cooperative all the way down: a cycle in progress passes
the manager's stop flag into :meth:`Recycler.truncate_idle` →
:meth:`RecyclerGraph.truncate`, which consults it at its phase
boundaries and abandons the cycle (graph untouched) when it fires — so
``stop()`` returns promptly instead of waiting out a large truncation,
mirroring the query-side :class:`~repro.engine.cancellation.CancellationToken`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Callable

from .recycler import Recycler


def _never_stop() -> bool:
    return False


@dataclass
class MaintenanceStats:
    """Counters for observability and tests (surfaced under the
    ``"maintenance"`` key of ``Database.summary()``)."""

    cycles: int = 0
    size_triggers: int = 0
    idle_triggers: int = 0
    #: truncations that actually removed nodes (a trigger may fire and
    #: find nothing idle enough; that is not a run).
    truncate_runs: int = 0
    nodes_truncated: int = 0
    #: summed result-size annotations of truncated nodes — the
    #: bookkeeping volume maintenance reclaimed from the graph.
    bytes_reclaimed: int = 0
    benefits_refreshed: int = 0
    last_cycle_at: float = field(default=0.0, repr=False)

    def as_dict(self) -> dict[str, int]:
        """Plain-dict snapshot (``last_cycle_at`` excluded: monotonic
        timestamps mean nothing outside the process)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "last_cycle_at"}


class MaintenanceManager:
    """Periodic truncate/refresh driver for one recycler."""

    def __init__(self, recycler: Recycler) -> None:
        self.recycler = recycler
        self.config = recycler.config
        self.stats = MaintenanceStats()
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        """Start the background thread (no-op when already running or
        when no interval is configured)."""
        if self.config.maintenance_interval_seconds is None:
            return
        with self._lock:
            if self.running:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-maintenance", daemon=True)
            self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        """Signal the thread and join it (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        self._wakeup.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def wake(self) -> None:
        """Nudge the thread to run a cycle now (tests, pressure hooks)."""
        self._wakeup.set()

    def _loop(self) -> None:
        interval = self.config.maintenance_interval_seconds
        while not self._stop.is_set():
            self._wakeup.wait(interval)
            self._wakeup.clear()
            if self._stop.is_set():
                return
            self.run_once(stop=self._stop.is_set)

    # ------------------------------------------------------------------
    # one cycle
    # ------------------------------------------------------------------
    def run_once(self, now: float | None = None,
                 stop: Callable[[], bool] | None = None
                 ) -> dict[str, int]:
        """Apply the size and idle triggers once; returns what fired.

        Safe from any thread (truncation takes every rewrite stripe);
        callable directly even when the background thread is disabled.
        ``stop`` is the cooperative-shutdown hook: the background loop
        passes its stop flag so a cycle in progress abandons promptly
        when the thread is told to exit.  Synchronous callers
        (``Database.maintain()``) omit it — explicit maintenance keeps
        working after ``Database.close()``.
        """
        now = time.monotonic() if now is None else now
        recycler = self.recycler
        stopping = stop if stop is not None else _never_stop
        truncate_stats: dict[str, int] = {}
        removed = 0
        truncate_runs = 0
        refreshed = 0
        size_fired = False
        idle_fired = False

        limit = self.config.maintenance_graph_node_limit
        if limit is not None and len(recycler.graph.nodes) > limit:
            size_fired = True
            size_removed = recycler.truncate_idle(stop=stopping,
                                                  stats=truncate_stats)
            removed += size_removed
            truncate_runs += int(size_removed > 0)

        idle_after = self.config.maintenance_idle_seconds
        if idle_after is not None and not stopping() and \
                now - recycler.last_activity >= idle_after:
            idle_fired = True
            idle_removed = recycler.truncate_idle(stop=stopping,
                                                  stats=truncate_stats)
            removed += idle_removed
            truncate_runs += int(idle_removed > 0)
            if not stopping():
                refreshed = recycler.refresh_cached_benefits()

        with self._lock:
            # the background thread and Database.maintain() callers may
            # cycle concurrently; keep the counters' read-modify-writes
            # atomic
            self.stats.cycles += 1
            self.stats.size_triggers += int(size_fired)
            self.stats.idle_triggers += int(idle_fired)
            self.stats.truncate_runs += truncate_runs
            self.stats.nodes_truncated += removed
            self.stats.bytes_reclaimed += \
                truncate_stats.get("bytes_reclaimed", 0)
            self.stats.benefits_refreshed += refreshed
            self.stats.last_cycle_at = now
        return {"size_trigger": int(size_fired),
                "idle_trigger": int(idle_fired),
                "nodes_truncated": removed,
                "benefits_refreshed": refreshed}
